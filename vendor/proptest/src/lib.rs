//! Offline vendored shim of the `proptest` API surface used by this
//! workspace.
//!
//! Implements the strategy combinators and macros the in-tree property
//! tests rely on (`proptest!`, `prop_assert*`, `any`, ranges, tuples,
//! `prop::collection::vec`, `prop_map`) over the vendored `rand` shim.
//! Failing cases are reported with their seed but are **not shrunk**;
//! the container that builds this workspace has no crates.io access,
//! and a deterministic non-shrinking runner keeps the tests meaningful
//! without the full dependency tree.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, Standard};

// Re-exported so the macro expansions can name the vendored `rand`
// through `$crate` regardless of the caller's own dependencies.
#[doc(hidden)]
pub use rand as rand_for_macros;

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator: the (non-shrinking) core of proptest's trait.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adaptor.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// The `any::<T>()` strategy: draws from the full value space.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Creates the [`Any`] strategy for `T`.
pub fn any<T: Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Generates `Vec`s of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The [`vec()`] strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// An inclusive element-count range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length.
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end.saturating_sub(1),
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Test-runner support used by the macro expansions.
pub mod test_runner {
    /// A failed property: the message carries the assertion text.
    pub type TestCaseError = String;

    /// Derives a per-test base seed from the test's name, so every
    /// property explores a distinct but reproducible stream.
    pub fn seed_for(test_name: &str) -> u64 {
        // FNV-1a, good enough for decorrelating test streams.
        let mut h: u64 = 0xCBF29CE484222325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001B3);
        }
        h
    }
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Fails the current property case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: left `{:?}` != right `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `cases` random instantiations.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                use $crate::rand_for_macros::SeedableRng as _;
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $config;
                let base = $crate::test_runner::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let mut rng = $crate::rand_for_macros::rngs::StdRng::seed_from_u64(
                        base ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15),
                    );
                    $(let $arg = ($strat).generate(&mut rng);)+
                    let outcome = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "proptest {} failed at case {case} (base seed {base:#x}): {message}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// `proptest::prelude` lookalike for glob imports.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    /// The `prop` module alias (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 0usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn map_and_vec_compose(v in prop::collection::vec(any::<u64>(), 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            let doubled = prop::collection::vec((0u32..4).prop_map(|k| k * 2), 3usize);
            let _ = doubled;
        }

        #[test]
        fn tuples_generate_componentwise(pair in (0u32..4, any::<bool>())) {
            prop_assert!(pair.0 < 4);
        }
    }

    #[test]
    // The macro expands to an inner `#[test]` fn that is invoked
    // directly here, not collected by the harness.
    #[allow(unnameable_test_items)]
    fn failing_property_panics_with_message() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn always_fails(x in 0u32..2) {
                    prop_assert!(x > 10, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("x was"), "message: {msg}");
    }

    #[test]
    fn same_test_name_is_deterministic() {
        assert_eq!(
            crate::test_runner::seed_for("a::b"),
            crate::test_runner::seed_for("a::b")
        );
        assert_ne!(
            crate::test_runner::seed_for("a::b"),
            crate::test_runner::seed_for("a::c")
        );
    }
}
