//! Offline vendored shim of the `criterion` API surface used by this
//! workspace's benches.
//!
//! The container building this workspace has no crates.io access, so
//! the benches link against this minimal harness instead: it runs each
//! benchmark body under a simple wall-clock loop and prints
//! median-of-samples timings. No statistics, plots or baselines — the
//! point is that `cargo bench` compiles, runs and prints comparable
//! numbers.

use std::time::{Duration, Instant};

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Runs `body` repeatedly, recording one timing per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One warmup run outside the measurement.
        std::hint::black_box(body());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(body());
            self.timings.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this shim is sample-count
    /// driven, so the target measurement time is ignored.
    pub fn measurement_time(&mut self, _time: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.min(self.criterion.max_samples);
        run_one(&full, samples, |b| body(b, input));
        self
    }

    /// Runs a benchmark without inputs.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let samples = self.sample_size.min(self.criterion.max_samples);
        run_one(&full, samples, |b| body(b));
        self
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut body: F) {
    let mut bencher = Bencher {
        samples,
        timings: Vec::new(),
    };
    body(&mut bencher);
    if bencher.timings.is_empty() {
        println!("{name:<48} (no measurement)");
        return;
    }
    bencher.timings.sort();
    let median = bencher.timings[bencher.timings.len() / 2];
    let total: Duration = bencher.timings.iter().sum();
    println!(
        "{name:<48} median {median:>12.3?}  ({} samples, total {total:.3?})",
        bencher.timings.len()
    );
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    max_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { max_samples: 10 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.max_samples;
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        mut body: F,
    ) -> &mut Self {
        run_one(&name.to_string(), self.max_samples, |b| body(b));
        self
    }
}

/// Re-export matching criterion's `black_box` (std's is used since
/// Rust 1.66).
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter(12).to_string(), "12");
    }

    #[test]
    fn bench_runs_and_times_body() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .bench_with_input(BenchmarkId::new("sq", 5), &5u64, |b, &x| {
                b.iter(|| x * x);
            });
    }
}
