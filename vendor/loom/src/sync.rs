//! Model-aware replacements for `std::sync` types.
//!
//! Each atomic operation is a scheduling point: the model checker may switch
//! threads immediately before the operation executes. The value itself sits
//! behind a `Mutex`, which is uncontended because the scheduler runs exactly
//! one model thread at a time; outside a model the types degrade to plain
//! mutex-backed atomics.

pub use std::sync::Arc;

/// Model-aware atomic integer types.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    macro_rules! shim_atomic {
        ($(#[$doc:meta])* $name:ident, $ty:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                value: std::sync::Mutex<$ty>,
            }

            impl $name {
                /// Create a new atomic with the given initial value.
                pub fn new(value: $ty) -> Self {
                    Self {
                        value: std::sync::Mutex::new(value),
                    }
                }

                fn op<R>(&self, f: impl FnOnce(&mut $ty) -> R) -> R {
                    crate::sched::sync_point();
                    let mut v = self.value.lock().unwrap_or_else(|p| p.into_inner());
                    f(&mut v)
                }

                /// Load the current value. The ordering is accepted for API
                /// compatibility; the model explores SC interleavings only.
                pub fn load(&self, _order: Ordering) -> $ty {
                    self.op(|v| *v)
                }

                /// Store a new value.
                pub fn store(&self, value: $ty, _order: Ordering) {
                    self.op(|v| *v = value)
                }

                /// Swap in a new value, returning the previous one.
                pub fn swap(&self, value: $ty, _order: Ordering) -> $ty {
                    self.op(|v| std::mem::replace(v, value))
                }

                /// Compare-and-exchange; returns `Ok(previous)` on success.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.op(|v| {
                        if *v == current {
                            *v = new;
                            Ok(current)
                        } else {
                            Err(*v)
                        }
                    })
                }

                /// Weak compare-and-exchange (never fails spuriously here).
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Consume the atomic and return the inner value.
                pub fn into_inner(self) -> $ty {
                    self.value.into_inner().unwrap_or_else(|p| p.into_inner())
                }
            }
        };
    }

    shim_atomic!(
        /// Model-aware `AtomicU64`.
        AtomicU64, u64
    );
    shim_atomic!(
        /// Model-aware `AtomicUsize`.
        AtomicUsize, usize
    );

    macro_rules! shim_fetch_arith {
        ($name:ident, $ty:ty) => {
            impl $name {
                /// Add, returning the previous value (wrapping).
                pub fn fetch_add(&self, delta: $ty, _order: Ordering) -> $ty {
                    self.op(|v| {
                        let old = *v;
                        *v = v.wrapping_add(delta);
                        old
                    })
                }

                /// Subtract, returning the previous value (wrapping).
                pub fn fetch_sub(&self, delta: $ty, _order: Ordering) -> $ty {
                    self.op(|v| {
                        let old = *v;
                        *v = v.wrapping_sub(delta);
                        old
                    })
                }

                /// Store the minimum of the current and given value,
                /// returning the previous value.
                pub fn fetch_min(&self, value: $ty, _order: Ordering) -> $ty {
                    self.op(|v| {
                        let old = *v;
                        *v = old.min(value);
                        old
                    })
                }

                /// Store the maximum of the current and given value,
                /// returning the previous value.
                pub fn fetch_max(&self, value: $ty, _order: Ordering) -> $ty {
                    self.op(|v| {
                        let old = *v;
                        *v = old.max(value);
                        old
                    })
                }
            }
        };
    }

    shim_fetch_arith!(AtomicU64, u64);
    shim_fetch_arith!(AtomicUsize, usize);

    shim_atomic!(
        /// Model-aware `AtomicBool`.
        AtomicBool, bool
    );
}
