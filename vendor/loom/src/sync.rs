//! Model-aware replacements for `std::sync` types.
//!
//! Each atomic operation is a scheduling point: the model checker may switch
//! threads immediately before the operation executes. In weak-memory mode
//! (the default) a load is additionally a *value* branch point: it may read
//! any store its `Ordering` permits, not just the newest one — see
//! [`crate::mem`] for the model. Outside a model the types degrade to plain
//! mutex-backed atomics.

pub use std::sync::Arc;

/// Model-aware atomic types and fences.
pub mod atomic {
    use std::sync::Mutex;

    pub use std::sync::atomic::Ordering;

    use crate::mem::{self, Cell};

    /// A model-aware memory fence, following the C11 fence rules (release
    /// fences arm later relaxed stores, acquire fences claim earlier
    /// relaxed loads, `SeqCst` fences join the global SC order). Outside a
    /// model this is `std::sync::atomic::fence`.
    ///
    /// # Panics
    ///
    /// Panics on `Ordering::Relaxed`, like the `std` fence.
    pub fn fence(order: Ordering) {
        assert!(
            order != Ordering::Relaxed,
            "there is no such thing as a relaxed fence"
        );
        mem::fence(order);
    }

    macro_rules! shim_atomic {
        ($(#[$doc:meta])* $name:ident, $ty:ty) => {
            $(#[$doc])*
            #[derive(Debug)]
            pub struct $name {
                cell: Mutex<Cell<$ty>>,
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }

            impl $name {
                /// Create a new atomic with the given initial value.
                pub const fn new(value: $ty) -> Self {
                    Self {
                        cell: Mutex::new(Cell::new(value)),
                    }
                }

                /// Load a value the given ordering permits: inside a model
                /// with weak memory enabled, possibly a stale one.
                pub fn load(&self, order: Ordering) -> $ty {
                    mem::load(&self.cell, order)
                }

                /// Store a new value.
                pub fn store(&self, value: $ty, order: Ordering) {
                    mem::store(&self.cell, value, order)
                }

                /// Swap in a new value, returning the previous one.
                pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                    mem::rmw(&self.cell, order, |_| value)
                }

                /// Compare-and-exchange; returns `Ok(previous)` on success.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    mem::compare_exchange(&self.cell, current, new, success, failure)
                }

                /// Weak compare-and-exchange (never fails spuriously here).
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Consume the atomic and return the inner value.
                pub fn into_inner(self) -> $ty {
                    self.cell
                        .into_inner()
                        .unwrap_or_else(|p| p.into_inner())
                        .into_value()
                }
            }
        };
    }

    shim_atomic!(
        /// Model-aware `AtomicU64`.
        AtomicU64, u64
    );
    shim_atomic!(
        /// Model-aware `AtomicUsize`.
        AtomicUsize, usize
    );
    shim_atomic!(
        /// Model-aware `AtomicBool`.
        AtomicBool, bool
    );

    macro_rules! shim_fetch_arith {
        ($name:ident, $ty:ty) => {
            impl $name {
                /// Add, returning the previous value (wrapping).
                pub fn fetch_add(&self, delta: $ty, order: Ordering) -> $ty {
                    mem::rmw(&self.cell, order, |v| v.wrapping_add(delta))
                }

                /// Subtract, returning the previous value (wrapping).
                pub fn fetch_sub(&self, delta: $ty, order: Ordering) -> $ty {
                    mem::rmw(&self.cell, order, |v| v.wrapping_sub(delta))
                }

                /// Store the minimum of the current and given value,
                /// returning the previous value.
                pub fn fetch_min(&self, value: $ty, order: Ordering) -> $ty {
                    mem::rmw(&self.cell, order, |v| v.min(value))
                }

                /// Store the maximum of the current and given value,
                /// returning the previous value.
                pub fn fetch_max(&self, value: $ty, order: Ordering) -> $ty {
                    mem::rmw(&self.cell, order, |v| v.max(value))
                }
            }
        };
    }

    shim_fetch_arith!(AtomicU64, u64);
    shim_fetch_arith!(AtomicUsize, usize);
}
