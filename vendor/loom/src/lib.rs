//! Offline vendored shim of the [`loom`](https://docs.rs/loom) model-checking
//! API surface used by this workspace.
//!
//! The real loom crate is not available in this environment, so this shim
//! re-implements the subset we rely on: [`model`] runs a closure repeatedly,
//! exhaustively exploring the interleavings *and the weak-memory behaviors*
//! of the atomic operations performed by threads spawned through
//! [`thread::spawn`], up to a configurable preemption bound.
//!
//! # How it works
//!
//! Model threads are real OS threads, but they are gated by a cooperative
//! scheduler so that exactly one runs at a time. Every operation on a
//! [`sync::atomic`] type is a *scheduling point*: before the operation
//! executes, the scheduler decides which thread runs next. In weak-memory
//! mode (the default) every load is additionally a *value* branch point:
//! the memory model in [`mem`](crate) tracks each location's modification
//! order and per-thread vector clocks, and lets the load read any store its
//! `Ordering` argument permits — a `Relaxed` load may legally observe a
//! stale value even though a newer store already executed. Each decision
//! with more than one alternative becomes a branch; after an execution
//! finishes, the scheduler backtracks depth-first to the most recent
//! decision with untried alternatives and replays the prefix
//! deterministically.
//!
//! `Ordering` arguments are therefore **meaningful**: `Release` stores
//! attach the writer's vector clock, `Acquire` loads that read them join
//! it, `SeqCst` operations and [`sync::atomic::fence`]s additionally join a
//! global SC clock (retaining a total order), and everything else is free
//! to be stale. A publication protocol that is only correct under
//! sequential consistency now *fails* under the checker; see
//! `tests/weak.rs` for the litmus suite, including a relaxed-publication
//! bug that the legacy SC-only exploration (still available via
//! [`Builder::weak_memory`]` = false` or `LOOM_WEAK_MEMORY=0`) provably
//! misses.
//!
//! Exploration is bounded by the number of *preemptions* (switching away
//! from a thread that could still run) per execution — 2 by default,
//! overridable with `LOOM_MAX_PREEMPTIONS`. Bounded-preemption search is
//! the classic CHESS result: almost all concurrency bugs manifest with very
//! few preemptions. Value choices are not preemptions and are explored in
//! full.
//!
//! # Limitations vs. real loom
//!
//! - `SeqCst` accesses are modeled slightly stronger than C11: they
//!   synchronize like acquire/release *and* join the global SC clock, so
//!   behaviors that require SC accesses not to synchronize (e.g. IRIW
//!   subtleties) are not explored.
//! - Loads never read from stores that have not executed yet (no load
//!   buffering / promising semantics).
//! - Only the types used by this workspace are provided (`AtomicU64`,
//!   `AtomicUsize`, `AtomicBool`, `fence`, `Arc`,
//!   `thread::spawn`/`JoinHandle`).
//! - `model` panics if the schedule count exceeds `LOOM_MAX_ITERATIONS`
//!   (default 100 000) so runaway state spaces fail loudly instead of
//!   hanging.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mem;
mod sched;
pub mod sync;
pub mod thread;

pub use sched::{model, Builder};
