//! Offline vendored shim of the [`loom`](https://docs.rs/loom) model-checking
//! API surface used by this workspace.
//!
//! The real loom crate is not available in this environment, so this shim
//! re-implements the subset we rely on: [`model`] runs a closure repeatedly,
//! exhaustively exploring the sequentially consistent interleavings of the
//! atomic operations performed by threads spawned through
//! [`thread::spawn`], up to a configurable preemption bound.
//!
//! # How it works
//!
//! Model threads are real OS threads, but they are gated by a cooperative
//! scheduler so that exactly one runs at a time. Every operation on a
//! [`sync::atomic`] type is a *scheduling point*: before the operation
//! executes, the scheduler decides which thread runs next. Each decision with
//! more than one runnable thread becomes a branch point; after an execution
//! finishes, the scheduler backtracks depth-first to the most recent decision
//! with untried alternatives and replays the prefix deterministically.
//!
//! Exploration is bounded by the number of *preemptions* (switching away from
//! a thread that could still run) per execution — 2 by default, overridable
//! with `LOOM_MAX_PREEMPTIONS`. Bounded-preemption search is the classic CHESS
//! result: almost all concurrency bugs manifest with very few preemptions.
//!
//! # Limitations vs. real loom
//!
//! - Only sequentially consistent semantics are explored; `Ordering` arguments
//!   are accepted but ignored. A test that passes here could still fail under
//!   weaker orderings on real hardware.
//! - Only the types used by this workspace are provided (`AtomicU64`,
//!   `AtomicUsize`, `AtomicBool`, `Arc`, `thread::spawn`/`JoinHandle`).
//! - `model` panics if the schedule count exceeds `LOOM_MAX_ITERATIONS`
//!   (default 100 000) so runaway state spaces fail loudly instead of hanging.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sched;
pub mod sync;
pub mod thread;

pub use sched::model;
