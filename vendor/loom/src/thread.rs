//! Model-aware replacement for `std::thread`.

use crate::sched::{current_context, sync_point, Context};

/// Handle to a spawned model thread. Mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    ctx: Option<Context>,
    id: usize,
    inner: std::thread::JoinHandle<T>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish, returning its result (`Err` holds the
    /// panic payload, as with `std::thread`).
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(ctx) = &self.ctx {
            // join_wait blocks until the target finishes and then records
            // the join happens-before edge into the joiner's clock.
            ctx.sched.join_wait(ctx.id, self.id);
        }
        self.inner.join()
    }
}

/// Spawn a thread. Inside a `model` execution the child participates in the
/// cooperative schedule; outside, this is plain `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current_context() {
        None => JoinHandle {
            ctx: None,
            id: 0,
            inner: std::thread::spawn(f),
        },
        Some(ctx) => {
            let id = ctx.sched.register(ctx.id);
            let child_ctx = Context {
                sched: std::sync::Arc::clone(&ctx.sched),
                id,
            };
            let inner = std::thread::Builder::new()
                .name(format!("loom-{id}"))
                .spawn(move || {
                    crate::sched::enter(child_ctx.clone());
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                    child_ctx.sched.thread_finished(id, result.is_err());
                    crate::sched::leave();
                    match result {
                        Ok(v) => v,
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                })
                .expect("spawn loom model thread");
            JoinHandle {
                ctx: Some(ctx),
                id,
                inner,
            }
        }
    }
}

/// Cooperative yield: a bare scheduling point.
pub fn yield_now() {
    sync_point();
}
