//! The weak-memory engine: per-atomic modification orders, vector clocks
//! and acquire/release synchronization.
//!
//! Each atomic location keeps its *modification order* — the list of every
//! store executed on it this execution, in the order the (serialized)
//! scheduler ran them. A load is **not** forced to read the newest store:
//! it may read any store at or after its *visibility floor*, and each such
//! choice is a branch point the scheduler explores, exactly like a thread
//! switch. This is what models store buffering and delayed visibility on
//! real hardware: a `Relaxed` store another thread "executed already" may
//! simply not be seen yet.
//!
//! The floor for thread `t` loading location `x` is the newest store it is
//! *obliged* to see:
//!
//! - **coherence**: nothing older than a store `t` already read or wrote on
//!   `x` (tracked per-thread in [`Cell::seen`]), and
//! - **happens-before**: nothing older than the newest store whose writer
//!   clock is `⊑` `t`'s vector clock — i.e. a store that happened-before
//!   the load must be visible.
//!
//! Synchronization grows the clocks: a `Release` (or stronger) store
//! attaches the writer's clock to the store; an `Acquire` (or stronger)
//! load that reads it joins that clock into the reader — from then on every
//! write that happened-before the release is in the reader's floor. Relaxed
//! accesses attach/join nothing, which is precisely why relaxed publication
//! is a bug this engine can exhibit. Read-modify-writes always read the
//! newest store (atomicity) and continue the release sequence of the store
//! they replace, so a CAS chain headed by a `Release` store still
//! synchronizes its eventual `Acquire` readers.
//!
//! `SeqCst` operations and fences additionally join a global SC clock both
//! ways. That gives them a total order and makes the classic store-buffer
//! litmus (both relaxed loads 0) impossible under `SeqCst`, at the cost of
//! being slightly *stronger* than C11 SC (our SC ops synchronize like
//! acquire/release across locations; real SC ops only order). The
//! approximation can hide exotic bugs that rely on SC ops *not*
//! synchronizing, but never reports a false positive.
//!
//! Fences follow the C11 fence rules in the same spirit: a `Release` fence
//! makes later relaxed stores carry the clock the thread had at the fence;
//! an `Acquire` fence retroactively upgrades earlier relaxed loads (their
//! release views accumulate in [`Mem::acq_pending`] until a fence claims
//! them); a `SeqCst` fence does both plus the SC-clock join.

use std::sync::atomic::Ordering;
use std::sync::Mutex;

use crate::sched::{current_context, Context};

/// A grow-on-demand vector clock. Missing components are zero.
#[derive(Clone, Debug, Default)]
pub(crate) struct VersionVec(Vec<u64>);

impl VersionVec {
    pub(crate) const fn new() -> VersionVec {
        VersionVec(Vec::new())
    }

    /// `self ⊑ other`: every component of `self` is ≤ the same component
    /// of `other`.
    pub(crate) fn leq(&self, other: &VersionVec) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.0.get(i).copied().unwrap_or(0))
    }

    /// Pointwise maximum, in place.
    pub(crate) fn join(&mut self, other: &VersionVec) {
        if other.0.len() > self.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if v > self.0[i] {
                self.0[i] = v;
            }
        }
    }

    /// Advance component `i` by one.
    pub(crate) fn tick(&mut self, i: usize) {
        if self.0.len() <= i {
            self.0.resize(i + 1, 0);
        }
        self.0[i] += 1;
    }
}

/// Per-execution memory-model state, owned by the scheduler.
pub(crate) struct Mem {
    /// Explore weak behaviors? When false, every load reads the newest
    /// store — the legacy sequentially-consistent-only exploration.
    pub(crate) weak: bool,
    /// Per-thread vector clocks (happens-before).
    pub(crate) clocks: Vec<VersionVec>,
    /// Per-thread release-fence view: the clock the thread had at its
    /// latest `Release`/`SeqCst` fence; attached to later relaxed stores.
    pub(crate) fence_rel: Vec<VersionVec>,
    /// Per-thread pending acquire view: the joined release views of every
    /// store the thread has loaded so far; claimed by an `Acquire` fence.
    pub(crate) acq_pending: Vec<VersionVec>,
    /// The global `SeqCst` clock.
    pub(crate) sc: VersionVec,
}

impl Mem {
    pub(crate) fn new(weak: bool) -> Mem {
        let mut root = VersionVec::new();
        root.tick(0);
        Mem {
            weak,
            clocks: vec![root],
            fence_rel: vec![VersionVec::new()],
            acq_pending: vec![VersionVec::new()],
            sc: VersionVec::new(),
        }
    }

    fn ensure_thread(&mut self, id: usize) {
        while self.clocks.len() <= id {
            self.clocks.push(VersionVec::new());
            self.fence_rel.push(VersionVec::new());
            self.acq_pending.push(VersionVec::new());
        }
    }

    /// Register thread `child` spawned by (running) thread `parent`: the
    /// child inherits the parent's clock — everything the parent did
    /// before the spawn happens-before everything the child does.
    pub(crate) fn spawn_edge(&mut self, parent: usize, child: usize) {
        self.ensure_thread(child);
        let parent_clock = self.clocks[parent].clone();
        self.clocks[child].join(&parent_clock);
        self.clocks[child].tick(child);
        self.clocks[parent].tick(parent);
    }

    /// Join edge: everything `target` did happens-before the return of
    /// `join()` in thread `me`.
    pub(crate) fn join_edge(&mut self, me: usize, target: usize) {
        self.ensure_thread(me.max(target));
        let target_clock = self.clocks[target].clone();
        self.clocks[me].join(&target_clock);
    }
}

fn is_acquire(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn is_release(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// One entry of a location's modification order.
#[derive(Debug)]
pub(crate) struct StoreRecord<T> {
    value: T,
    /// The writer's clock when the store executed: readers whose clock
    /// dominates this are *obliged* to see the store (or something newer).
    vc: VersionVec,
    /// The view an `Acquire` reader of this store synchronizes with:
    /// the writer's clock for releasing stores, the writer's release-fence
    /// view for relaxed stores, joined with the replaced store's view for
    /// RMWs (release-sequence continuation). Empty when nothing syncs.
    rel: VersionVec,
}

/// The state behind one model-aware atomic: the live value plus the
/// modification-order history of the current execution.
#[derive(Debug)]
pub(crate) struct Cell<T> {
    value: T,
    /// Execution id the history belongs to; stale histories (statics, or
    /// atomics created outside any model) are reseeded from `value`.
    exec: u64,
    stores: Vec<StoreRecord<T>>,
    /// Per-thread coherence floor: the newest modification-order index the
    /// thread has read or written.
    seen: Vec<usize>,
}

impl<T> Cell<T> {
    pub(crate) const fn new(value: T) -> Cell<T> {
        Cell {
            value,
            exec: 0,
            stores: Vec::new(),
            seen: Vec::new(),
        }
    }

    pub(crate) fn into_value(self) -> T {
        self.value
    }

    fn set_seen(&mut self, thread: usize, index: usize) {
        if self.seen.len() <= thread {
            self.seen.resize(thread + 1, 0);
        }
        if self.seen[thread] < index {
            self.seen[thread] = index;
        }
    }
}

impl<T: Copy> Cell<T> {
    /// Reset the history at the start of a new execution: the current
    /// value becomes the initialization store (visible to everyone,
    /// synchronizing with no one).
    fn ensure_exec(&mut self, exec: u64) {
        if self.exec != exec {
            self.exec = exec;
            self.stores.clear();
            self.stores.push(StoreRecord {
                value: self.value,
                vc: VersionVec::new(),
                rel: VersionVec::new(),
            });
            self.seen.clear();
        }
    }
}

/// The indices of the modification order thread `t` may read: everything
/// from its visibility floor to the newest store.
fn readable_floor<T>(cell: &Cell<T>, clock: &VersionVec, thread: usize) -> usize {
    let mut floor = cell.seen.get(thread).copied().unwrap_or(0);
    for (i, s) in cell.stores.iter().enumerate().skip(floor) {
        if s.vc.leq(clock) {
            floor = i;
        }
    }
    floor
}

/// Shared prologue for every model-context operation: take the turn
/// (scheduling point), tick the thread's clock, and for `SeqCst` join the
/// global SC clock into the thread.
fn op_prologue(ctx: &Context, mem: &mut Mem, order: Ordering) {
    let t = ctx.id;
    mem.ensure_thread(t);
    mem.clocks[t].tick(t);
    if order == Ordering::SeqCst {
        let sc = mem.sc.clone();
        mem.clocks[t].join(&sc);
    }
}

fn op_epilogue(ctx: &Context, mem: &mut Mem, order: Ordering) {
    if order == Ordering::SeqCst {
        let clock = mem.clocks[ctx.id].clone();
        mem.sc.join(&clock);
    }
}

/// Record the effects of reading store `index` with ordering `order`.
fn apply_read<T: Copy>(
    ctx: &Context,
    mem: &mut Mem,
    cell: &mut Cell<T>,
    index: usize,
    order: Ordering,
) -> T {
    let t = ctx.id;
    cell.set_seen(t, index);
    let rel = cell.stores[index].rel.clone();
    mem.acq_pending[t].join(&rel);
    if is_acquire(order) {
        mem.clocks[t].join(&rel);
    }
    cell.stores[index].value
}

/// Append a store with ordering `order`, returning its release view.
fn apply_write<T: Copy>(
    ctx: &Context,
    mem: &mut Mem,
    cell: &mut Cell<T>,
    value: T,
    order: Ordering,
    sequence: Option<VersionVec>,
) {
    let t = ctx.id;
    let mut rel = if is_release(order) {
        mem.clocks[t].clone()
    } else {
        mem.fence_rel[t].clone()
    };
    if let Some(prev) = sequence {
        // Release-sequence continuation: an RMW passes along the view of
        // the store it replaced, whatever its own ordering.
        rel.join(&prev);
    }
    cell.stores.push(StoreRecord {
        value,
        vc: mem.clocks[t].clone(),
        rel,
    });
    cell.value = value;
    let index = cell.stores.len() - 1;
    cell.set_seen(t, index);
}

/// A model-aware load.
pub(crate) fn load<T: Copy>(cell: &Mutex<Cell<T>>, order: Ordering) -> T {
    match current_context() {
        None => lock(cell).value,
        Some(ctx) => {
            ctx.sched.sync_op(ctx.id);
            let mut mem = ctx.sched.lock_mem();
            let mut cell = lock(cell);
            cell.ensure_exec(ctx.sched.exec_id());
            op_prologue(&ctx, &mut mem, order);
            let floor = readable_floor(&cell, &mem.clocks[ctx.id], ctx.id);
            let newest = cell.stores.len() - 1;
            let index = if !mem.weak || floor == newest {
                newest
            } else {
                // Newest-first, so the first execution of every schedule
                // behaves sequentially consistently and older (stale)
                // values are explored on backtracking.
                newest - ctx.sched.choice(ctx.id, newest - floor + 1)
            };
            let value = apply_read(&ctx, &mut mem, &mut cell, index, order);
            op_epilogue(&ctx, &mut mem, order);
            value
        }
    }
}

/// A model-aware store.
pub(crate) fn store<T: Copy>(cell: &Mutex<Cell<T>>, value: T, order: Ordering) {
    match current_context() {
        None => lock(cell).value = value,
        Some(ctx) => {
            ctx.sched.sync_op(ctx.id);
            let mut mem = ctx.sched.lock_mem();
            let mut cell = lock(cell);
            cell.ensure_exec(ctx.sched.exec_id());
            op_prologue(&ctx, &mut mem, order);
            apply_write(&ctx, &mut mem, &mut cell, value, order, None);
            op_epilogue(&ctx, &mut mem, order);
        }
    }
}

/// A model-aware read-modify-write: always reads the newest store
/// (atomicity), applies `f`, appends the result. Returns the previous
/// value.
pub(crate) fn rmw<T: Copy>(cell: &Mutex<Cell<T>>, order: Ordering, f: impl FnOnce(T) -> T) -> T {
    match current_context() {
        None => {
            let mut cell = lock(cell);
            let prev = cell.value;
            cell.value = f(prev);
            prev
        }
        Some(ctx) => {
            ctx.sched.sync_op(ctx.id);
            let mut mem = ctx.sched.lock_mem();
            let mut cell = lock(cell);
            cell.ensure_exec(ctx.sched.exec_id());
            op_prologue(&ctx, &mut mem, order);
            let newest = cell.stores.len() - 1;
            let prev = apply_read(&ctx, &mut mem, &mut cell, newest, order);
            let sequence = cell.stores[newest].rel.clone();
            apply_write(&ctx, &mut mem, &mut cell, f(prev), order, Some(sequence));
            op_epilogue(&ctx, &mut mem, order);
            prev
        }
    }
}

/// A model-aware compare-exchange. On success this is an RMW with the
/// success ordering; on failure it is a load (of the newest store) with
/// the failure ordering.
pub(crate) fn compare_exchange<T: Copy + PartialEq>(
    cell: &Mutex<Cell<T>>,
    current: T,
    new: T,
    success: Ordering,
    failure: Ordering,
) -> Result<T, T> {
    match current_context() {
        None => {
            let mut cell = lock(cell);
            if cell.value == current {
                cell.value = new;
                Ok(current)
            } else {
                Err(cell.value)
            }
        }
        Some(ctx) => {
            ctx.sched.sync_op(ctx.id);
            let mut mem = ctx.sched.lock_mem();
            let mut cell = lock(cell);
            cell.ensure_exec(ctx.sched.exec_id());
            let newest = cell.stores.len() - 1;
            if cell.stores[newest].value == current {
                op_prologue(&ctx, &mut mem, success);
                let prev = apply_read(&ctx, &mut mem, &mut cell, newest, success);
                let sequence = cell.stores[newest].rel.clone();
                apply_write(&ctx, &mut mem, &mut cell, new, success, Some(sequence));
                op_epilogue(&ctx, &mut mem, success);
                Ok(prev)
            } else {
                op_prologue(&ctx, &mut mem, failure);
                let prev = apply_read(&ctx, &mut mem, &mut cell, newest, failure);
                op_epilogue(&ctx, &mut mem, failure);
                Err(prev)
            }
        }
    }
}

/// A model-aware memory fence. Outside a model this is the real
/// `std::sync::atomic::fence`.
pub(crate) fn fence(order: Ordering) {
    match current_context() {
        None => std::sync::atomic::fence(order),
        Some(ctx) => {
            ctx.sched.sync_op(ctx.id);
            let mut mem = ctx.sched.lock_mem();
            let t = ctx.id;
            mem.ensure_thread(t);
            mem.clocks[t].tick(t);
            if order == Ordering::SeqCst {
                let sc = mem.sc.clone();
                mem.clocks[t].join(&sc);
            }
            if is_acquire(order) {
                let pending = mem.acq_pending[t].clone();
                mem.clocks[t].join(&pending);
            }
            if is_release(order) {
                mem.fence_rel[t] = mem.clocks[t].clone();
            }
            if order == Ordering::SeqCst {
                let clock = mem.clocks[t].clone();
                mem.sc.join(&clock);
            }
        }
    }
}

fn lock<T>(cell: &Mutex<Cell<T>>) -> std::sync::MutexGuard<'_, Cell<T>> {
    cell.lock().unwrap_or_else(|p| p.into_inner())
}
