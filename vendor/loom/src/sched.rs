//! Cooperative scheduler: deterministic replay + depth-first exploration of
//! thread interleavings with a preemption bound.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

thread_local! {
    static CONTEXT: RefCell<Option<Context>> = const { RefCell::new(None) };
}

/// Per-thread handle back to the scheduler of the current model execution.
#[derive(Clone)]
pub(crate) struct Context {
    pub(crate) sched: Arc<Scheduler>,
    pub(crate) id: usize,
}

pub(crate) fn current_context() -> Option<Context> {
    CONTEXT.with(|c| c.borrow().clone())
}

fn set_context(ctx: Option<Context>) {
    CONTEXT.with(|c| *c.borrow_mut() = ctx);
}

/// Install the scheduler context on a freshly spawned model thread.
pub(crate) fn enter(ctx: Context) {
    set_context(Some(ctx));
}

/// Clear the context when a model thread winds down.
pub(crate) fn leave() {
    set_context(None);
}

/// A scheduling point at which the current thread lets the scheduler pick the
/// next runner. No-op outside a `model` execution.
pub(crate) fn sync_point() {
    if let Some(ctx) = current_context() {
        ctx.sched.sync_op(ctx.id);
    }
}

/// One branch of the schedule tree: the thread chosen to run next and the
/// alternatives not yet explored at this decision.
#[derive(Clone, Debug)]
struct Decision {
    chosen: usize,
    remaining: Vec<usize>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Ready,
    /// Blocked joining the thread with this id.
    Blocked(usize),
    Finished,
}

struct State {
    threads: Vec<Status>,
    current: usize,
    /// Decisions made during this execution.
    trace: Vec<Decision>,
    /// Prefix from the previous execution to replay deterministically.
    replay: Vec<Decision>,
    step: usize,
    preemptions: usize,
    /// Set when a model thread panicked (or deadlock was detected); all
    /// gating is abandoned so threads can drain and report.
    failed: bool,
    deadlocked: bool,
    finished: usize,
}

pub(crate) struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
    max_preemptions: usize,
}

impl Scheduler {
    fn new(replay: Vec<Decision>, max_preemptions: usize) -> Self {
        Scheduler {
            state: Mutex::new(State {
                threads: vec![Status::Ready],
                current: 0,
                trace: Vec::new(),
                replay,
                step: 0,
                preemptions: 0,
                failed: false,
                deadlocked: false,
                finished: 0,
            }),
            cv: Condvar::new(),
            max_preemptions,
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn enabled(state: &State) -> Vec<usize> {
        state
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Ready)
            .map(|(i, _)| i)
            .collect()
    }

    /// Register a newly spawned model thread. Called by the (running) parent,
    /// so registration order is deterministic under replay.
    pub(crate) fn register(&self) -> usize {
        let mut s = self.lock();
        s.threads.push(Status::Ready);
        s.threads.len() - 1
    }

    /// Scheduling point before a shared-memory operation by thread `me`.
    pub(crate) fn sync_op(&self, me: usize) {
        let mut s = self.lock();
        while !s.failed && s.current != me {
            s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
        if s.failed {
            return;
        }
        let enabled = Self::enabled(&s);
        if enabled.len() <= 1 {
            // Sole runnable thread: keep going, nothing to decide.
            return;
        }
        let decision = if s.step < s.replay.len() {
            s.replay[s.step].clone()
        } else {
            // Continuing the current thread is free; switching away while it
            // could still run costs a preemption, so alternatives exist only
            // while the preemption budget lasts.
            let remaining = if s.preemptions < self.max_preemptions {
                enabled.iter().copied().filter(|&t| t != me).collect()
            } else {
                Vec::new()
            };
            Decision {
                chosen: me,
                remaining,
            }
        };
        s.step += 1;
        if decision.chosen != me {
            s.preemptions += 1;
        }
        s.current = decision.chosen;
        s.trace.push(decision);
        if s.current != me {
            self.cv.notify_all();
            while !s.failed && s.current != me {
                s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
            }
        }
    }

    /// Pick the next runner after `current` stopped being runnable
    /// (finished or blocked). Forced switches are not preemptions.
    fn reschedule(&self, s: &mut MutexGuard<'_, State>) {
        let enabled = Self::enabled(s);
        match enabled.len() {
            0 => {
                if s.finished < s.threads.len() {
                    // Someone is still blocked but nobody can run.
                    s.failed = true;
                    s.deadlocked = true;
                }
                self.cv.notify_all();
            }
            1 => {
                s.current = enabled[0];
                self.cv.notify_all();
            }
            _ => {
                let decision = if s.step < s.replay.len() {
                    s.replay[s.step].clone()
                } else {
                    Decision {
                        chosen: enabled[0],
                        remaining: enabled[1..].to_vec(),
                    }
                };
                s.step += 1;
                s.current = decision.chosen;
                s.trace.push(decision);
                self.cv.notify_all();
            }
        }
    }

    /// Mark `me` finished, wake joiners, hand off the schedule. Waits for its
    /// turn first so the enabled set only changes at deterministic points.
    pub(crate) fn thread_finished(&self, me: usize, panicked: bool) {
        let mut s = self.lock();
        if !panicked {
            while !s.failed && s.current != me {
                s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
            }
        }
        s.threads[me] = Status::Finished;
        s.finished += 1;
        for t in 0..s.threads.len() {
            if s.threads[t] == Status::Blocked(me) {
                s.threads[t] = Status::Ready;
            }
        }
        if panicked {
            s.failed = true;
        }
        if s.failed {
            self.cv.notify_all();
            return;
        }
        self.reschedule(&mut s);
    }

    /// Block `me` until `target` finishes.
    pub(crate) fn join_wait(&self, me: usize, target: usize) {
        let mut s = self.lock();
        while !s.failed && s.current != me {
            s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
        if s.failed || s.threads[target] == Status::Finished {
            return;
        }
        s.threads[me] = Status::Blocked(target);
        self.reschedule(&mut s);
        while !s.failed && s.current != me {
            s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn wait_all_finished(&self) {
        let mut s = self.lock();
        while s.finished < s.threads.len() {
            s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn deadlocked(&self) -> bool {
        self.lock().deadlocked
    }

    fn failed(&self) -> bool {
        self.lock().failed
    }

    fn schedule_string(&self) -> String {
        let s = self.lock();
        let ids: Vec<String> = s.trace.iter().map(|d| d.chosen.to_string()).collect();
        ids.join(",")
    }

    /// Depth-first backtrack: drop exhausted suffix decisions, advance the
    /// deepest one with untried alternatives. `None` when the tree is done.
    fn next_replay(&self) -> Option<Vec<Decision>> {
        let mut s = self.lock();
        let mut trace = std::mem::take(&mut s.trace);
        while let Some(last) = trace.pop() {
            let mut remaining = last.remaining;
            if !remaining.is_empty() {
                let chosen = remaining.remove(0);
                trace.push(Decision { chosen, remaining });
                return Some(trace);
            }
        }
        None
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Run `f` under the model checker, exploring thread interleavings until the
/// schedule tree is exhausted. Panics (re-raising the failure) on the first
/// schedule where an assertion inside `f` fails, a spawned thread panics, or
/// a join deadlock is detected.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_iterations = env_usize("LOOM_MAX_ITERATIONS", 100_000);
    let mut replay: Vec<Decision> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        assert!(
            iterations <= max_iterations,
            "loom: exceeded {max_iterations} schedules; shrink the model or raise LOOM_MAX_ITERATIONS"
        );
        let sched = Arc::new(Scheduler::new(std::mem::take(&mut replay), max_preemptions));
        let root_sched = Arc::clone(&sched);
        let root_f = Arc::clone(&f);
        let root = std::thread::Builder::new()
            .name("loom-root".into())
            .spawn(move || {
                set_context(Some(Context {
                    sched: Arc::clone(&root_sched),
                    id: 0,
                }));
                let result = catch_unwind(AssertUnwindSafe(|| root_f()));
                root_sched.thread_finished(0, result.is_err());
                set_context(None);
                if let Err(payload) = result {
                    resume_unwind(payload);
                }
            })
            .expect("spawn loom root thread");
        sched.wait_all_finished();
        let root_result = root.join();
        if let Err(payload) = root_result {
            eprintln!(
                "loom: schedule #{iterations} failed (thread order: {})",
                sched.schedule_string()
            );
            resume_unwind(payload);
        }
        assert!(
            !sched.deadlocked(),
            "loom: deadlock on schedule #{iterations} (thread order: {})",
            sched.schedule_string()
        );
        assert!(
            !sched.failed(),
            "loom: a spawned thread panicked on schedule #{iterations} (thread order: {})",
            sched.schedule_string()
        );
        match sched.next_replay() {
            Some(r) => replay = r,
            None => break,
        }
    }
}
