//! Cooperative scheduler: deterministic replay + depth-first exploration of
//! thread interleavings (with a preemption bound) and, in weak-memory mode,
//! of the values loads are allowed to read.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::mem::Mem;

thread_local! {
    static CONTEXT: RefCell<Option<Context>> = const { RefCell::new(None) };
}

/// Allocator of execution ids, so atomics can tell a fresh execution's
/// history from a stale one (statics survive between executions).
static EXEC_IDS: AtomicU64 = AtomicU64::new(1);

/// Per-thread handle back to the scheduler of the current model execution.
#[derive(Clone)]
pub(crate) struct Context {
    pub(crate) sched: Arc<Scheduler>,
    pub(crate) id: usize,
}

pub(crate) fn current_context() -> Option<Context> {
    CONTEXT.with(|c| c.borrow().clone())
}

fn set_context(ctx: Option<Context>) {
    CONTEXT.with(|c| *c.borrow_mut() = ctx);
}

/// Install the scheduler context on a freshly spawned model thread.
pub(crate) fn enter(ctx: Context) {
    set_context(Some(ctx));
}

/// Clear the context when a model thread winds down.
pub(crate) fn leave() {
    set_context(None);
}

/// A scheduling point at which the current thread lets the scheduler pick the
/// next runner. No-op outside a `model` execution.
pub(crate) fn sync_point() {
    if let Some(ctx) = current_context() {
        ctx.sched.sync_op(ctx.id);
    }
}

/// What a decision in the schedule tree picks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DecisionKind {
    /// `chosen` is a thread id to run next.
    Thread,
    /// `chosen` is an index into a load's readable-store alternatives
    /// (0 = the newest store).
    Value,
}

/// One branch of the schedule tree: the alternative chosen and the ones not
/// yet explored at this decision.
#[derive(Clone, Debug)]
struct Decision {
    kind: DecisionKind,
    chosen: usize,
    remaining: Vec<usize>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Ready,
    /// Blocked joining the thread with this id.
    Blocked(usize),
    Finished,
}

struct State {
    threads: Vec<Status>,
    current: usize,
    /// Decisions made during this execution.
    trace: Vec<Decision>,
    /// Prefix from the previous execution to replay deterministically.
    replay: Vec<Decision>,
    step: usize,
    preemptions: usize,
    /// Set when a model thread panicked (or deadlock was detected); all
    /// gating is abandoned so threads can drain and report.
    failed: bool,
    deadlocked: bool,
    finished: usize,
}

pub(crate) struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
    max_preemptions: usize,
    exec_id: u64,
    mem: Mutex<Mem>,
}

impl Scheduler {
    fn new(replay: Vec<Decision>, max_preemptions: usize, weak_memory: bool) -> Self {
        Scheduler {
            state: Mutex::new(State {
                threads: vec![Status::Ready],
                current: 0,
                trace: Vec::new(),
                replay,
                step: 0,
                preemptions: 0,
                failed: false,
                deadlocked: false,
                finished: 0,
            }),
            cv: Condvar::new(),
            max_preemptions,
            exec_id: EXEC_IDS.fetch_add(1, Ordering::Relaxed), // relaxed-ok: unique ids only
            mem: Mutex::new(Mem::new(weak_memory)),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The memory-model state of this execution. Callers must hold the
    /// schedule turn (be the current thread), so the lock is uncontended
    /// except when an execution is being abandoned after a failure.
    pub(crate) fn lock_mem(&self) -> MutexGuard<'_, Mem> {
        self.mem.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// This execution's id (for atomic history reseeding).
    pub(crate) fn exec_id(&self) -> u64 {
        self.exec_id
    }

    fn enabled(state: &State) -> Vec<usize> {
        state
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Ready)
            .map(|(i, _)| i)
            .collect()
    }

    /// Register a newly spawned model thread. Called by the (running) parent,
    /// so registration order is deterministic under replay.
    pub(crate) fn register(&self, parent: usize) -> usize {
        let id = {
            let mut s = self.lock();
            s.threads.push(Status::Ready);
            s.threads.len() - 1
        };
        // Spawn happens-before edge: the child inherits the parent's view.
        self.lock_mem().spawn_edge(parent, id);
        id
    }

    /// Scheduling point before a shared-memory operation by thread `me`.
    pub(crate) fn sync_op(&self, me: usize) {
        let mut s = self.lock();
        while !s.failed && s.current != me {
            s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
        if s.failed {
            return;
        }
        let enabled = Self::enabled(&s);
        if enabled.len() <= 1 {
            // Sole runnable thread: keep going, nothing to decide.
            return;
        }
        let decision = if s.step < s.replay.len() {
            s.replay[s.step].clone()
        } else {
            // Continuing the current thread is free; switching away while it
            // could still run costs a preemption, so alternatives exist only
            // while the preemption budget lasts.
            let remaining = if s.preemptions < self.max_preemptions {
                enabled.iter().copied().filter(|&t| t != me).collect()
            } else {
                Vec::new()
            };
            Decision {
                kind: DecisionKind::Thread,
                chosen: me,
                remaining,
            }
        };
        s.step += 1;
        if decision.chosen != me {
            s.preemptions += 1;
        }
        s.current = decision.chosen;
        s.trace.push(decision);
        if s.current != me {
            self.cv.notify_all();
            while !s.failed && s.current != me {
                s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
            }
        }
    }

    /// A value decision with `n` alternatives by the thread holding the
    /// turn: which of the readable stores a load observes. Alternative 0
    /// (the newest store) is explored first, so the first execution of any
    /// schedule behaves sequentially consistently; staler values are tried
    /// on backtracking. Value choices never cost preemption budget — they
    /// model the hardware's freedom, not the scheduler's.
    pub(crate) fn choice(&self, _me: usize, n: usize) -> usize {
        debug_assert!(n >= 2, "choice needs at least two alternatives");
        let mut s = self.lock();
        if s.failed {
            return 0;
        }
        let decision = if s.step < s.replay.len() {
            s.replay[s.step].clone()
        } else {
            Decision {
                kind: DecisionKind::Value,
                chosen: 0,
                remaining: (1..n).collect(),
            }
        };
        s.step += 1;
        let chosen = decision.chosen;
        s.trace.push(decision);
        chosen
    }

    /// Pick the next runner after `current` stopped being runnable
    /// (finished or blocked). Forced switches are not preemptions.
    fn reschedule(&self, s: &mut MutexGuard<'_, State>) {
        let enabled = Self::enabled(s);
        match enabled.len() {
            0 => {
                if s.finished < s.threads.len() {
                    // Someone is still blocked but nobody can run.
                    s.failed = true;
                    s.deadlocked = true;
                }
                self.cv.notify_all();
            }
            1 => {
                s.current = enabled[0];
                self.cv.notify_all();
            }
            _ => {
                let decision = if s.step < s.replay.len() {
                    s.replay[s.step].clone()
                } else {
                    Decision {
                        kind: DecisionKind::Thread,
                        chosen: enabled[0],
                        remaining: enabled[1..].to_vec(),
                    }
                };
                s.step += 1;
                s.current = decision.chosen;
                s.trace.push(decision);
                self.cv.notify_all();
            }
        }
    }

    /// Mark `me` finished, wake joiners, hand off the schedule. Waits for its
    /// turn first so the enabled set only changes at deterministic points.
    pub(crate) fn thread_finished(&self, me: usize, panicked: bool) {
        let mut s = self.lock();
        if !panicked {
            while !s.failed && s.current != me {
                s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
            }
        }
        s.threads[me] = Status::Finished;
        s.finished += 1;
        for t in 0..s.threads.len() {
            if s.threads[t] == Status::Blocked(me) {
                s.threads[t] = Status::Ready;
            }
        }
        if panicked {
            s.failed = true;
        }
        if s.failed {
            self.cv.notify_all();
            return;
        }
        self.reschedule(&mut s);
    }

    /// Block `me` until `target` finishes.
    pub(crate) fn join_wait(&self, me: usize, target: usize) {
        {
            let mut s = self.lock();
            while !s.failed && s.current != me {
                s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
            }
            if !s.failed && s.threads[target] != Status::Finished {
                s.threads[me] = Status::Blocked(target);
                self.reschedule(&mut s);
                while !s.failed && s.current != me {
                    s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
                }
            }
        }
        // Join happens-before edge: the target has finished (or the
        // execution failed and the clocks no longer matter).
        self.lock_mem().join_edge(me, target);
    }

    fn wait_all_finished(&self) {
        let mut s = self.lock();
        while s.finished < s.threads.len() {
            s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn deadlocked(&self) -> bool {
        self.lock().deadlocked
    }

    fn failed(&self) -> bool {
        self.lock().failed
    }

    fn schedule_string(&self) -> String {
        let s = self.lock();
        let ids: Vec<String> = s
            .trace
            .iter()
            .map(|d| match d.kind {
                DecisionKind::Thread => d.chosen.to_string(),
                DecisionKind::Value => format!("r{}", d.chosen),
            })
            .collect();
        ids.join(",")
    }

    /// Depth-first backtrack: drop exhausted suffix decisions, advance the
    /// deepest one with untried alternatives. `None` when the tree is done.
    fn next_replay(&self) -> Option<Vec<Decision>> {
        let mut s = self.lock();
        let mut trace = std::mem::take(&mut s.trace);
        while let Some(last) = trace.pop() {
            let mut remaining = last.remaining;
            if !remaining.is_empty() {
                let chosen = remaining.remove(0);
                trace.push(Decision {
                    kind: last.kind,
                    chosen,
                    remaining,
                });
                return Some(trace);
            }
        }
        None
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_bool(name: &str, default: bool) -> bool {
    match std::env::var(name) {
        Ok(v) => !matches!(v.as_str(), "0" | "false" | "off" | "no"),
        Err(_) => default,
    }
}

/// Configuration for a model run — the shim's analogue of
/// `loom::model::Builder`.
///
/// ```
/// let mut b = loom::Builder::new();
/// b.weak_memory = false; // legacy SeqCst-only exploration
/// b.check(|| { /* model body */ });
/// ```
#[derive(Clone, Debug)]
pub struct Builder {
    /// Preemption bound per execution (CHESS-style). Defaults to 2,
    /// overridable with `LOOM_MAX_PREEMPTIONS`.
    pub max_preemptions: usize,
    /// Schedule-count ceiling before the run fails loudly. Defaults to
    /// 100 000, overridable with `LOOM_MAX_ITERATIONS`.
    pub max_iterations: usize,
    /// Explore weak-memory behaviors (stale reads permitted by the
    /// `Ordering` arguments)? Defaults to true, overridable with
    /// `LOOM_WEAK_MEMORY=0`. When false, every load reads the newest
    /// store: the legacy sequentially-consistent-only exploration, which
    /// provably misses relaxed-publication bugs.
    pub weak_memory: bool,
}

impl Default for Builder {
    fn default() -> Self {
        Builder::new()
    }
}

impl Builder {
    /// A builder with the environment-derived defaults.
    pub fn new() -> Builder {
        Builder {
            max_preemptions: env_usize("LOOM_MAX_PREEMPTIONS", 2),
            max_iterations: env_usize("LOOM_MAX_ITERATIONS", 100_000),
            weak_memory: env_bool("LOOM_WEAK_MEMORY", true),
        }
    }

    /// Run `f` under the model checker, exploring the configured space
    /// until the schedule tree is exhausted. Panics (re-raising the
    /// failure) on the first schedule where an assertion inside `f` fails,
    /// a spawned thread panics, or a join deadlock is detected.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut replay: Vec<Decision> = Vec::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            assert!(
                iterations <= self.max_iterations,
                "loom: exceeded {} schedules; shrink the model or raise LOOM_MAX_ITERATIONS",
                self.max_iterations
            );
            let sched = Arc::new(Scheduler::new(
                std::mem::take(&mut replay),
                self.max_preemptions,
                self.weak_memory,
            ));
            let root_sched = Arc::clone(&sched);
            let root_f = Arc::clone(&f);
            let root = std::thread::Builder::new()
                .name("loom-root".into())
                .spawn(move || {
                    set_context(Some(Context {
                        sched: Arc::clone(&root_sched),
                        id: 0,
                    }));
                    let result = catch_unwind(AssertUnwindSafe(|| root_f()));
                    root_sched.thread_finished(0, result.is_err());
                    set_context(None);
                    if let Err(payload) = result {
                        resume_unwind(payload);
                    }
                })
                .expect("spawn loom root thread");
            sched.wait_all_finished();
            let root_result = root.join();
            if let Err(payload) = root_result {
                eprintln!(
                    "loom: schedule #{iterations} failed (decisions: {})",
                    sched.schedule_string()
                );
                resume_unwind(payload);
            }
            assert!(
                !sched.deadlocked(),
                "loom: deadlock on schedule #{iterations} (decisions: {})",
                sched.schedule_string()
            );
            assert!(
                !sched.failed(),
                "loom: a spawned thread panicked on schedule #{iterations} (decisions: {})",
                sched.schedule_string()
            );
            match sched.next_replay() {
                Some(r) => replay = r,
                None => break,
            }
        }
    }
}

/// Run `f` under the model checker with the default configuration (weak
/// memory on, preemption bound 2). See [`Builder`] for the knobs.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}
