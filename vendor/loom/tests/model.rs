//! Self-tests for the loom shim: the checker must accept correct code and
//! find classic interleaving bugs.

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;

#[test]
fn fetch_add_never_loses_updates() {
    loom::model(|| {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let t = loom::thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        counter.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    });
}

#[test]
fn finds_the_lost_update_bug() {
    // Non-atomic read-modify-write: some schedule must lose an update, and
    // the checker must find that schedule and surface the assertion failure.
    let result = std::panic::catch_unwind(|| {
        loom::model(|| {
            let counter = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&counter);
            let t = loom::thread::spawn(move || {
                let v = c2.load(Ordering::Relaxed);
                c2.store(v + 1, Ordering::Relaxed);
            });
            let v = counter.load(Ordering::Relaxed);
            counter.store(v + 1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(counter.load(Ordering::Relaxed), 2);
        });
    });
    assert!(result.is_err(), "model checker missed the lost-update race");
}

#[test]
fn finds_publication_ordering_bug() {
    // Writer publishes `ready` before writing the payload; a reader that
    // observes ready==1 can still see the stale payload under some schedule.
    let result = std::panic::catch_unwind(|| {
        loom::model(|| {
            let ready = Arc::new(AtomicU64::new(0));
            let data = Arc::new(AtomicU64::new(0));
            let (r2, d2) = (Arc::clone(&ready), Arc::clone(&data));
            let t = loom::thread::spawn(move || {
                r2.store(1, Ordering::Relaxed); // bug: publish before payload
                d2.store(42, Ordering::Relaxed);
            });
            if ready.load(Ordering::Relaxed) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join().unwrap();
        });
    });
    assert!(result.is_err(), "model checker missed the publication race");
}

#[test]
fn publish_last_with_release_acquire_is_clean() {
    // Correct version of the above: payload first, then a Release store of
    // the flag, gated by an Acquire load. No schedule and no weak-memory
    // behavior can fail. (The all-Relaxed variant is *not* clean any more —
    // that is the point of the weak-memory upgrade; see tests/weak.rs.)
    loom::model(|| {
        let ready = Arc::new(AtomicU64::new(0));
        let data = Arc::new(AtomicU64::new(0));
        let (r2, d2) = (Arc::clone(&ready), Arc::clone(&data));
        let t = loom::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            r2.store(1, Ordering::Release);
        });
        if ready.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
}

#[test]
fn three_threads_interleave() {
    loom::model(|| {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                loom::thread::spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        counter.fetch_add(1, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    });
}
