//! Weak-memory litmus suite: the checker must exhibit the relaxed
//! behaviors real hardware allows, respect the synchronization that
//! `Release`/`Acquire`/`SeqCst` provide, and — the headline regression —
//! catch a relaxed-publication bug that the legacy sequentially-consistent
//! exploration provably misses.

use std::collections::HashSet;
use std::sync::Mutex;

use loom::sync::atomic::{fence, AtomicU64, Ordering};
use loom::sync::Arc;

/// The seeded bug: publish a payload with two Relaxed stores and gate the
/// reader on the flag with a Relaxed load. Correct under sequential
/// consistency (flag is stored after data), broken on weak hardware.
fn relaxed_publication() {
    let ready = Arc::new(AtomicU64::new(0));
    let data = Arc::new(AtomicU64::new(0));
    let (r2, d2) = (Arc::clone(&ready), Arc::clone(&data));
    let t = loom::thread::spawn(move || {
        d2.store(42, Ordering::Relaxed);
        r2.store(1, Ordering::Relaxed); // bug: no release on the flag
    });
    if ready.load(Ordering::Relaxed) == 1 {
        // bug: no acquire
        assert_eq!(data.load(Ordering::Relaxed), 42, "stale payload observed");
    }
    t.join().unwrap();
}

#[test]
fn relaxed_publication_passes_the_legacy_sc_only_exploration() {
    // Under SC-only exploration every load reads the newest store, so the
    // store order (data before flag) is enough and no schedule fails. This
    // is exactly the false confidence the weak-memory upgrade removes.
    let mut b = loom::Builder::new();
    b.weak_memory = false;
    b.check(relaxed_publication);
}

#[test]
fn relaxed_publication_is_caught_by_weak_memory_exploration() {
    let result = std::panic::catch_unwind(|| {
        let mut b = loom::Builder::new();
        b.weak_memory = true;
        b.check(relaxed_publication);
    });
    assert!(
        result.is_err(),
        "weak-memory exploration missed the relaxed-publication bug"
    );
}

#[test]
fn store_buffering_relaxed_allows_both_threads_to_read_zero() {
    // The classic SB litmus: with relaxed accesses, both threads may read
    // the other's location as 0 — impossible under any interleaving of
    // sequentially consistent operations. The checker must reach it.
    let outcomes: &'static Mutex<HashSet<(u64, u64)>> =
        Box::leak(Box::new(Mutex::new(HashSet::new())));
    loom::model(move || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = loom::thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            y2.load(Ordering::Relaxed)
        });
        y.store(1, Ordering::Relaxed);
        let r0 = x.load(Ordering::Relaxed);
        let r1 = t.join().unwrap();
        outcomes.lock().unwrap().insert((r0, r1));
    });
    let seen = outcomes.lock().unwrap();
    assert!(
        seen.contains(&(0, 0)),
        "store buffering (both read 0) never explored: {seen:?}"
    );
    assert!(seen.contains(&(1, 1)), "fully ordered outcome missing");
}

#[test]
fn store_buffering_seqcst_forbids_both_zero() {
    // With SeqCst accesses the total order makes (0, 0) impossible; the
    // checker must never produce it (the assertion runs on every schedule).
    loom::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = loom::thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        y.store(1, Ordering::SeqCst);
        let r0 = x.load(Ordering::SeqCst);
        let r1 = t.join().unwrap();
        assert!(
            r0 == 1 || r1 == 1,
            "SeqCst store buffering produced the forbidden (0, 0)"
        );
    });
}

#[test]
fn seqcst_fences_restore_relaxed_publication() {
    // The Chase–Lev pattern: relaxed accesses ordered by SeqCst fences on
    // both sides must publish correctly.
    loom::model(|| {
        let ready = Arc::new(AtomicU64::new(0));
        let data = Arc::new(AtomicU64::new(0));
        let (r2, d2) = (Arc::clone(&ready), Arc::clone(&data));
        let t = loom::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            r2.store(1, Ordering::Relaxed);
        });
        if ready.load(Ordering::Relaxed) == 1 {
            fence(Ordering::SeqCst);
            assert_eq!(data.load(Ordering::Relaxed), 42, "fences failed to order");
        }
        t.join().unwrap();
    });
}

#[test]
fn per_location_coherence_holds_even_relaxed() {
    // Coherence: a thread that read a newer store of a location can never
    // subsequently read an older one, orderings notwithstanding.
    loom::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = loom::thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            x2.store(2, Ordering::Relaxed);
        });
        let first = x.load(Ordering::Relaxed);
        let second = x.load(Ordering::Relaxed);
        assert!(
            second >= first,
            "coherence violated: read {first} then the older {second}"
        );
        t.join().unwrap();
        // Post-join, everything the writer did happens-before us.
        assert_eq!(x.load(Ordering::Relaxed), 2);
    });
}

#[test]
fn rmw_continues_the_release_sequence() {
    // A Release store followed by a Relaxed CAS chain: an Acquire reader of
    // the *last* link must still synchronize with the head of the sequence
    // and see the payload.
    loom::model(|| {
        let payload = Arc::new(AtomicU64::new(0));
        let head = Arc::new(AtomicU64::new(0));
        let (p2, h2) = (Arc::clone(&payload), Arc::clone(&head));
        let t = loom::thread::spawn(move || {
            p2.store(7, Ordering::Relaxed);
            h2.store(1, Ordering::Release);
            // Relaxed RMW: continues (not breaks) the release sequence.
            h2.fetch_add(1, Ordering::Relaxed);
        });
        if head.load(Ordering::Acquire) == 2 {
            assert_eq!(
                payload.load(Ordering::Relaxed),
                7,
                "release sequence broken by the relaxed RMW"
            );
        }
        t.join().unwrap();
    });
}

#[test]
fn plain_relaxed_store_breaks_the_release_sequence() {
    // Contrast with the above: if the second link is a plain Relaxed
    // *store* (not an RMW), the acquire reader synchronizes with nothing
    // and the stale payload must be observable.
    let result = std::panic::catch_unwind(|| {
        loom::model(|| {
            let payload = Arc::new(AtomicU64::new(0));
            let head = Arc::new(AtomicU64::new(0));
            let (p2, h2) = (Arc::clone(&payload), Arc::clone(&head));
            let t = loom::thread::spawn(move || {
                p2.store(7, Ordering::Relaxed);
                h2.store(1, Ordering::Release);
                h2.store(2, Ordering::Relaxed); // breaks the sequence
            });
            if head.load(Ordering::Acquire) == 2 {
                assert_eq!(payload.load(Ordering::Relaxed), 7);
            }
            t.join().unwrap();
        });
    });
    assert!(
        result.is_err(),
        "checker failed to break the release sequence at a plain relaxed store"
    );
}

#[test]
fn spawn_and_join_are_synchronization_edges() {
    // Everything before spawn is visible to the child relaxed; everything
    // the child does is visible after join relaxed.
    loom::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        x.store(1, Ordering::Relaxed);
        let x2 = Arc::clone(&x);
        let t = loom::thread::spawn(move || {
            assert_eq!(x2.load(Ordering::Relaxed), 1, "spawn edge lost");
            x2.store(2, Ordering::Relaxed);
        });
        t.join().unwrap();
        assert_eq!(x.load(Ordering::Relaxed), 2, "join edge lost");
    });
}

#[test]
fn seeded_weak_counter_bug_is_found_quickly() {
    // A "publication via Relaxed fetch_add counter" bug: the reader gates
    // on a relaxed counter instead of an acquire one. Ensures RMWs do not
    // accidentally over-synchronize in the model.
    let result = std::panic::catch_unwind(|| {
        loom::model(|| {
            let count = Arc::new(AtomicU64::new(0));
            let slot = Arc::new(AtomicU64::new(0));
            let (c2, s2) = (Arc::clone(&count), Arc::clone(&slot));
            let t = loom::thread::spawn(move || {
                s2.store(9, Ordering::Relaxed);
                c2.fetch_add(1, Ordering::Relaxed); // bug: should be Release
            });
            if count.load(Ordering::Acquire) == 1 {
                assert_eq!(slot.load(Ordering::Relaxed), 9);
            }
            t.join().unwrap();
        });
    });
    assert!(
        result.is_err(),
        "relaxed fetch_add publication slipped past the checker"
    );
}

#[test]
fn release_fetch_add_publication_is_clean() {
    // The fixed version of the counter bug — and exactly the histogram's
    // `count` publication discipline after this PR.
    loom::model(|| {
        let count = Arc::new(AtomicU64::new(0));
        let slot = Arc::new(AtomicU64::new(0));
        let (c2, s2) = (Arc::clone(&count), Arc::clone(&slot));
        let t = loom::thread::spawn(move || {
            s2.store(9, Ordering::Relaxed);
            c2.fetch_add(1, Ordering::Release);
        });
        if count.load(Ordering::Acquire) == 1 {
            assert_eq!(slot.load(Ordering::Relaxed), 9);
        }
        t.join().unwrap();
    });
}
