//! Self-tests: the detector must catch seeded races (reporting both
//! stacks) and stay silent on correctly synchronized protocols.

use std::sync::atomic::Ordering;
use std::sync::mpsc;

use tsan::sync::atomic::{fence, AtomicU64};
use tsan::sync::{Arc, Mutex};
use tsan::RacyCell;

/// Extract the panic message from a `catch_unwind` payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => String::from("<non-string panic payload>"),
        },
    }
}

#[test]
fn write_write_race_is_caught_with_both_stacks() {
    let cell = Arc::new(RacyCell::new(0u64));
    let c2 = Arc::clone(&cell);
    let (tx, rx) = mpsc::channel();
    let t = tsan::thread::spawn(move || {
        c2.write(|v| *v = 1);
        // A std channel orders the accesses physically but records no
        // detector edge — exactly a "worked by luck" schedule.
        tx.send(()).unwrap();
    });
    rx.recv().unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        cell.write(|v| *v = 2);
    }));
    let msg = panic_message(result.expect_err("write-write race not detected"));
    assert!(msg.contains("data race detected"), "message: {msg}");
    assert!(msg.contains("conflicting write"), "message: {msg}");
    assert!(
        msg.contains("previous unsynchronized write"),
        "missing the first access's stack: {msg}"
    );
    t.join().unwrap();
}

#[test]
fn write_read_race_is_caught() {
    let cell = Arc::new(RacyCell::new(0u64));
    let c2 = Arc::clone(&cell);
    let (tx, rx) = mpsc::channel();
    let t = tsan::thread::spawn(move || {
        c2.write(|v| *v = 1);
        tx.send(()).unwrap();
    });
    rx.recv().unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        cell.read(|v| *v);
    }));
    let msg = panic_message(result.expect_err("write-read race not detected"));
    assert!(msg.contains("conflicting read"), "message: {msg}");
    assert!(
        msg.contains("previous unsynchronized write"),
        "message: {msg}"
    );
    t.join().unwrap();
}

#[test]
fn read_write_race_is_caught() {
    let cell = Arc::new(RacyCell::new(0u64));
    let c2 = Arc::clone(&cell);
    let (tx, rx) = mpsc::channel();
    let t = tsan::thread::spawn(move || {
        c2.read(|v| *v);
        tx.send(()).unwrap();
    });
    rx.recv().unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        cell.write(|v| *v = 2);
    }));
    let msg = panic_message(result.expect_err("read-write race not detected"));
    assert!(msg.contains("conflicting write"), "message: {msg}");
    assert!(
        msg.contains("previous unsynchronized read"),
        "message: {msg}"
    );
    t.join().unwrap();
}

#[test]
fn relaxed_publication_is_flagged() {
    // The seeded protocol bug from the loom suite, on real threads: data
    // published under a Relaxed flag creates no happens-before edge, so
    // the consumer's read races with the producer's write.
    let cell = Arc::new(RacyCell::new(0u64));
    let flag = Arc::new(AtomicU64::new(0));
    let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
    let t = tsan::thread::spawn(move || {
        while f2.load(Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        c2.read(|v| *v)
    });
    cell.write(|v| *v = 42);
    flag.store(1, Ordering::Relaxed); // bug: should be Release
    assert!(
        t.join().is_err(),
        "relaxed-flag publication raced but was not flagged"
    );
}

#[test]
fn release_acquire_publication_is_clean() {
    let cell = Arc::new(RacyCell::new(0u64));
    let flag = Arc::new(AtomicU64::new(0));
    let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
    let t = tsan::thread::spawn(move || {
        while f2.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        c2.read(|v| *v)
    });
    cell.write(|v| *v = 42);
    flag.store(1, Ordering::Release);
    assert_eq!(t.join().unwrap(), 42);
}

#[test]
fn fence_ordered_publication_is_clean() {
    // Relaxed accesses ordered by explicit fences on both sides (the
    // Chase–Lev pattern) must not be flagged.
    let cell = Arc::new(RacyCell::new(0u64));
    let flag = Arc::new(AtomicU64::new(0));
    let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
    let t = tsan::thread::spawn(move || {
        while f2.load(Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        fence(Ordering::Acquire);
        c2.read(|v| *v)
    });
    cell.write(|v| *v = 7);
    fence(Ordering::Release);
    flag.store(1, Ordering::Relaxed);
    assert_eq!(t.join().unwrap(), 7);
}

#[test]
fn mutex_protected_accesses_are_clean() {
    let cell = Arc::new(Mutex::new(RacyCell::new(0u64)));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let c = Arc::clone(&cell);
            tsan::thread::spawn(move || {
                for _ in 0..100 {
                    let guard = c.lock().unwrap();
                    guard.write(|v| *v += 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cell.lock().unwrap().read(|v| *v), 400);
}

#[test]
fn fork_and_join_edges_are_clean() {
    let cell = Arc::new(RacyCell::new(0u64));
    cell.write(|v| *v = 1);
    let c2 = Arc::clone(&cell);
    let t = tsan::thread::spawn(move || {
        assert_eq!(c2.read(|v| *v), 1); // spawn edge covers the parent write
        c2.write(|v| *v = 2);
    });
    t.join().unwrap();
    assert_eq!(cell.read(|v| *v), 2); // join edge covers the child write
}

#[test]
fn release_fetch_add_gates_cleanly() {
    // The histogram discipline: payload writes published by a Release
    // fetch_add on a counter, readers gated by an Acquire load.
    let cell = Arc::new(RacyCell::new(0u64));
    let count = Arc::new(AtomicU64::new(0));
    let (c2, n2) = (Arc::clone(&cell), Arc::clone(&count));
    let t = tsan::thread::spawn(move || {
        c2.write(|v| *v = 9);
        n2.fetch_add(1, Ordering::Release);
    });
    while count.load(Ordering::Acquire) == 0 {
        std::thread::yield_now();
    }
    assert_eq!(cell.read(|v| *v), 9);
    t.join().unwrap();
}
