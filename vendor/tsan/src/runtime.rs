//! Per-thread detector state: thread ids, the current thread's vector
//! clock, and the acquire/release primitives the wrappers are built from.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::clock::VectorClock;

// relaxed-ok: unique id allocation only; no data is published through this.
static NEXT_TID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static TID: Cell<Option<usize>> = const { Cell::new(None) };
    static CLOCK: RefCell<VectorClock> = const { RefCell::new(VectorClock::new()) };
}

/// This thread's detector id, assigned on first use. Threads spawned via
/// [`crate::thread::spawn`] are registered eagerly so the spawn edge lands
/// before their first access; any other thread gets a fresh clock with no
/// incoming edges, which is sound (it can only make more pairs look racy,
/// never fewer).
pub fn tid() -> usize {
    TID.with(|t| match t.get() {
        Some(id) => id,
        None => {
            // relaxed-ok: unique-id allocation; nothing is published
            // through this counter, only distinctness matters.
            let id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(Some(id));
            CLOCK.with(|c| c.borrow_mut().tick(id));
            id
        }
    })
}

/// Run `f` with this thread's clock.
pub fn with_clock<R>(f: impl FnOnce(&mut VectorClock) -> R) -> R {
    let _ = tid();
    CLOCK.with(|c| f(&mut c.borrow_mut()))
}

/// Acquire edge: join the sync object's clock into this thread's.
pub fn acquire(sync: &Mutex<VectorClock>) {
    let theirs = sync.lock().unwrap_or_else(|p| p.into_inner()).clone();
    with_clock(|mine| mine.join(&theirs));
}

/// Release edge: join this thread's clock into the sync object's, then
/// tick so later accesses by this thread are not covered by the release.
pub fn release(sync: &Mutex<VectorClock>) {
    let me = tid();
    with_clock(|mine| {
        sync.lock().unwrap_or_else(|p| p.into_inner()).join(mine);
        mine.tick(me);
    });
}

/// Fork edge for [`crate::thread::spawn`]: snapshot the parent clock (the
/// child starts with everything the parent has done visible) and tick the
/// parent.
pub fn fork() -> VectorClock {
    let me = tid();
    with_clock(|mine| {
        let snapshot = mine.clone();
        mine.tick(me);
        snapshot
    })
}

/// Install the parent snapshot in a freshly spawned child; returns the
/// child's tid.
pub fn adopt(parent: VectorClock) -> usize {
    let me = tid();
    with_clock(|mine| {
        mine.join(&parent);
        mine.tick(me);
    });
    me
}

/// Join edge: everything the finished child did is now visible here.
pub fn join_with(child_final: &VectorClock) {
    with_clock(|mine| mine.join(child_final));
}

/// Snapshot this thread's clock (used by exiting threads to publish their
/// final clock for the joiner).
pub fn snapshot() -> VectorClock {
    with_clock(|mine| mine.clone())
}
