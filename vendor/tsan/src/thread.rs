//! Thread wrappers recording the fork and join happens-before edges.

use std::sync::{Arc, Mutex};

use crate::clock::VectorClock;
use crate::runtime;

/// Handle to a spawned instrumented thread.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    final_clock: Arc<Mutex<Option<VectorClock>>>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread, recording the join edge (everything the child
    /// did happens-before the code after `join`). The edge is recorded
    /// even if the child panicked, as long as it got far enough to run.
    pub fn join(self) -> std::thread::Result<T> {
        let result = self.inner.join();
        if let Some(final_clock) = self
            .final_clock
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
        {
            runtime::join_with(&final_clock);
        }
        result
    }
}

/// Spawn an instrumented thread. The child inherits the parent's clock
/// (spawn edge); the handle's `join` records the reverse edge.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let parent = runtime::fork();
    let final_clock = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&final_clock);
    let inner = std::thread::spawn(move || {
        runtime::adopt(parent);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(runtime::snapshot());
        match result {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    });
    JoinHandle { inner, final_clock }
}

/// Plain yield (no detector semantics).
pub fn yield_now() {
    std::thread::yield_now();
}
