//! Instrumented synchronization primitives: a `Mutex` that records
//! acquire/release edges, atomics whose `Ordering` arguments create (or
//! withhold) happens-before edges, and fences.
//!
//! The atomics are *real* atomics — runs execute at full speed on real
//! threads — with a per-object vector clock alongside. The clock follows a
//! tail approximation: every release-capable operation joins into one
//! clock per atomic and every acquire-capable operation joins out of it,
//! which can only add happens-before edges relative to C11 (release
//! sequences and failed CAS over-synchronize). The detector therefore errs
//! exclusively toward false *negatives*; a reported race is always real.

use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};

pub use std::sync::{Arc, Weak};

use crate::clock::VectorClock;
use crate::runtime;

/// A mutex recording the release edge at unlock and the acquire edge at
/// lock, mirroring the `std::sync::Mutex` poison API.
pub struct Mutex<T: ?Sized> {
    clock: std::sync::Mutex<VectorClock>,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; records the release edge on drop (while the
/// lock is still held, so no later locker can miss it).
pub struct MutexGuard<'a, T: ?Sized> {
    clock: &'a std::sync::Mutex<VectorClock>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self {
            clock: std::sync::Mutex::new(VectorClock::new()),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Lock, recording the acquire edge from the previous holder.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let (guard, poisoned) = match self.inner.lock() {
            Ok(g) => (g, false),
            Err(p) => (p.into_inner(), true),
        };
        runtime::acquire(&self.clock);
        let guard = MutexGuard {
            clock: &self.clock,
            inner: Some(guard),
        };
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }

    /// Try to lock without blocking.
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        let (guard, poisoned) = match self.inner.try_lock() {
            Ok(g) => (g, false),
            Err(TryLockError::WouldBlock) => return Err(TryLockError::WouldBlock),
            Err(TryLockError::Poisoned(p)) => (p.into_inner(), true),
        };
        runtime::acquire(&self.clock);
        let guard = MutexGuard {
            clock: &self.clock,
            inner: Some(guard),
        };
        if poisoned {
            Err(TryLockError::Poisoned(PoisonError::new(guard)))
        } else {
            Ok(guard)
        }
    }

    /// Exclusive access through a unique reference (no edges needed).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").field("inner", &self.inner).finish()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard still held")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard still held")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release edge while the inner lock is still held: the next locker
        // acquires strictly after this join, so it cannot miss the edge.
        runtime::release(self.clock);
        self.inner = None;
    }
}

/// Instrumented atomics and fences.
pub mod atomic {
    use std::sync::Mutex;

    pub use std::sync::atomic::Ordering;

    use crate::clock::VectorClock;
    use crate::runtime;

    fn is_acquire(order: Ordering) -> bool {
        matches!(
            order,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    fn is_release(order: Ordering) -> bool {
        matches!(
            order,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    static FENCE_CLOCK: Mutex<VectorClock> = Mutex::new(VectorClock::new());

    /// An instrumented fence. Fences synchronize through one global clock
    /// (all release fences join in, all acquire fences join out) — an
    /// over-approximation of C11 fence pairing in the false-negative
    /// direction only.
    pub fn fence(order: Ordering) {
        assert!(
            order != Ordering::Relaxed,
            "there is no such thing as a relaxed fence"
        );
        std::sync::atomic::fence(order);
        if is_release(order) {
            runtime::release(&FENCE_CLOCK);
        }
        if is_acquire(order) {
            runtime::acquire(&FENCE_CLOCK);
        }
    }

    macro_rules! instrumented_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty) => {
            $(#[$doc])*
            #[derive(Debug)]
            pub struct $name {
                clock: Mutex<VectorClock>,
                value: std::sync::atomic::$std,
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }

            impl $name {
                /// Create a new atomic with the given initial value.
                pub const fn new(value: $ty) -> Self {
                    Self {
                        clock: Mutex::new(VectorClock::new()),
                        value: std::sync::atomic::$std::new(value),
                    }
                }

                fn pre(&self, order: Ordering) {
                    if is_release(order) {
                        runtime::release(&self.clock);
                    }
                }

                fn post(&self, order: Ordering) {
                    if is_acquire(order) {
                        runtime::acquire(&self.clock);
                    }
                }

                /// Load; acquire-capable orderings join the atomic's clock.
                pub fn load(&self, order: Ordering) -> $ty {
                    let v = self.value.load(order);
                    self.post(order);
                    v
                }

                /// Store; release-capable orderings publish this thread's
                /// clock through the atomic.
                pub fn store(&self, value: $ty, order: Ordering) {
                    self.pre(order);
                    self.value.store(value, order);
                }

                /// Swap, returning the previous value.
                pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                    self.pre(order);
                    let v = self.value.swap(value, order);
                    self.post(order);
                    v
                }

                /// Compare-and-exchange; `Ok(previous)` on success. The
                /// release edge is recorded conservatively even on failure
                /// (false-negative direction only).
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.pre(success);
                    let r = self.value.compare_exchange(current, new, success, failure);
                    match &r {
                        Ok(_) => self.post(success),
                        Err(_) => self.post(failure),
                    }
                    r
                }

                /// Weak compare-and-exchange (may fail spuriously).
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.pre(success);
                    let r = self
                        .value
                        .compare_exchange_weak(current, new, success, failure);
                    match &r {
                        Ok(_) => self.post(success),
                        Err(_) => self.post(failure),
                    }
                    r
                }

                /// Consume the atomic and return the inner value.
                pub fn into_inner(self) -> $ty {
                    self.value.into_inner()
                }
            }
        };
    }

    instrumented_atomic!(
        /// Instrumented `AtomicU64`.
        AtomicU64, AtomicU64, u64
    );
    instrumented_atomic!(
        /// Instrumented `AtomicUsize`.
        AtomicUsize, AtomicUsize, usize
    );
    instrumented_atomic!(
        /// Instrumented `AtomicBool`.
        AtomicBool, AtomicBool, bool
    );

    macro_rules! instrumented_fetch_arith {
        ($name:ident, $ty:ty) => {
            impl $name {
                /// Add, returning the previous value (wrapping).
                pub fn fetch_add(&self, delta: $ty, order: Ordering) -> $ty {
                    self.pre(order);
                    let v = self.value.fetch_add(delta, order);
                    self.post(order);
                    v
                }

                /// Subtract, returning the previous value (wrapping).
                pub fn fetch_sub(&self, delta: $ty, order: Ordering) -> $ty {
                    self.pre(order);
                    let v = self.value.fetch_sub(delta, order);
                    self.post(order);
                    v
                }

                /// Store the minimum, returning the previous value.
                pub fn fetch_min(&self, value: $ty, order: Ordering) -> $ty {
                    self.pre(order);
                    let v = self.value.fetch_min(value, order);
                    self.post(order);
                    v
                }

                /// Store the maximum, returning the previous value.
                pub fn fetch_max(&self, value: $ty, order: Ordering) -> $ty {
                    self.pre(order);
                    let v = self.value.fetch_max(value, order);
                    self.post(order);
                    v
                }
            }
        };
    }

    instrumented_fetch_arith!(AtomicU64, u64);
    instrumented_fetch_arith!(AtomicUsize, usize);
}
