//! [`RacyCell`]: an instrumented cell for data that is *supposed* to be
//! protected by some external synchronization protocol. Every access is
//! checked against the happens-before relation; an unordered conflicting
//! pair panics with both stacks.

use std::backtrace::Backtrace;
use std::sync::{Arc, Mutex};

use crate::clock::{epoch_visible, VectorClock};
use crate::runtime;

struct Access {
    tid: usize,
    at: u64,
    op: &'static str,
    stack: Arc<Backtrace>,
}

impl Access {
    fn capture(tid: usize, at: u64, op: &'static str) -> Self {
        Self {
            tid,
            at,
            op,
            stack: Arc::new(Backtrace::force_capture()),
        }
    }
}

#[derive(Default)]
struct Shadow {
    write: Option<Access>,
    reads: Vec<Access>,
}

/// A cell whose reads and writes are checked for data races.
///
/// The payload lives behind a private mutex, so even a program whose
/// protocol is broken never performs a *physical* race (no undefined
/// behavior while diagnosing); the detector instead reports the pair of
/// accesses that the protocol failed to order. Replace `RacyCell<T>` with
/// plain `T` (or `UnsafeCell`) in the uninstrumented build.
pub struct RacyCell<T> {
    data: Mutex<T>,
    shadow: Mutex<Shadow>,
}

impl<T> RacyCell<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self {
            data: Mutex::new(value),
            shadow: Mutex::new(Shadow {
                write: None,
                reads: Vec::new(),
            }),
        }
    }

    /// Read access: panics if a write that does not happen-before this
    /// thread has been recorded.
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let me = runtime::tid();
        let now = runtime::snapshot();
        {
            let mut sh = self.shadow.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(w) = &sh.write {
                if !epoch_visible(w.tid, w.at, &now) {
                    report(self, "read", w, &now);
                }
            }
            let at = now.get(me);
            match sh.reads.iter_mut().find(|a| a.tid == me) {
                Some(slot) => *slot = Access::capture(me, at, "read"),
                None => sh.reads.push(Access::capture(me, at, "read")),
            }
        }
        f(&self.data.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Write access: panics if any prior read or write does not
    /// happen-before this thread.
    pub fn write<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let me = runtime::tid();
        let now = runtime::snapshot();
        {
            let mut sh = self.shadow.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(w) = &sh.write {
                if !epoch_visible(w.tid, w.at, &now) {
                    report(self, "write", w, &now);
                }
            }
            if let Some(r) = sh.reads.iter().find(|r| !epoch_visible(r.tid, r.at, &now)) {
                report(self, "write", r, &now);
            }
            sh.write = Some(Access::capture(me, now.get(me), "write"));
            sh.reads.clear();
        }
        f(&mut self.data.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Consume the cell (exclusive by ownership, so no check needed).
    pub fn into_inner(self) -> T {
        self.data.into_inner().unwrap_or_else(|p| p.into_inner())
    }

    /// Exclusive access through a unique reference (statically race-free).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

fn report<T>(cell: &RacyCell<T>, op: &'static str, prior: &Access, now: &VectorClock) -> ! {
    let here = Backtrace::force_capture();
    panic!(
        "tsan: data race detected on RacyCell<{ty}> at {addr:p}\n\
         \n  conflicting {op} by thread t{me} (clock {now:?}) at:\n{here}\n\
         \n  previous unsynchronized {pop} by thread t{ptid} (epoch {pat}) at:\n{pstack}\n",
        ty = std::any::type_name::<T>(),
        addr = cell as *const _,
        op = op,
        me = runtime::tid(),
        now = now,
        here = here,
        pop = prior.op,
        ptid = prior.tid,
        pat = prior.at,
        pstack = prior.stack,
    );
}
