//! A vector-clock happens-before data race detector for *real*
//! multithreaded runs, in the style of ThreadSanitizer / FastTrack.
//!
//! Where the vendored `loom` shim model-checks small closures under a
//! cooperative scheduler, this crate instruments ordinary executions:
//! code compiled with `--cfg race` routes its `Mutex`/atomic/cell types
//! through the wrappers here, runs its normal multithreaded tests at full
//! speed, and any pair of conflicting accesses not ordered by the
//! recorded happens-before relation panics with **both** stack traces.
//!
//! # What creates happens-before edges
//!
//! - [`thread::spawn`] / [`thread::JoinHandle::join`] (fork and join),
//! - [`sync::Mutex`] unlock → the next lock,
//! - release-capable atomic stores/RMWs → acquire-capable loads/RMWs on
//!   the same atomic ([`sync::atomic`]),
//! - release fences → acquire fences ([`sync::atomic::fence`]).
//!
//! `Relaxed` operations create **no** edges — exactly the property the
//! detector exists to check: data published under a relaxed flag is
//! flagged when the consumer touches it.
//!
//! # Soundness direction
//!
//! Atomics use a tail approximation (one clock per atomic joined by every
//! release-capable op; failed CAS still releases) and fences share one
//! global clock. Both over-approximate the C11 synchronizes-with relation,
//! so the detector can miss races (false negatives) but a reported race is
//! always a real happens-before violation on the recorded run. Detection
//! is also per-run: only interleavings that actually execute are checked —
//! use loom for exhaustive schedule coverage, this crate for realistic
//! full-speed runs of code too large to model-check.
//!
//! The payload of a [`cell::RacyCell`] is physically serialized by a
//! private mutex, so diagnosing a broken protocol never executes undefined
//! behavior.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod clock;
pub mod runtime;
pub mod sync;
pub mod thread;

pub use cell::RacyCell;
