//! Vector clocks: the partial order underlying happens-before detection.

/// A growable vector clock. Component `t` counts the number of release
/// operations thread `t` has performed; `clock_a ⊑ clock_b` (pointwise)
/// means everything thread `a` had done happens-before thread `b`'s
/// current point.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    slots: Vec<u64>,
}

impl VectorClock {
    /// The empty clock (all components zero).
    pub const fn new() -> Self {
        Self { slots: Vec::new() }
    }

    /// Component for thread `tid` (zero if never ticked).
    pub fn get(&self, tid: usize) -> u64 {
        self.slots.get(tid).copied().unwrap_or(0)
    }

    /// Increment `tid`'s own component; called at release points so later
    /// accesses by `tid` are distinguishable from the released prefix.
    pub fn tick(&mut self, tid: usize) {
        if self.slots.len() <= tid {
            self.slots.resize(tid + 1, 0);
        }
        self.slots[tid] += 1;
    }

    /// Pointwise maximum: afterwards everything visible to `other` is
    /// visible to `self`.
    pub fn join(&mut self, other: &VectorClock) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (mine, theirs) in self.slots.iter_mut().zip(other.slots.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }
}

/// Does an access recorded by `tid` at epoch `at` happen-before the thread
/// whose clock is `clock`? This is the FastTrack epoch test: the full
/// vector comparison collapses to one component because an access only
/// advances its own thread's clock.
pub fn epoch_visible(tid: usize, at: u64, clock: &VectorClock) -> bool {
    at <= clock.get(tid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max_and_grows() {
        let mut a = VectorClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VectorClock::new();
        b.tick(2);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 0);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn epoch_visibility_follows_the_component() {
        let mut c = VectorClock::new();
        c.tick(3);
        assert!(epoch_visible(3, 1, &c));
        assert!(!epoch_visible(3, 2, &c));
        assert!(epoch_visible(5, 0, &c), "zero epochs are always visible");
        assert!(!epoch_visible(5, 1, &c));
    }
}
