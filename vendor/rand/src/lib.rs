//! Offline vendored shim of the `rand` 0.8 API surface used by this
//! workspace.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the small part of `rand` it actually uses: a seedable
//! generator ([`rngs::StdRng`], a xoshiro256++ core seeded via
//! SplitMix64) and the [`Rng`] convenience methods `gen`, `gen_bool`
//! and `gen_range`. Stream values differ from upstream `rand` —
//! everything in-tree only relies on *seeded determinism*, never on
//! the exact stream.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution of
/// upstream `rand`, folded into one trait).
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integers with uniform range sampling (via 128-bit widening multiply,
/// which keeps the modulo bias below 2^-64).
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Offsets by one for inclusive upper bounds; `None` on overflow
    /// means the range covers the whole type.
    fn checked_succ(self) -> Option<Self>;
}

fn widening_mul(span: u64, rng: &mut (impl RngCore + ?Sized)) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high - low) as u64;
                low + widening_mul(span, rng) as $t
            }
            fn checked_succ(self) -> Option<Self> {
                self.checked_add(1)
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, usize);

impl SampleUniform for u64 {
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "cannot sample empty range");
        low + widening_mul(high - low, rng)
    }
    fn checked_succ(self) -> Option<Self> {
        self.checked_add(1)
    }
}

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                low.wrapping_add(widening_mul(span, rng) as $t)
            }
            fn checked_succ(self) -> Option<Self> {
                self.checked_add(1)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        match high.checked_succ() {
            Some(h) => T::sample_range(low, h, rng),
            // Whole-type range: any draw is uniform already.
            None => T::sample_range(low, high, rng),
        }
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::draw(self) < p
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic per seed; stream differs from
    /// upstream `rand`'s ChaCha-based `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro
            // authors for seeding from a single word.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// Snapshots the full generator state for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot,
        /// continuing the exact stream the snapshot was taken from.
        ///
        /// The all-zero state is a fixed point of xoshiro256++ and can
        /// never be produced by seeding, so it is mapped to the seed-0
        /// generator instead of yielding a stuck stream.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <Self as SeedableRng>::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::prelude` lookalike for glob imports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-8i64..=8);
            assert!((-8..=8).contains(&w));
            let x: u64 = rng.gen_range(0..=u64::MAX);
            let _ = x;
        }
    }

    #[test]
    fn gen_range_covers_small_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_produces_varied_words() {
        let mut rng = StdRng::seed_from_u64(13);
        let words: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
        let mut uniq = words.clone();
        uniq.dedup();
        assert_eq!(words.len(), uniq.len());
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut a = StdRng::seed_from_u64(0x1CCAD);
        for _ in 0..37 {
            a.next_u64();
        }
        let snapshot = a.state();
        let mut b = StdRng::from_state(snapshot);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_state_is_rejected() {
        let mut z = StdRng::from_state([0; 4]);
        let mut seed0 = StdRng::seed_from_u64(0);
        // A literal zero state would emit zeros forever; the guard maps
        // it to the seed-0 stream instead.
        for _ in 0..8 {
            assert_eq!(z.next_u64(), seed0.next_u64());
        }
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut buf = [0u8; 33];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
