//! Integration test package for the cirlearn workspace; see `tests/`.
