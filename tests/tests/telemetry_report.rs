//! End-to-end telemetry: run the full learner with a recording
//! [`Telemetry`] handle and check the structured run report against
//! the learner's own results — per-stage oracle-query attribution must
//! partition the total, and the report must survive a JSON round trip.

use cirlearn::{Learner, LearnerConfig};
use cirlearn_oracle::generate;
use cirlearn_telemetry::{counters, json::Json, RunReport, Telemetry};

/// Learns one mixed case (templates + FBDT outputs) and returns the
/// learner result plus the recorded report.
fn learn_with_report() -> (cirlearn::LearnResult, RunReport) {
    let mut oracle = generate::eco_case_with_support(16, 3, 7, 401);
    let telemetry = Telemetry::recording();
    let mut learner = Learner::with_telemetry(LearnerConfig::fast(), telemetry.clone());
    let result = learner.learn(&mut oracle);
    let report = telemetry.report();
    (result, report)
}

#[test]
fn stage_query_counts_partition_the_learner_total() {
    let (result, report) = learn_with_report();
    assert!(result.queries > 0, "the learner must query the oracle");

    // Every oracle query happens inside exactly one top-level span, so
    // the per-stage breakdown sums to the learner's own total.
    let staged = report.top_level_counter_sum(counters::ORACLE_QUERIES);
    assert_eq!(
        staged, result.queries,
        "per-stage queries must sum to LearnResult::queries"
    );
    // ... and the global counter agrees with both.
    assert_eq!(report.counter(counters::ORACLE_QUERIES), result.queries);

    // The per-output breakdown can only account for queries that were
    // issued inside a per-output stage, never more than the total.
    let per_output: u64 = report.outputs.iter().map(|o| o.queries).sum();
    assert!(
        per_output <= result.queries,
        "per-output queries {per_output} exceed total {}",
        result.queries
    );
    assert_eq!(report.outputs.len(), result.outputs.len());
}

#[test]
fn run_report_round_trips_through_json() {
    let (_, report) = learn_with_report();
    assert!(!report.stages.is_empty(), "a real run records stages");

    let text = report.to_json().to_pretty();
    let parsed = Json::parse(&text).expect("report serializes to valid JSON");
    let back = RunReport::from_json(&parsed).expect("report deserializes");
    assert_eq!(back, report, "JSON round trip must be lossless");
}

#[test]
fn report_stage_elapsed_is_bounded_by_run_elapsed() {
    let (_, report) = learn_with_report();
    let top_level: std::time::Duration = report.top_level_stages().map(|s| s.elapsed).sum();
    // Top-level stages are disjoint slices of the run.
    assert!(
        top_level <= report.elapsed,
        "stage time {top_level:?} exceeds run time {:?}",
        report.elapsed
    );
}
