//! Cross-crate invariant: every optimization pass preserves the
//! circuit's functions, proven by SAT on random circuits and by
//! exhaustive simulation on small ones.

use cirlearn_aig::{Aig, Edge};
use cirlearn_sat::check_equivalence;
use cirlearn_synth::{
    balance, collapse, fraig, optimize, rewrite, CollapseConfig, FraigConfig, OptimizeConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_circuit(seed: u64, inputs: usize, gates: usize, outputs: usize) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Aig::new();
    let mut pool: Vec<Edge> = (0..inputs).map(|i| g.add_input(format!("x{i}"))).collect();
    for _ in 0..gates {
        let a = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.4));
        let b = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.4));
        let n = g.and(a, b);
        pool.push(n);
    }
    for k in 0..outputs {
        let e = pool[pool.len() - 1 - k % pool.len()];
        g.add_output(e.complement_if(k % 2 == 1), format!("y{k}"));
    }
    g
}

#[test]
fn all_passes_preserve_functions_on_random_circuits() {
    for seed in 0..6 {
        let g = random_circuit(seed, 7, 35, 3);
        let passes: Vec<(&str, Aig)> = vec![
            ("balance", balance(&g)),
            ("rewrite", rewrite(&g)),
            (
                "fraig",
                fraig(
                    &g,
                    &FraigConfig {
                        patterns: 256,
                        ..FraigConfig::default()
                    },
                ),
            ),
            ("collapse", collapse(&g, &CollapseConfig::default())),
            ("optimize", optimize(&g, &OptimizeConfig::default())),
        ];
        for (name, opt) in passes {
            assert!(
                check_equivalence(&g, &opt).is_equivalent(),
                "{name} broke seed {seed}"
            );
            assert!(
                opt.gate_count() <= g.gate_count() || name == "balance",
                "{name} grew seed {seed}: {} -> {}",
                g.gate_count(),
                opt.gate_count()
            );
        }
    }
}

#[test]
fn optimize_shrinks_fbdt_style_output() {
    // A tree-shaped circuit with duplicated subtrees, as an FBDT
    // produces: fraig + rewrite should reclaim the duplication.
    let mut g = Aig::new();
    let x = g.add_inputs("x", 6);
    // Two copies of the same cone, built separately (no strash hits
    // because of different construction order).
    let c1 = {
        let t = g.and(x[0], x[1]);
        let u = g.or(t, x[2]);
        g.and(u, x[3])
    };
    let c2 = {
        let u2 = {
            let t2 = g.and(x[1], x[0]);
            g.or(t2, x[2])
        };
        g.and(u2, x[3])
    };
    let y = g.mux(x[4], c1, c2); // c1 == c2, so y is just c1
    g.add_output(y, "y");
    let opt = optimize(&g, &OptimizeConfig::default());
    assert!(check_equivalence(&g, &opt).is_equivalent());
    assert!(
        opt.gate_count() <= 3,
        "duplication not reclaimed: {} gates",
        opt.gate_count()
    );
}

#[test]
fn optimization_handles_word_level_circuits() {
    let mut g = Aig::new();
    let a = g.add_inputs("a", 5);
    let b = g.add_inputs("b", 5);
    let s = g.add_word(&a, &b);
    let lt = g.cmp_ult(&a, &b);
    for (i, e) in s.iter().enumerate() {
        g.add_output(*e, format!("s{i}"));
    }
    g.add_output(lt, "lt");
    let opt = optimize(
        &g,
        &OptimizeConfig {
            max_rounds: 2,
            ..OptimizeConfig::default()
        },
    );
    assert!(check_equivalence(&g, &opt).is_equivalent());
}

#[test]
fn espresso_factor_roundtrip_matches_bdd() {
    // espresso + factoring of a cover must equal the BDD-computed
    // function — two independent engines agreeing.
    use cirlearn_bdd::Bdd;
    use cirlearn_logic::TruthTable;
    for seed in 0..5u64 {
        let tt = TruthTable::from_fn(7, |m| (m.wrapping_mul(seed * 2 + 0x9E37) >> 9) & 3 == 1);
        let minimized = cirlearn_synth::espresso::minimize(&tt.isop());
        let expr = cirlearn_synth::factor::factor(&minimized);
        let mut bdd = Bdd::new(7);
        let f = bdd.from_truth_table(&tt);
        for m in 0..128u64 {
            let bits: Vec<bool> = (0..7).map(|k| m >> k & 1 == 1).collect();
            assert_eq!(
                expr.eval_with(|v| bits[v.index() as usize]),
                bdd.eval_with(f, |v| bits[v.index() as usize]),
                "seed {seed} m={m}"
            );
        }
    }
}
