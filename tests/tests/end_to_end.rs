//! End-to-end integration: learn black boxes of every contest category
//! and check the learned circuits against the hidden ones — exactly
//! (SAT) where the paper achieves 100%, statistically elsewhere.

use cirlearn::{Learner, LearnerConfig, Strategy};
use cirlearn_oracle::{evaluate_accuracy, generate, EvalConfig};
use cirlearn_sat::check_equivalence;

fn eval_cfg() -> EvalConfig {
    EvalConfig {
        patterns_per_group: 5_000,
        ..EvalConfig::default()
    }
}

#[test]
fn diag_category_is_learned_exactly_and_small() {
    let mut oracle = generate::diag_case(28, 3, 101);
    let mut learner = Learner::new(LearnerConfig::fast());
    let result = learner.learn(&mut oracle);
    // The paper: DIAG cases solve via templates at 100% with the
    // smallest circuits.
    assert!(check_equivalence(oracle.reveal(), &result.circuit).is_equivalent());
    assert!(
        result.circuit.gate_count() <= oracle.reveal().gate_count() * 2,
        "learned {} vs hidden {}",
        result.circuit.gate_count(),
        oracle.reveal().gate_count()
    );
}

#[test]
fn data_category_is_learned_exactly() {
    let mut oracle = generate::data_case(16, 8, 102);
    let mut learner = Learner::new(LearnerConfig::fast());
    let result = learner.learn(&mut oracle);
    assert!(check_equivalence(oracle.reveal(), &result.circuit).is_equivalent());
    assert!(result
        .outputs
        .iter()
        .all(|s| s.strategy == Strategy::LinearTemplate));
}

#[test]
fn eco_category_small_supports_are_exact() {
    let mut oracle = generate::eco_case_with_support(24, 4, 8, 103);
    let mut learner = Learner::new(LearnerConfig::fast());
    let result = learner.learn(&mut oracle);
    assert!(
        check_equivalence(oracle.reveal(), &result.circuit).is_equivalent(),
        "small-support ECO must be learned exactly"
    );
}

#[test]
fn neq_category_meets_high_accuracy() {
    let mut oracle = generate::neq_case_with_support(20, 2, 8, 104);
    let mut learner = Learner::new(LearnerConfig::fast());
    let result = learner.learn(&mut oracle);
    let acc = evaluate_accuracy(oracle.reveal(), &result.circuit, &eval_cfg());
    assert!(acc.ratio() > 0.999, "NEQ accuracy {acc}");
}

#[test]
fn learner_is_deterministic_given_seed() {
    let run = || {
        let mut oracle = generate::eco_case_with_support(14, 2, 6, 105);
        let mut learner = Learner::new(LearnerConfig::fast());
        let r = learner.learn(&mut oracle);
        (r.circuit.gate_count(), r.queries)
    };
    assert_eq!(run(), run());
}

#[test]
fn learned_circuit_ports_mirror_oracle() {
    use cirlearn_oracle::Oracle;
    let mut oracle = generate::diag_case(16, 2, 106);
    let in_names = oracle.input_names().to_vec();
    let out_names = oracle.output_names().to_vec();
    let mut learner = Learner::new(LearnerConfig::fast());
    let result = learner.learn(&mut oracle);
    assert_eq!(result.circuit.input_names(), &in_names[..]);
    let got: Vec<&str> = result
        .circuit
        .outputs()
        .iter()
        .map(|(_, n)| n.as_str())
        .collect();
    let want: Vec<&str> = out_names.iter().map(String::as_str).collect();
    assert_eq!(got, want);
}

#[test]
fn anytime_behaviour_under_tiny_budget() {
    use std::time::Duration;
    // Even with (almost) no time the learner must emit a full circuit
    // for every output — degraded, not missing.
    let mut oracle = generate::neq_case_with_support(30, 4, 14, 107);
    let mut cfg = LearnerConfig::fast();
    cfg.time_budget = Duration::from_millis(50);
    cfg.optimize = None;
    let mut learner = Learner::new(cfg);
    let result = learner.learn(&mut oracle);
    assert_eq!(result.circuit.num_outputs(), 4);
    let acc = evaluate_accuracy(oracle.reveal(), &result.circuit, &eval_cfg());
    // NEQ miters are sparse; even the constant-0 approximation scores
    // well — that is exactly the paper's early-stop story.
    assert!(acc.ratio() > 0.5, "degraded accuracy {acc}");
}

#[test]
fn mixed_case_dispatches_per_output() {
    // Half comparator outputs (template), half random cones
    // (exhaustive/FBDT) — one run must route each output correctly.
    let mut oracle = generate::mixed_case(24, 4, 401);
    let mut learner = Learner::new(LearnerConfig::fast());
    let result = learner.learn(&mut oracle);
    assert_eq!(result.outputs[0].strategy, Strategy::ComparatorTemplate);
    assert_eq!(result.outputs[2].strategy, Strategy::ComparatorTemplate);
    assert!(matches!(
        result.outputs[1].strategy,
        Strategy::Exhaustive | Strategy::Fbdt
    ));
    let acc = evaluate_accuracy(oracle.reveal(), &result.circuit, &eval_cfg());
    assert!(acc.ratio() >= 0.9999, "mixed case accuracy {acc}");
}
