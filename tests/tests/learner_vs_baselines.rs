//! The comparative shape of Table II on downsized cases: our learner
//! vs the two second-place-style baselines.

use std::time::Duration;

use cirlearn::baseline::{GreedyDtLearner, SampleSopLearner};
use cirlearn::{Learner, LearnerConfig};
use cirlearn_oracle::{evaluate_accuracy, generate, CircuitOracle, EvalConfig};

fn eval(oracle: &CircuitOracle, circuit: &cirlearn_aig::Aig) -> f64 {
    evaluate_accuracy(
        oracle.reveal(),
        circuit,
        &EvalConfig {
            patterns_per_group: 4_000,
            ..EvalConfig::default()
        },
    )
    .ratio()
}

/// Paper claim: on DATA cases the template learner is exact with tiny
/// circuits; the baselines either blow up or lose accuracy.
#[test]
fn data_case_comparison_shape() {
    let make = || generate::data_case(14, 7, 900);
    let mut o1 = make();
    let ours = Learner::new(LearnerConfig::fast()).learn(&mut o1);
    let acc_ours = eval(&o1, &ours.circuit);

    let mut o2 = make();
    let greedy = GreedyDtLearner {
        time_budget: Duration::from_secs(5),
        ..GreedyDtLearner::default()
    }
    .learn(&mut o2);
    let acc_greedy = eval(&o2, &greedy.circuit);

    let mut o3 = make();
    let memo = SampleSopLearner {
        samples: 2_000,
        ..SampleSopLearner::default()
    }
    .learn(&mut o3);
    let acc_memo = eval(&o3, &memo.circuit);

    assert!(acc_ours >= 0.9999, "ours on DATA: {acc_ours}");
    assert!(acc_ours >= acc_greedy && acc_ours >= acc_memo);
    assert!(
        ours.circuit.gate_count() <= greedy.circuit.gate_count()
            && ours.circuit.gate_count() <= memo.circuit.gate_count(),
        "ours {} vs greedy {} vs memo {}",
        ours.circuit.gate_count(),
        greedy.circuit.gate_count(),
        memo.circuit.gate_count()
    );
    // The memorizer's size explosion (orders of magnitude in the
    // paper; at this downsized scale at least several times larger).
    assert!(
        memo.circuit.gate_count() > ours.circuit.gate_count(),
        "memorizer should be larger: {} vs {}",
        memo.circuit.gate_count(),
        ours.circuit.gate_count()
    );
}

/// Paper claim: on ECO-style random logic everyone reaches decent
/// accuracy, but our circuits are (much) smaller.
#[test]
fn eco_case_size_advantage() {
    let make = || generate::eco_case_with_support(18, 3, 8, 901);
    let mut o1 = make();
    let ours = Learner::new(LearnerConfig::fast()).learn(&mut o1);
    let acc_ours = eval(&o1, &ours.circuit);

    let mut o3 = make();
    let memo = SampleSopLearner::default().learn(&mut o3);
    let acc_memo = eval(&o3, &memo.circuit);

    assert!(acc_ours >= 0.9999, "ours on ECO: {acc_ours}");
    assert!(acc_ours >= acc_memo);
    assert!(
        ours.circuit.gate_count() < memo.circuit.gate_count(),
        "expected a size gap: ours {} vs memo {}",
        ours.circuit.gate_count(),
        memo.circuit.gate_count()
    );
}

/// Paper claim: the greedy baseline still works on trivial cases
/// (case_7/10/13 are solved by everyone) — the gap is on hard ones.
#[test]
fn baselines_survive_trivial_cases() {
    let make = || generate::eco_case_with_support(12, 2, 4, 902);
    let mut o2 = make();
    let greedy = GreedyDtLearner {
        time_budget: Duration::from_secs(5),
        ..GreedyDtLearner::default()
    }
    .learn(&mut o2);
    assert!(eval(&o2, &greedy.circuit) > 0.99);
}
