//! Property-based tests over the workspace's core invariants.

use cirlearn_aig::Aig;
use cirlearn_bdd::Bdd;
use cirlearn_logic::{Assignment, Cube, Literal, Sop, TruthTable, Var};
use proptest::prelude::*;

/// Strategy: a truth table over `n` variables from random words.
fn truth_table(n: usize) -> impl Strategy<Value = TruthTable> {
    prop::collection::vec(any::<u64>(), 1 << n.saturating_sub(6)).prop_map(move |words| {
        TruthTable::from_fn(n, |m| words[(m / 64) as usize] >> (m % 64) & 1 == 1)
    })
}

/// Strategy: a random cube over `n` variables (possibly empty).
fn cube(n: u32) -> impl Strategy<Value = Cube> {
    prop::collection::vec((0..n, any::<bool>()), 0..=n as usize).prop_map(|lits| {
        let mut c = Cube::top();
        for (v, neg) in lits {
            if let Some(next) = c.and_literal(Literal::new(Var::new(v), neg)) {
                c = next;
            }
        }
        c
    })
}

/// Strategy: a random SOP over `n` variables.
fn sop(n: u32, max_cubes: usize) -> impl Strategy<Value = Sop> {
    prop::collection::vec(cube(n), 0..=max_cubes).prop_map(Sop::from_cubes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn isop_reconstructs_truth_table(tt in truth_table(7)) {
        let sop = tt.isop();
        prop_assert_eq!(TruthTable::from_sop(7, &sop), tt);
    }

    #[test]
    fn espresso_preserves_function(s in sop(6, 10)) {
        let tt = TruthTable::from_sop(6, &s);
        let min = cirlearn_synth::espresso::minimize(&s);
        prop_assert_eq!(TruthTable::from_sop(6, &min), tt);
        prop_assert!(min.cubes().len() <= s.cubes().len().max(1));
    }

    #[test]
    fn factoring_preserves_function(s in sop(6, 10)) {
        let tt = TruthTable::from_sop(6, &s);
        let expr = cirlearn_synth::factor::factor(&s);
        for m in 0..64u64 {
            prop_assert_eq!(
                expr.eval_with(|v| m >> v.index() & 1 == 1),
                tt.get(m),
                "mismatch at {}", m
            );
        }
        prop_assert!(expr.literal_count() <= s.literal_count());
    }

    #[test]
    fn bdd_matches_truth_table_ops(a in truth_table(6), b in truth_table(6)) {
        let mut bdd = Bdd::new(6);
        let fa = bdd.from_truth_table(&a);
        let fb = bdd.from_truth_table(&b);
        let and = bdd.and(fa, fb);
        let or = bdd.or(fa, fb);
        let xor = bdd.xor(fa, fb);
        prop_assert_eq!(bdd.to_truth_table(and).expect("small"), a.clone() & b.clone());
        prop_assert_eq!(bdd.to_truth_table(or).expect("small"), a.clone() | b.clone());
        prop_assert_eq!(bdd.to_truth_table(xor).expect("small"), a.clone() ^ b.clone());
        // Canonicity: sat_count matches count_ones.
        prop_assert_eq!(bdd.sat_count(fa), a.count_ones());
    }

    #[test]
    fn aig_sop_matches_semantics(s in sop(6, 8)) {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 6);
        let f = g.add_sop(&s, &inputs);
        g.add_output(f, "f");
        let tt = TruthTable::from_sop(6, &s);
        for m in 0..64u64 {
            let bits: Vec<bool> = (0..6).map(|k| m >> k & 1 == 1).collect();
            prop_assert_eq!(g.eval_bits(&bits)[0], tt.get(m));
        }
    }

    #[test]
    fn cube_intersection_is_conjunction(a in cube(5), b in cube(5)) {
        for m in 0..32u64 {
            let val = |v: Var| m >> v.index() & 1 == 1;
            let lhs = a.eval_with(val) && b.eval_with(val);
            let rhs = a.intersect(&b).is_some_and(|c| c.eval_with(val));
            prop_assert_eq!(lhs, rhs, "m={}", m);
        }
    }

    #[test]
    fn cube_implication_is_semantic(a in cube(5), b in cube(5)) {
        let implies_syntactic = a.implies(&b);
        let implies_semantic = (0..32u64).all(|m| {
            let val = |v: Var| m >> v.index() & 1 == 1;
            !a.eval_with(val) || b.eval_with(val)
        });
        // Syntactic implication is sound (semantic may be strictly
        // weaker only when `a` is unsatisfiable, which cubes never are).
        prop_assert_eq!(implies_syntactic, implies_semantic);
    }

    #[test]
    fn assignment_vector_roundtrip(value in 0u64..256, offset in 0usize..4) {
        let vars: Vec<Var> = (0..8).map(|k| Var::new((k + offset) as u32)).collect();
        let mut a = Assignment::zeros(16);
        a.write_vector(&vars, value);
        prop_assert_eq!(a.read_vector(&vars), value);
    }

    #[test]
    fn simulation_agrees_with_single_eval(seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = Aig::new();
        let mut pool: Vec<cirlearn_aig::Edge> =
            (0..5).map(|i| g.add_input(format!("x{i}"))).collect();
        for _ in 0..20 {
            let a = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.5));
            let b = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.5));
            let n = g.and(a, b);
            pool.push(n);
        }
        let out = *pool.last().expect("nonempty");
        g.add_output(out, "y");
        let patterns: Vec<Assignment> =
            (0..100).map(|_| Assignment::random(5, &mut rng)).collect();
        let batch = g.eval_batch(&patterns);
        for (k, p) in patterns.iter().enumerate() {
            prop_assert_eq!(&batch[k], &g.eval(p));
        }
    }

    #[test]
    fn sat_agrees_with_exhaustive_equivalence(seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let build = |rng: &mut StdRng| {
            let mut g = Aig::new();
            let mut pool: Vec<cirlearn_aig::Edge> =
                (0..4).map(|i| g.add_input(format!("x{i}"))).collect();
            for _ in 0..10 {
                let a = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.5));
                let b = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.5));
                let n = g.and(a, b);
                pool.push(n);
            }
            let out = *pool.last().expect("nonempty");
            g.add_output(out, "y");
            g
        };
        let g1 = build(&mut rng);
        let g2 = build(&mut rng);
        let same = (0..16u32).all(|m| {
            let bits: Vec<bool> = (0..4).map(|k| m >> k & 1 == 1).collect();
            g1.eval_bits(&bits) == g2.eval_bits(&bits)
        });
        prop_assert_eq!(
            cirlearn_sat::check_equivalence(&g1, &g2).is_equivalent(),
            same
        );
    }

    #[test]
    fn bdd_isop_is_exact(tt in truth_table(6)) {
        let mut bdd = Bdd::new(6);
        let f = bdd.from_truth_table(&tt);
        let sop = bdd.isop(f);
        prop_assert_eq!(TruthTable::from_sop(6, &sop), tt);
    }

    #[test]
    fn tautology_check_is_exact(s in sop(5, 12)) {
        let tt = TruthTable::from_sop(5, &s);
        prop_assert_eq!(cirlearn_synth::espresso::tautology(&s), tt.is_one());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn npn_canonical_is_class_invariant(seed in any::<u64>()) {
        use cirlearn_logic::npn::npn_class;
        use cirlearn_logic::NpnTransform;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let f = TruthTable::from_fn(4, |_| rng.gen_bool(0.5));
        // Apply a random NPN transform; the canonical form must not move.
        let mut perm: Vec<u8> = (0..4).collect();
        for i in (1..4).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let t = NpnTransform {
            perm,
            input_neg: rng.gen_range(0..16),
            output_neg: rng.gen_bool(0.5),
        };
        let g = t.apply(&f);
        prop_assert_eq!(
            npn_class(&f).expect("small"),
            npn_class(&g).expect("small")
        );
    }

    #[test]
    fn sat_assumptions_are_sound(seed in any::<u64>()) {
        use cirlearn_sat::{SolveResult, Solver};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 6usize;
        let m = rng.gen_range(5..25);
        let clauses: Vec<Vec<(usize, bool)>> = (0..m)
            .map(|_| {
                (0..3)
                    .map(|_| (rng.gen_range(0..n), rng.gen_bool(0.5)))
                    .collect()
            })
            .collect();
        let assumptions: Vec<(usize, bool)> = (0..rng.gen_range(0..3))
            .map(|_| (rng.gen_range(0..n), rng.gen_bool(0.5)))
            .collect();

        // Brute force under the assumptions.
        let mut brute_sat = false;
        'outer: for model in 0..1u32 << n {
            for &(v, neg) in &assumptions {
                if (model >> v & 1 == 1) == neg {
                    continue 'outer;
                }
            }
            if clauses
                .iter()
                .all(|c| c.iter().any(|&(v, neg)| (model >> v & 1 == 1) != neg))
            {
                brute_sat = true;
                break;
            }
        }

        let mut s = Solver::new();
        let vars: Vec<_> = (0..n).map(|_| s.new_var()).collect();
        for c in &clauses {
            let lits: Vec<_> = c
                .iter()
                .map(|&(v, neg)| if neg { !vars[v] } else { vars[v] })
                .collect();
            s.add_clause(&lits);
        }
        let assumption_lits: Vec<_> = assumptions
            .iter()
            .map(|&(v, neg)| if neg { !vars[v] } else { vars[v] })
            .collect();
        let got = s.solve_with_assumptions(&assumption_lits) == SolveResult::Sat;
        prop_assert_eq!(got, brute_sat);
        // The solver remains reusable afterwards.
        let _ = s.solve();
    }

    #[test]
    fn aiger_roundtrip_preserves_function(seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = Aig::new();
        let mut pool: Vec<cirlearn_aig::Edge> =
            (0..4).map(|i| g.add_input(format!("in{i}"))).collect();
        for _ in 0..12 {
            let a = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.5));
            let b = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.5));
            let n = g.and(a, b);
            pool.push(n);
        }
        let out = *pool.last().expect("nonempty");
        g.add_output(out, "y");
        let g = g.cleanup();
        let back = Aig::from_aiger_ascii(&g.to_aiger_ascii()).expect("roundtrip parses");
        for m in 0..16u32 {
            let bits: Vec<bool> = (0..4).map(|k| m >> k & 1 == 1).collect();
            prop_assert_eq!(back.eval_bits(&bits), g.eval_bits(&bits));
        }
    }

    #[test]
    fn aiger_roundtrip_preserves_structure_and_semantics(seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..=6usize);
        let mut g = Aig::new();
        let mut pool: Vec<cirlearn_aig::Edge> =
            (0..n).map(|i| g.add_input(format!("in{i}"))).collect();
        for _ in 0..rng.gen_range(4..24) {
            let a = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.5));
            let b = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.5));
            pool.push(g.and(a, b));
        }
        for k in 0..rng.gen_range(1..=3usize) {
            let e = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.5));
            g.add_output(e, format!("out{k}"));
        }
        // The exporter's contract covers compacted circuits (the file
        // format has no way to distinguish dangling nodes from live
        // ones beyond fanout, so ids only survive for the live cone).
        let g = g.cleanup();
        let back = Aig::from_aiger_ascii(&g.to_aiger_ascii()).expect("roundtrip parses");

        // Structure: node-for-node identical graphs.
        prop_assert_eq!(back.node_count(), g.node_count());
        prop_assert_eq!(back.num_inputs(), g.num_inputs());
        prop_assert_eq!(back.num_outputs(), g.num_outputs());
        prop_assert_eq!(back.and_count(), g.and_count());
        for ((n1, a1, b1), (n2, a2, b2)) in g.ands().zip(back.ands()) {
            prop_assert_eq!(n1, n2);
            prop_assert_eq!(a1, a2);
            prop_assert_eq!(b1, b2);
        }
        for ((e1, name1), (e2, name2)) in g.outputs().iter().zip(back.outputs()) {
            prop_assert_eq!(e1, e2);
            prop_assert_eq!(name1, name2);
        }
        for k in 0..g.num_inputs() {
            prop_assert_eq!(g.input_name(k), back.input_name(k));
        }
        // The reimported graph is structurally impeccable.
        prop_assert!(cirlearn_verify::lint(&back).is_empty());

        // Semantics: every pattern agrees (inputs are few enough to
        // enumerate exhaustively).
        for m in 0..1u64 << n {
            let bits: Vec<bool> = (0..n).map(|k| m >> k & 1 == 1).collect();
            prop_assert_eq!(back.eval_bits(&bits), g.eval_bits(&bits));
        }
    }
}
