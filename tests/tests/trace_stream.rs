//! End-to-end trace stream: run the full learner with a tracing
//! [`Telemetry`] handle and check that the JSONL event stream is
//! well-formed — every line parses, carries a thread id, timestamps
//! are monotone per thread, and span open/close events nest with
//! per-thread stack discipline.

use std::collections::BTreeMap;

use cirlearn::{Learner, LearnerConfig};
use cirlearn_oracle::generate;
use cirlearn_telemetry::{analysis, json::Json, Telemetry, TraceWriter};

/// Learns one NEQ case (not template-solvable, so the FBDT stage must
/// expand nodes) with tracing on and returns the captured JSONL text
/// plus the run's query count.
fn traced_run() -> (String, u64) {
    let mut oracle = generate::neq_case_with_support(24, 1, 16, 7);
    let telemetry = Telemetry::recording();
    let (trace, sink) = TraceWriter::to_shared_buffer();
    telemetry.set_trace(trace);
    // Force the FBDT strategy (the sampled support of this case sits
    // around 10, under the fast-mode exhaustive threshold of 12).
    let mut cfg = LearnerConfig::fast();
    cfg.fbdt.exhaustive_threshold = 4;
    let result = Learner::with_telemetry(cfg, telemetry.clone()).learn(&mut oracle);
    assert!(result.queries > 0, "the learner must query the oracle");
    // Mirror the CLI's finish sequence: drain buffered per-thread
    // chunks, then append the final attribution ledger.
    telemetry.flush_trace();
    telemetry.trace_attribution();
    telemetry.flush_trace();
    (sink.take_string(), result.queries)
}

#[test]
fn trace_lines_parse_with_monotone_timestamps_and_balanced_spans() {
    let (text, _) = traced_run();
    assert!(!text.is_empty(), "a traced run must emit events");

    let mut last_t: BTreeMap<u64, u64> = BTreeMap::new();
    let mut open_stacks: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut kinds: Vec<String> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let parsed = Json::parse(line)
            .unwrap_or_else(|e| panic!("trace line {i} is not valid JSON ({e}): {line}"));

        // Every event carries the common envelope, thread id included.
        let t = parsed
            .get("t_us")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("trace line {i} has no t_us: {line}"));
        let tid = parsed
            .get("tid")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("trace line {i} has no tid: {line}"));
        let kind = parsed
            .get("kind")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("trace line {i} has no kind: {line}"));
        assert!(
            parsed.get("stage").and_then(Json::as_str).is_some(),
            "trace line {i} has no stage: {line}"
        );

        // Timestamps are monotone µs per emitting thread (per-thread
        // buffering may interleave threads in the file, but each
        // thread's own events stay ordered).
        let last = last_t.entry(tid).or_insert(0);
        assert!(
            t >= *last,
            "line {i}: tid {tid} t_us {t} went backwards from {last}"
        );
        *last = t;

        // Spans close in LIFO order per thread, each close matching
        // that thread's last open.
        match kind {
            "span_open" => {
                let id = parsed.get("id").and_then(Json::as_u64).expect("span id");
                open_stacks.entry(tid).or_default().push(id);
            }
            "span_close" => {
                let id = parsed.get("id").and_then(Json::as_u64).expect("span id");
                let top = open_stacks
                    .entry(tid)
                    .or_default()
                    .pop()
                    .unwrap_or_else(|| panic!("line {i}: close without open: {line}"));
                assert_eq!(top, id, "line {i}: spans closed out of order: {line}");
            }
            _ => {}
        }
        kinds.push(kind.to_owned());
    }
    for (tid, stack) in &open_stacks {
        assert!(
            stack.is_empty(),
            "tid {tid} left spans open at end of run: {stack:?}"
        );
    }

    // A real learner run exercises spans, FBDT node expansions and the
    // final attribution flush.
    for expected in ["span_open", "span_close", "node", "attr", "metrics"] {
        assert!(
            kinds.iter().any(|k| k == expected),
            "trace stream has no {expected} event"
        );
    }
}

#[test]
fn node_events_report_their_disposition_and_cost() {
    let (text, _) = traced_run();
    let mut nodes = 0usize;
    for line in text.lines().filter(|l| l.contains("\"node\"")) {
        let parsed = Json::parse(line).expect("node line parses");
        if parsed.get("kind").and_then(Json::as_str) != Some("node") {
            continue;
        }
        nodes += 1;
        let disposition = parsed
            .get("disposition")
            .and_then(Json::as_str)
            .expect("node events carry a disposition");
        assert!(
            ["leaf_one", "leaf_zero", "split", "forced_leaf"].contains(&disposition),
            "unexpected disposition {disposition}"
        );
        assert!(parsed.get("elapsed_us").and_then(Json::as_u64).is_some());
        assert!(parsed.get("depth").and_then(Json::as_u64).is_some());
    }
    assert!(nodes > 0, "the FBDT stage must expand at least one node");
}

#[test]
fn attribution_events_account_for_every_query() {
    let (text, queries) = traced_run();
    let events = analysis::parse_trace(&text).expect("stream parses");
    let summary = analysis::summarize(&events);
    assert_eq!(
        summary.total_attributed_queries(),
        queries,
        "the traced ledger must sum to LearnResult::queries"
    );
    // The same stream converts to Chrome trace-event JSON with at
    // least one complete span and all-monotone event structure.
    let chrome = analysis::to_chrome_trace(&events);
    let parsed = Json::parse(&chrome.to_compact()).expect("export is valid JSON");
    let trace_events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents");
    assert!(trace_events
        .iter()
        .any(|e| e.get("ph").and_then(Json::as_str) == Some("X")));
}
