//! End-to-end trace stream: run the full learner with a tracing
//! [`Telemetry`] handle and check that the JSONL event stream is
//! well-formed — every line parses, timestamps are monotone, and span
//! open/close events nest with stack discipline.

use cirlearn::{Learner, LearnerConfig};
use cirlearn_oracle::generate;
use cirlearn_telemetry::{json::Json, Telemetry, TraceWriter};

/// Learns one NEQ case (not template-solvable, so the FBDT stage must
/// expand nodes) with tracing on and returns the captured JSONL text.
fn traced_run() -> String {
    let mut oracle = generate::neq_case_with_support(24, 1, 16, 7);
    let telemetry = Telemetry::recording();
    let (trace, sink) = TraceWriter::to_shared_buffer();
    telemetry.set_trace(trace);
    // Force the FBDT strategy (the sampled support of this case sits
    // around 10, under the fast-mode exhaustive threshold of 12).
    let mut cfg = LearnerConfig::fast();
    cfg.fbdt.exhaustive_threshold = 4;
    let result = Learner::with_telemetry(cfg, telemetry.clone()).learn(&mut oracle);
    assert!(result.queries > 0, "the learner must query the oracle");
    telemetry.flush_trace();
    sink.take_string()
}

#[test]
fn trace_lines_parse_with_monotone_timestamps_and_balanced_spans() {
    let text = traced_run();
    assert!(!text.is_empty(), "a traced run must emit events");

    let mut last_t = 0u64;
    let mut open_stack: Vec<u64> = Vec::new();
    let mut kinds: Vec<String> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let parsed = Json::parse(line)
            .unwrap_or_else(|e| panic!("trace line {i} is not valid JSON ({e}): {line}"));

        // Every event carries the common envelope.
        let t = parsed
            .get("t_us")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("trace line {i} has no t_us: {line}"));
        let kind = parsed
            .get("kind")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("trace line {i} has no kind: {line}"));
        assert!(
            parsed.get("stage").and_then(Json::as_str).is_some(),
            "trace line {i} has no stage: {line}"
        );

        // Timestamps are monotonic µs since the stream was attached.
        assert!(
            t >= last_t,
            "line {i}: t_us {t} went backwards from {last_t}"
        );
        last_t = t;

        // Spans close in LIFO order, each close matching the last open.
        match kind {
            "span_open" => {
                let id = parsed.get("id").and_then(Json::as_u64).expect("span id");
                open_stack.push(id);
            }
            "span_close" => {
                let id = parsed.get("id").and_then(Json::as_u64).expect("span id");
                let top = open_stack
                    .pop()
                    .unwrap_or_else(|| panic!("line {i}: close without open: {line}"));
                assert_eq!(top, id, "line {i}: spans closed out of order: {line}");
            }
            _ => {}
        }
        kinds.push(kind.to_owned());
    }
    assert!(
        open_stack.is_empty(),
        "spans left open at end of run: {open_stack:?}"
    );

    // A real learner run exercises spans and FBDT node expansions.
    for expected in ["span_open", "span_close", "node"] {
        assert!(
            kinds.iter().any(|k| k == expected),
            "trace stream has no {expected} event"
        );
    }
}

#[test]
fn node_events_report_their_disposition_and_cost() {
    let text = traced_run();
    let mut nodes = 0usize;
    for line in text.lines().filter(|l| l.contains("\"node\"")) {
        let parsed = Json::parse(line).expect("node line parses");
        if parsed.get("kind").and_then(Json::as_str) != Some("node") {
            continue;
        }
        nodes += 1;
        let disposition = parsed
            .get("disposition")
            .and_then(Json::as_str)
            .expect("node events carry a disposition");
        assert!(
            ["leaf_one", "leaf_zero", "split", "forced_leaf"].contains(&disposition),
            "unexpected disposition {disposition}"
        );
        assert!(parsed.get("elapsed_us").and_then(Json::as_u64).is_some());
        assert!(parsed.get("depth").and_then(Json::as_u64).is_some());
    }
    assert!(nodes > 0, "the FBDT stage must expand at least one node");
}
