//! Paper Fig. 3 / §IV-B1: input compression through a hidden
//! comparator. A comparator subcircuit that is not directly observable
//! at the outputs is detected by cube probing, its output becomes a
//! delegate input, and the rest of the function is learned over the
//! compressed input space.

use cirlearn::{Learner, LearnerConfig, Strategy};
use cirlearn_aig::Aig;
use cirlearn_oracle::{evaluate_accuracy, CircuitOracle, EvalConfig};

/// `z = (N_a < N_b) ? (c & d) : (c | e)` over two 6-bit buses: the
/// comparator is hidden behind the mux, and the full support (15
/// inputs) exceeds the fast exhaustive threshold — without compression
/// the FBDT would have to discover the comparator's onset cube by
/// cube.
fn gated_comparator_oracle() -> CircuitOracle {
    let mut g = Aig::new();
    let a: Vec<_> = (0..6)
        .map(|k| g.add_input(format!("a[{}]", 5 - k)))
        .collect();
    let b: Vec<_> = (0..6)
        .map(|k| g.add_input(format!("b[{}]", 5 - k)))
        .collect();
    let c = g.add_input("c");
    let d = g.add_input("d");
    let e = g.add_input("e");
    let v = g.cmp_ult(&a, &b);
    let t = g.and(c, d);
    let u = g.or(c, e);
    let z = g.mux(v, t, u);
    g.add_output(z, "z");
    CircuitOracle::new(g)
}

#[test]
fn learner_uses_compression_on_gated_comparator() {
    let mut oracle = gated_comparator_oracle();
    let mut learner = Learner::new(LearnerConfig::fast());
    let result = learner.learn(&mut oracle);
    assert_eq!(
        result.outputs[0].strategy,
        Strategy::CompressedFbdt,
        "hidden comparator should trigger input compression: {:?}",
        result.outputs[0]
    );
    // The composition (comparator subcircuit + compressed function)
    // must be exact.
    let acc = evaluate_accuracy(
        oracle.reveal(),
        &result.circuit,
        &EvalConfig {
            patterns_per_group: 10_000,
            ..EvalConfig::default()
        },
    );
    assert_eq!(
        acc.hits, acc.total,
        "compressed learning must be exact: {acc}"
    );
    // And the circuit stays small: a 6-bit comparator plus a couple of
    // gates, far from the exponential SOP of the raw function.
    assert!(
        result.circuit.gate_count() < 120,
        "gate count {}",
        result.circuit.gate_count()
    );
}

#[test]
fn compression_does_not_misfire_on_plain_logic() {
    // ECO-style random logic with bussed *names* but no comparator:
    // the learner must fall back to FBDT/exhaustive without losing
    // accuracy.
    let mut g = Aig::new();
    let a: Vec<_> = (0..6)
        .map(|k| g.add_input(format!("a[{}]", 5 - k)))
        .collect();
    let b: Vec<_> = (0..6)
        .map(|k| g.add_input(format!("b[{}]", 5 - k)))
        .collect();
    // A scrambled, non-comparator function of both buses.
    let t1 = g.xor(a[0], b[3]);
    let t2 = g.and(a[2], b[1]);
    let t3 = g.xor(t1, t2);
    let t4 = g.and(a[5], b[5]);
    let z = g.or(t3, t4);
    g.add_output(z, "z");
    let mut oracle = CircuitOracle::new(g);
    let mut learner = Learner::new(LearnerConfig::fast());
    let result = learner.learn(&mut oracle);
    let acc = evaluate_accuracy(
        oracle.reveal(),
        &result.circuit,
        &EvalConfig {
            patterns_per_group: 5_000,
            ..EvalConfig::default()
        },
    );
    assert!(acc.ratio() > 0.999, "accuracy {acc}");
}
