//! Robustness sweep: the learner must hold its per-category quality
//! bars across many generator seeds, not just the suite's fixed ones.

use cirlearn::{Learner, LearnerConfig};
use cirlearn_oracle::{evaluate_accuracy, generate, EvalConfig};

fn accuracy_with_rounds(oracle: &mut cirlearn_oracle::CircuitOracle, rounds: usize) -> f64 {
    let mut cfg = LearnerConfig::fast();
    // Support identification is statistical (S' under-approximates S);
    // the quality bar of these sweeps assumes paper-adjacent sampling
    // effort, so raise r above the CI-fast default where needed.
    cfg.support_sampling.rounds = rounds;
    let mut learner = Learner::new(cfg);
    let result = learner.learn(oracle);
    evaluate_accuracy(
        oracle.reveal(),
        &result.circuit,
        &EvalConfig {
            patterns_per_group: 2_500,
            ..EvalConfig::default()
        },
    )
    .ratio()
}

#[test]
fn diag_is_exact_across_seeds() {
    for seed in [1u64, 7, 19, 42, 1234] {
        let mut oracle = generate::diag_case(24, 2, seed);
        let acc = accuracy_with_rounds(&mut oracle, 240);
        assert_eq!(acc, 1.0, "seed {seed}: DIAG accuracy {acc}");
    }
}

#[test]
fn data_is_exact_across_seeds() {
    for seed in [2u64, 8, 21, 77, 5150] {
        let mut oracle = generate::data_case(14, 6, seed);
        let acc = accuracy_with_rounds(&mut oracle, 240);
        assert_eq!(acc, 1.0, "seed {seed}: DATA accuracy {acc}");
    }
}

#[test]
fn small_eco_meets_bar_across_seeds() {
    for seed in [3u64, 9, 23, 81, 911] {
        let mut oracle = generate::eco_case_with_support(20, 3, 8, seed);
        let acc = accuracy_with_rounds(&mut oracle, 1200);
        assert!(acc >= 0.9999, "seed {seed}: ECO accuracy {acc}");
    }
}

#[test]
fn small_neq_meets_bar_across_seeds() {
    for seed in [4u64, 11, 29, 83, 999] {
        let mut oracle = generate::neq_case_with_support(24, 2, 8, seed);
        let acc = accuracy_with_rounds(&mut oracle, 1200);
        assert!(acc >= 0.999, "seed {seed}: NEQ accuracy {acc}");
    }
}
