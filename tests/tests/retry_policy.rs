//! Property-based tests over [`RetryPolicy`]'s backoff arithmetic: no
//! parameter combination may overflow a `Duration`, jitter stays inside
//! its declared bounds, and no retry is ever scheduled past the
//! remaining budget.

use std::time::Duration;

use cirlearn::Budget;
use cirlearn_oracle::RetryPolicy;
use proptest::prelude::*;

/// Maps a selector word to a backoff factor, covering sensible values
/// and the hostile ones (negative, non-finite) the policy must clamp.
fn factor_of(sel: u32) -> f64 {
    match sel % 8 {
        0 => f64::INFINITY,
        1 => f64::NEG_INFINITY,
        2 => f64::NAN,
        3 => -3.5,
        4 => 0.0,
        _ => (sel % 1000) as f64 / 10.0,
    }
}

/// Maps a selector word to a jitter fraction, including out-of-range
/// and non-finite values.
fn jitter_of(sel: u32) -> f64 {
    match sel % 8 {
        0 => f64::NAN,
        1 => -0.5,
        2 => 1.5,
        _ => (sel % 1001) as f64 / 1000.0,
    }
}

/// Strategy: an arbitrary (possibly absurd) retry policy. Durations
/// span from zero to ~11 days; factor and jitter include out-of-range
/// and non-finite values.
fn policy() -> impl Strategy<Value = RetryPolicy> {
    (
        (
            any::<u32>(),
            0u64..1_000_000_000_000,
            any::<u32>(),
            0u64..1_000_000_000_000,
        ),
        (any::<u32>(), any::<bool>(), any::<u64>()),
    )
        .prop_map(
            |((max_retries, base_us, factor_sel, cap_us), (jitter_sel, respawn, seed))| {
                RetryPolicy {
                    max_retries,
                    backoff_base: Duration::from_micros(base_us),
                    backoff_factor: factor_of(factor_sel),
                    backoff_cap: Duration::from_micros(cap_us),
                    jitter: jitter_of(jitter_sel),
                    respawn,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn backoff_never_panics_and_respects_the_cap(p in policy(), attempt in any::<u32>()) {
        let b = p.backoff(attempt);
        // Saturating arithmetic: whatever the parameters, the result is
        // a valid Duration no larger than the cap (modulo the f64
        // round-trip through seconds).
        prop_assert!(b.as_secs_f64() <= p.backoff_cap.as_secs_f64() * (1.0 + 1e-9) + 1e-9);
    }

    #[test]
    fn jittered_backoff_never_panics(
        p in policy(),
        attempt in any::<u32>(),
        salt in any::<u64>(),
    ) {
        let _ = p.backoff_with_jitter(attempt, salt);
    }

    #[test]
    fn jitter_stays_inside_declared_bounds(
        base_ms in 1u64..10_000,
        factor_tenths in 10u32..80,
        jitter_thousandths in 0u32..=1000,
        attempt in 0u32..24,
        salt in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let jitter = jitter_thousandths as f64 / 1000.0;
        let p = RetryPolicy {
            backoff_base: Duration::from_millis(base_ms),
            backoff_factor: factor_tenths as f64 / 10.0,
            backoff_cap: Duration::from_secs(3600),
            jitter,
            seed,
            ..RetryPolicy::default()
        };
        let plain = p.backoff(attempt).as_secs_f64();
        let jittered = p.backoff_with_jitter(attempt, salt).as_secs_f64();
        prop_assert!(
            jittered >= plain * (1.0 - jitter) - 1e-9,
            "below the jitter band: {} < {} * (1 - {})", jittered, plain, jitter
        );
        prop_assert!(
            jittered <= plain * (1.0 + jitter) + 1e-9,
            "above the jitter band: {} > {} * (1 + {})", jittered, plain, jitter
        );
    }

    #[test]
    fn jitter_is_deterministic_in_seed_salt_attempt(
        p in policy(),
        attempt in any::<u32>(),
        salt in any::<u64>(),
    ) {
        prop_assert_eq!(
            p.backoff_with_jitter(attempt, salt),
            p.backoff_with_jitter(attempt, salt)
        );
    }

    #[test]
    fn no_retry_is_scheduled_past_the_remaining_deadline(
        p in policy(),
        attempt in any::<u32>(),
        salt in any::<u64>(),
        remaining_us in 0u64..1_000_000_000_000,
    ) {
        let remaining = Duration::from_micros(remaining_us);
        match p.delay_within(attempt, salt, Some(remaining)) {
            // A scheduled delay always completes before the deadline.
            Some(d) => prop_assert!(d < remaining, "{:?} >= {:?}", d, remaining),
            // Refusal is only allowed when the delay really would land
            // past the deadline.
            None => prop_assert!(p.backoff_with_jitter(attempt, salt) >= remaining),
        }
        // Without a deadline every delay is schedulable.
        prop_assert!(p.delay_within(attempt, salt, None).is_some());
    }

    #[test]
    fn delays_fit_inside_a_live_budget(
        attempt in 0u32..16,
        salt in any::<u64>(),
        budget_ms in 1u64..5_000,
    ) {
        // The learner's wall-clock budget maps to the oracle deadline:
        // whatever the budget has left bounds any scheduled delay.
        let budget = Budget::new(Duration::from_millis(budget_ms));
        let p = RetryPolicy::default();
        if let Some(d) = p.delay_within(attempt, salt, Some(budget.remaining())) {
            prop_assert!(d <= Duration::from_millis(budget_ms));
        }
    }
}

/// Zero-jitter policies retry on an exactly reproducible schedule.
#[test]
fn zero_jitter_schedule_is_the_plain_backoff() {
    let p = RetryPolicy {
        jitter: 0.0,
        ..RetryPolicy::default()
    };
    for attempt in 0..10 {
        assert_eq!(p.backoff_with_jitter(attempt, 99), p.backoff(attempt));
    }
}
