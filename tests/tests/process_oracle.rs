//! End-to-end learning against an external process black box — the
//! contest's actual deployment shape (opaque executables).

use cirlearn::{Learner, LearnerConfig};
use cirlearn_oracle::{Oracle, ProcessOracle};

/// A shell black box: y = (a AND b) OR c over named inputs.
fn spawn_blackbox() -> ProcessOracle {
    ProcessOracle::spawn(
        "sh",
        &[
            "-c",
            r#"while read line; do
                   a=$(printf %s "$line" | cut -c1)
                   b=$(printf %s "$line" | cut -c2)
                   c=$(printf %s "$line" | cut -c3)
                   if { [ "$a" = 1 ] && [ "$b" = 1 ]; } || [ "$c" = 1 ]; then
                       echo 1
                   else
                       echo 0
                   fi
               done"#,
        ],
        vec!["a".into(), "b".into(), "c".into(), "noise".into()],
        vec!["y".into()],
    )
    .expect("sh is available")
}

#[test]
fn learner_recovers_a_process_black_box() {
    let mut oracle = spawn_blackbox();
    let mut cfg = LearnerConfig::fast();
    // Keep query volume small: each query is a pipe round-trip.
    cfg.support_sampling.rounds = 64;
    let result = Learner::new(cfg).learn(&mut oracle);
    assert_eq!(result.circuit.num_inputs(), 4);
    // Verify the learned circuit against the process exhaustively.
    for m in 0..16u32 {
        let mut a = cirlearn_logic::Assignment::zeros(4);
        for k in 0..4 {
            if m >> k & 1 == 1 {
                a.set(cirlearn_logic::Var::new(k), true);
            }
        }
        let want = oracle.query(&a);
        let bits: Vec<bool> = a.iter().collect();
        assert_eq!(result.circuit.eval_bits(&bits), want, "m={m}");
    }
    assert!(result.queries > 0);
}
