//! Property-based tests of the telemetry latency histogram: bucket
//! bounds must stay monotone, merging must equal recording the union,
//! quantiles must land within one log-bucket of the exact value, and
//! per-thread local recorders must merge to exactly what one shared
//! recorder would have seen.

use cirlearn_telemetry::{histograms, Histogram, Telemetry};
use proptest::prelude::*;

/// Strategy: a batch of latency samples mixing the regimes the
/// histogram sees in practice — sub-bucket values, realistic
/// nanosecond latencies, and arbitrary magnitudes.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((any::<u64>(), 0u8..3), 1..200).prop_map(|raw| {
        raw.into_iter()
            .map(|(v, regime)| match regime {
                0 => v % 16,
                1 => 100 + v % 1_000_000,
                _ => v,
            })
            .collect()
    })
}

/// Strategy: a quantile in `[0, 1]` (the shim has no f64 ranges).
fn quantile() -> impl Strategy<Value = f64> {
    (0u32..=1000).prop_map(|q| q as f64 / 1000.0)
}

fn record_all(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// The exact rank-based quantile the histogram approximates:
/// `sorted[ceil(q * count) - 1]`, ranks clamped to `1..=count`.
fn exact_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn count_sum_min_max_are_exact(values in samples()) {
        let h = record_all(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        // Per-sample recording saturates the n-fold multiply, but the
        // accumulator itself is a plain wrapping atomic add.
        let sum: u64 = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(h.sum(), sum);
        prop_assert_eq!(h.min(), *values.iter().min().expect("non-empty"));
        prop_assert_eq!(h.max(), *values.iter().max().expect("non-empty"));
    }

    #[test]
    fn quantile_is_within_one_bucket_of_exact(values in samples(), q in quantile()) {
        let h = record_all(&values);
        let exact = exact_quantile(&values, q);
        let approx = h.quantile(q);
        // The estimate is the lower bound of the bucket holding the
        // rank-th sample (capped at the exact max), so it can only
        // undershoot, and by at most the bucket width: one part in
        // eight plus integer truncation.
        prop_assert!(approx <= exact, "estimate {approx} overshoots exact {exact}");
        let width = exact / 8 + 1;
        prop_assert!(
            exact - approx <= width,
            "estimate {approx} misses exact {exact} by more than a bucket ({width})"
        );
    }

    #[test]
    fn quantile_is_monotone_in_q(values in samples(), q1 in quantile(), q2 in quantile()) {
        let h = record_all(&values);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
    }

    #[test]
    fn merge_equals_recording_the_union(a in samples(), b in samples()) {
        let merged = record_all(&a);
        merged.merge(&record_all(&b));
        let union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let direct = record_all(&union);
        prop_assert_eq!(merged.summary(), direct.summary());
        // Summaries only sample a few quantiles; spot-check more.
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), direct.quantile(q), "q = {}", q);
        }
    }

    #[test]
    // Thread-readiness invariant: splitting a sample stream across any
    // number of per-thread local recorders (any shard assignment, any
    // interleaving — histograms are order-free) and merging them on
    // drop must equal recording every sample on one shared histogram.
    fn local_recorder_merge_equals_single_recorder(
        assigned in prop::collection::vec((any::<u64>(), 0usize..4), 1..200),
    ) {
        let telemetry = Telemetry::recording();
        {
            let recorders: Vec<_> = (0..4)
                .map(|_| telemetry.local_recorder(histograms::FBDT_NODE_NS))
                .collect();
            for &(v, shard) in &assigned {
                recorders[shard].record(v % 1_000_000);
            }
            // Dropping merges each local shard into the shared histogram.
        }
        let report = telemetry.report();
        let merged = &report.histograms[histograms::FBDT_NODE_NS];
        let direct = record_all(
            &assigned.iter().map(|&(v, _)| v % 1_000_000).collect::<Vec<_>>(),
        );
        prop_assert_eq!(merged, &direct.summary());
    }

    #[test]
    // `v * n` must not overflow: bulk recording saturates the multiply
    // while the loop wraps the accumulator, so the sums would diverge.
    fn record_n_equals_repeated_record(v in 0..(u64::MAX / 128), n in 1u64..100) {
        let bulk = Histogram::new();
        bulk.record_n(v, n);
        let looped = Histogram::new();
        for _ in 0..n {
            looped.record(v);
        }
        prop_assert_eq!(bulk.summary(), looped.summary());
    }
}
