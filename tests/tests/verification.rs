//! Mutation self-checks for the verification subsystem.
//!
//! Each test corrupts a sound circuit in a way the subsystem claims to
//! detect and proves the responsible layer — structural linter, random
//! simulation, SAT equivalence — actually catches it. Every functional
//! witness is re-simulated on both circuits, so a vacuous "caught it"
//! (right error, wrong counterexample) fails the suite.

use cirlearn_aig::{Aig, Edge, NodeId};
use cirlearn_synth::{optimize_with, CheckedPass, OptimizeConfig};
use cirlearn_telemetry::{counters, Telemetry};
use cirlearn_verify::{
    lint, verify_pass, LintViolation, Linter, VerifyConfig, VerifyLevel, Violation,
};

/// A full adder: two non-trivial outputs over three inputs, enough AND
/// nodes to corrupt in every class.
fn full_adder() -> Aig {
    let mut g = Aig::new();
    let a = g.add_input("a");
    let b = g.add_input("b");
    let c = g.add_input("c");
    let s = g.xor(a, b);
    let sum = g.xor(s, c);
    let ab = g.and(a, b);
    let sc = g.and(s, c);
    let carry = g.or(ab, sc);
    g.add_output(sum, "sum");
    g.add_output(carry, "carry");
    g
}

fn and_nodes(g: &Aig) -> Vec<NodeId> {
    g.ands().map(|(n, _, _)| n).collect()
}

#[test]
fn sound_circuit_is_clean_under_the_strict_linter() {
    let g = full_adder().cleanup();
    assert!(lint(&g).is_empty());
}

#[test]
fn linter_catches_every_structural_mutation_class() {
    let base = full_adder();
    let nodes = and_nodes(&base);
    let first = nodes[0];
    let last = *nodes.last().expect("adder has AND nodes");

    // Each entry: a named mutator plus a predicate for the violation
    // class it must trip. The linter must also never panic, whatever
    // the damage.
    type Mutator = fn(&mut Aig, NodeId, NodeId);
    type Expected = fn(&LintViolation) -> bool;
    let battery: Vec<(&str, Mutator, Expected)> = vec![
        (
            "fanin past the node table",
            |g, first, _| {
                let far = Edge::new(NodeId::from_index(g.node_count() + 3), false);
                g.set_fanin_unchecked(first, 1, far);
            },
            |v| matches!(v, LintViolation::FaninOutOfRange { .. }),
        ),
        (
            "fanin pointing forward (topological order broken)",
            |g, first, last| {
                g.set_fanin_unchecked(first, 0, Edge::new(last, false));
            },
            |v| matches!(v, LintViolation::NonTopologicalFanin { .. }),
        ),
        (
            "fanins swapped out of canonical order",
            |g, _, last| {
                let [a, b] = g.fanins(last);
                g.set_fanin_unchecked(last, 0, b);
                g.set_fanin_unchecked(last, 1, a);
            },
            |v| matches!(v, LintViolation::UnorderedFanins { .. }),
        ),
        (
            "two nodes computing the same fanin pair",
            |g, first, last| {
                let [a, b] = g.fanins(first);
                g.set_fanin_unchecked(last, 0, a);
                g.set_fanin_unchecked(last, 1, b);
            },
            |v| matches!(v, LintViolation::DuplicateFaninPair { .. }),
        ),
        (
            "constant fanin survived folding",
            |g, _, last| {
                g.set_fanin_unchecked(last, 0, Edge::TRUE);
            },
            |v| matches!(v, LintViolation::ConstantFanin { .. }),
        ),
        (
            "trivial AND of a node with itself",
            |g, _, last| {
                let [a, _] = g.fanins(last);
                g.set_fanin_unchecked(last, 0, a);
                g.set_fanin_unchecked(last, 1, a);
            },
            |v| matches!(v, LintViolation::TrivialAnd { .. }),
        ),
        (
            "output pointing past the node table",
            |g, _, _| {
                let far = Edge::new(NodeId::from_index(g.node_count() + 1), true);
                g.set_output_unchecked(0, far);
            },
            |v| matches!(v, LintViolation::OutputOutOfRange { .. }),
        ),
    ];

    for (name, mutate, expected) in battery {
        let mut broken = full_adder();
        mutate(&mut broken, first, last);
        let violations = Linter::new().allow_dangling(true).lint(&broken);
        assert!(
            violations.iter().any(expected),
            "{name}: expected violation class missing, got {violations:?}"
        );
    }
}

#[test]
fn dangling_node_is_strict_only() {
    let mut g = full_adder();
    let a = g.input_edge(0);
    let c = g.input_edge(2);
    let _ = g.and(!a, !c);
    let strict = lint(&g);
    assert!(
        strict
            .iter()
            .any(|v| matches!(v, LintViolation::DanglingAnd { .. })),
        "{strict:?}"
    );
    assert!(Linter::new().allow_dangling(true).lint(&g).is_empty());
}

#[test]
fn semantic_mutations_yield_resimulated_witnesses_at_sim_and_sat() {
    let base = full_adder();
    let mutants: Vec<(&str, Aig)> = vec![
        ("sum output complemented", {
            let mut g = full_adder();
            let e = g.output_edge(0);
            g.set_output_unchecked(0, !e);
            g
        }),
        ("carry output complemented", {
            let mut g = full_adder();
            let e = g.output_edge(1);
            g.set_output_unchecked(1, !e);
            g
        }),
        ("sum retargeted to input a", {
            let mut g = full_adder();
            let a = g.input_edge(0);
            g.set_output_unchecked(0, a);
            g
        }),
        ("carry stuck at 1", {
            let mut g = full_adder();
            g.set_output_unchecked(1, Edge::TRUE);
            g
        }),
    ];

    for (name, broken) in &mutants {
        // Structure is untouched, so the lint level must stay silent...
        assert_eq!(
            verify_pass(&base, broken, &VerifyConfig::at_level(VerifyLevel::Lint)),
            Ok(()),
            "{name}: lint cannot see semantic damage"
        );
        // ...while both functional levels must produce a witness that
        // genuinely separates the two circuits.
        for level in [VerifyLevel::Sim, VerifyLevel::Sat] {
            match verify_pass(&base, broken, &VerifyConfig::at_level(level)) {
                Err(Violation::Functional(w)) => {
                    let l = base.eval(&w.inputs);
                    let r = broken.eval(&w.inputs);
                    assert_ne!(
                        l[w.output], r[w.output],
                        "{name} at {level}: witness does not distinguish the circuits"
                    );
                }
                other => panic!("{name} at {level}: expected a witness, got {other:?}"),
            }
        }
    }
}

#[test]
fn structural_corruption_is_linted_before_simulation_can_panic() {
    let base = full_adder();
    let mut broken = full_adder();
    let nodes = and_nodes(&broken);
    let first = nodes[0];
    let last = *nodes.last().expect("adder has AND nodes");
    // A forward edge would send `simulate` and the CNF encoder reading
    // an uninitialized slot; every level must stop at the lint stage.
    broken.set_fanin_unchecked(first, 0, Edge::new(last, true));
    for level in [VerifyLevel::Lint, VerifyLevel::Sim, VerifyLevel::Sat] {
        assert!(
            matches!(
                verify_pass(&base, &broken, &VerifyConfig::at_level(level)),
                Err(Violation::Lint(_))
            ),
            "level {level} must report the lint violation"
        );
    }
}

#[test]
fn checked_pass_heals_a_corrupting_pass_and_counts_it() {
    let base = full_adder();
    let telemetry = Telemetry::recording();
    let cfg = VerifyConfig::at_level(VerifyLevel::Sat);
    let checked = CheckedPass::new("saboteur", &cfg, &telemetry);
    let outcome = checked.run(&base, |g| {
        let mut bad = g.clone();
        let e = bad.output_edge(0);
        bad.set_output_unchecked(0, !e);
        bad
    });
    let violation = outcome.violation.as_ref().expect("pass must be rejected");
    assert!(matches!(violation, Violation::Functional(_)), "{violation}");
    // The harness hands back the pre-pass circuit, so the pipeline keeps
    // a provably correct result.
    assert!(cirlearn_sat::check_equivalence(&base, &outcome.circuit).is_equivalent());
    assert_eq!(telemetry.counter(counters::VERIFY_CHECKS), 1);
    assert_eq!(telemetry.counter(counters::VERIFY_REJECTED_PASSES), 1);
    assert_eq!(telemetry.counter(counters::VERIFY_WITNESSES), 1);
}

#[test]
fn optimization_under_every_verify_level_preserves_equivalence() {
    use cirlearn_oracle::generate;
    use std::time::Duration;

    let oracle = generate::case(generate::Category::Eco, 12, 2, 5);
    let golden = oracle.reveal();
    for level in VerifyLevel::ALL {
        let telemetry = Telemetry::recording();
        let cfg = OptimizeConfig {
            time_budget: Duration::from_secs(5),
            max_rounds: 1,
            verify: VerifyConfig::at_level(level),
            ..OptimizeConfig::default()
        };
        let best = optimize_with(golden, &cfg, &telemetry);
        assert!(
            cirlearn_sat::check_equivalence(golden, &best).is_equivalent(),
            "level {level}: optimization changed the function"
        );
        assert_eq!(
            telemetry.counter(counters::VERIFY_REJECTED_PASSES),
            0,
            "level {level}: no bundled pass may be rejected"
        );
        if level != VerifyLevel::Off {
            assert!(telemetry.counter(counters::VERIFY_CHECKS) > 0);
        }
    }
}
