//! Offline supply-chain audit: the workspace must stay fully
//! self-contained. Every crate in the dependency graph is either an
//! in-tree workspace member or vendored under `vendor/`, so `Cargo.lock`
//! must contain no external sources at all. This is the zero-tooling
//! mirror of the `deny.toml` policy (`unknown-registry = "deny"`,
//! `unknown-git = "deny"`), enforced by the plain test suite so it runs
//! everywhere — including offline containers where `cargo deny` is not
//! installed.

use std::path::Path;

fn lockfile() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../Cargo.lock");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn lockfile_has_no_external_sources() {
    let lock = lockfile();
    let external: Vec<&str> = lock
        .lines()
        .filter(|l| {
            let l = l.trim_start();
            l.starts_with("source = ") && (l.contains("registry+") || l.contains("git+"))
        })
        .collect();
    assert!(
        external.is_empty(),
        "Cargo.lock gained external sources — vendor the crate or drop \
         the dependency (deny.toml forbids registry/git sources):\n{}",
        external.join("\n")
    );
}

#[test]
fn lockfile_has_no_checksums() {
    // Path dependencies carry no checksum; a `checksum =` line is
    // another tell of a registry crate slipping in.
    let lock = lockfile();
    assert!(
        !lock.contains("\nchecksum = "),
        "Cargo.lock contains registry checksums; the workspace must stay \
         path-only"
    );
}

#[test]
fn every_locked_package_is_in_tree() {
    // Stronger form of the source audit: each `[[package]]` in the
    // lockfile must correspond to an in-tree directory — a workspace
    // crate under `crates/` (package `cirlearn-x` lives in `crates/x`),
    // the `tests/` harness crate, or a vendored crate under `vendor/`.
    let lock = lockfile();
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    let names = lock
        .lines()
        .filter_map(|l| l.strip_prefix("name = \""))
        .filter_map(|l| l.strip_suffix('"'));
    for name in names {
        let dir = match name.strip_prefix("cirlearn-") {
            Some("tests") => root.join("tests"),
            Some(rest) => root.join("crates").join(rest),
            // The core library is the plain `cirlearn` package.
            None if name == "cirlearn" => root.join("crates").join("core"),
            None => root.join("vendor").join(name),
        };
        assert!(
            dir.is_dir(),
            "locked package `{name}` has no in-tree home at {}",
            dir.display()
        );
    }
}

#[test]
fn the_concurrency_toolkit_stays_in_the_graph() {
    // The weak-memory model checker, the race detector, the lint
    // binary, and the executor they verify must remain workspace
    // members — dropping any of them silently disables a CI gate.
    let lock = lockfile();
    for member in ["cirlearn-exec", "cirlearn-lint", "loom", "tsan", "proptest"] {
        assert!(
            lock.contains(&format!("name = \"{member}\"")),
            "`{member}` left the dependency graph; the concurrency \
             toolkit must stay in-tree"
        );
    }
}

#[test]
fn deny_policy_is_checked_in_and_strict() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../deny.toml");
    let policy = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    for required in [
        "unknown-registry = \"deny\"",
        "unknown-git = \"deny\"",
        "allow-registry = []",
    ] {
        assert!(
            policy.contains(required),
            "deny.toml lost its strict source policy: missing `{required}`"
        );
    }
}
