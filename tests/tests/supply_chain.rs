//! Offline supply-chain audit: the workspace must stay fully
//! self-contained. Every crate in the dependency graph is either an
//! in-tree workspace member or vendored under `vendor/`, so `Cargo.lock`
//! must contain no external sources at all. This is the zero-tooling
//! mirror of the `deny.toml` policy (`unknown-registry = "deny"`,
//! `unknown-git = "deny"`), enforced by the plain test suite so it runs
//! everywhere — including offline containers where `cargo deny` is not
//! installed.

use std::path::Path;

fn lockfile() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../Cargo.lock");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn lockfile_has_no_external_sources() {
    let lock = lockfile();
    let external: Vec<&str> = lock
        .lines()
        .filter(|l| {
            let l = l.trim_start();
            l.starts_with("source = ") && (l.contains("registry+") || l.contains("git+"))
        })
        .collect();
    assert!(
        external.is_empty(),
        "Cargo.lock gained external sources — vendor the crate or drop \
         the dependency (deny.toml forbids registry/git sources):\n{}",
        external.join("\n")
    );
}

#[test]
fn lockfile_has_no_checksums() {
    // Path dependencies carry no checksum; a `checksum =` line is
    // another tell of a registry crate slipping in.
    let lock = lockfile();
    assert!(
        !lock.contains("\nchecksum = "),
        "Cargo.lock contains registry checksums; the workspace must stay \
         path-only"
    );
}

#[test]
fn deny_policy_is_checked_in_and_strict() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../deny.toml");
    let policy = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    for required in [
        "unknown-registry = \"deny\"",
        "unknown-git = \"deny\"",
        "allow-registry = []",
    ] {
        assert!(
            policy.contains(required),
            "deny.toml lost its strict source policy: missing `{required}`"
        );
    }
}
