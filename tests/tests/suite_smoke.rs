//! Category-level expectations over the contest suite at reduced scale
//! — a fast proxy for the full `table2` harness, run in CI.

use std::time::Duration;

use cirlearn::{Learner, LearnerConfig, Strategy};
use cirlearn_oracle::{contest_suite, evaluate_accuracy, Category, EvalConfig};

fn learn_case(name: &str, budget_secs: u64) -> (cirlearn::LearnResult, f64) {
    let suite = contest_suite();
    let case = suite.iter().find(|c| c.name == name).expect("case exists");
    let mut oracle = case.build();
    let mut cfg = LearnerConfig::fast();
    cfg.time_budget = Duration::from_secs(budget_secs);
    let result = Learner::new(cfg).learn(&mut oracle);
    let acc = evaluate_accuracy(
        oracle.reveal(),
        &result.circuit,
        &EvalConfig {
            patterns_per_group: 4_000,
            ..EvalConfig::default()
        },
    );
    (result, acc.ratio())
}

#[test]
fn diag_case_16_solves_via_templates() {
    let (result, acc) = learn_case("case_16", 10);
    assert_eq!(acc, 1.0, "case_16 accuracy {acc}");
    assert!(result
        .outputs
        .iter()
        .all(|s| s.strategy == Strategy::ComparatorTemplate));
}

#[test]
fn data_case_12_solves_via_linear_template() {
    let (result, acc) = learn_case("case_12", 20);
    assert_eq!(acc, 1.0, "case_12 accuracy {acc}");
    assert!(result
        .outputs
        .iter()
        .all(|s| s.strategy == Strategy::LinearTemplate));
}

#[test]
fn easy_eco_case_13_is_exact_and_tiny() {
    let (result, acc) = learn_case("case_13", 10);
    assert_eq!(acc, 1.0, "case_13 accuracy {acc}");
    assert!(result.circuit.gate_count() < 100);
}

#[test]
fn easy_neq_case_10_is_exact() {
    let (_, acc) = learn_case("case_10", 10);
    assert_eq!(acc, 1.0, "case_10 accuracy {acc}");
}

#[test]
fn hard_neq_case_14_fails_the_bar() {
    // The paper's case_14 reached only 28% after 2700 s; under a small
    // budget the analogue must stay far below the contest bar — if it
    // ever "solves", the benchmark generator has degenerated.
    let (result, acc) = learn_case("case_14", 6);
    assert!(acc < 0.999, "case_14 should stay hard, got {acc}");
    assert!(
        result.outputs.iter().any(|s| s.forced_leaves > 0),
        "budget pressure should force leaves"
    );
}

#[test]
fn category_census_matches_paper() {
    let suite = contest_suite();
    let count = |c: Category| suite.iter().filter(|x| x.category == c).count();
    assert_eq!(
        (
            count(Category::Eco),
            count(Category::Diag),
            count(Category::Neq),
            count(Category::Data)
        ),
        (7, 6, 5, 2)
    );
}
