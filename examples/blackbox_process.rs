//! Learning an *external process* as the black box — the contest's
//! actual deployment shape (opaque executables).
//!
//! A throwaway shell script plays the unknown system: it reads one
//! line of 0/1 input bits and answers with one line of output bits
//! (`y = (a XOR b) OR en`). The learner only sees the pipe.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example blackbox_process
//! ```

use cirlearn::{Learner, LearnerConfig};
use cirlearn_oracle::{Oracle, ProcessOracle};
use cirlearn_synth::map::map_gates;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The "unknown" system, as a shell process. Bits arrive in input
    // order: a, b, en, pad0, pad1.
    let script = r#"while read line; do
        a=$(printf %s "$line" | cut -c1)
        b=$(printf %s "$line" | cut -c2)
        en=$(printf %s "$line" | cut -c3)
        if [ "$a" != "$b" ] || [ "$en" = 1 ]; then echo 1; else echo 0; fi
    done"#;
    let mut oracle = ProcessOracle::spawn(
        "sh",
        &["-c", script],
        vec![
            "a".into(),
            "b".into(),
            "en".into(),
            "pad0".into(),
            "pad1".into(),
        ],
        vec!["y".into()],
    )?;

    let mut cfg = LearnerConfig::fast();
    // Every query is a pipe round-trip: keep sampling modest.
    cfg.support_sampling.rounds = 64;
    let result = Learner::new(cfg).learn(&mut oracle);

    for s in &result.outputs {
        println!(
            "output {} ({}): strategy={} support={}",
            s.output, s.name, s.strategy, s.support_size
        );
    }
    let mapped = map_gates(&result.circuit);
    println!(
        "learned in {:?} with {} pipe queries: {} primitive gates",
        result.elapsed,
        result.queries,
        mapped.gate_count()
    );

    // Check the learned circuit against the process on every input.
    let mut wrong = 0;
    for m in 0..32u32 {
        let mut a = cirlearn_logic::Assignment::zeros(5);
        for k in 0..5 {
            if m >> k & 1 == 1 {
                a.set(cirlearn_logic::Var::new(k), true);
            }
        }
        let want = oracle.query(&a);
        let bits: Vec<bool> = a.iter().collect();
        if result.circuit.eval_bits(&bits) != want {
            wrong += 1;
        }
    }
    println!("exhaustive check: {} of 32 patterns wrong", wrong);
    assert_eq!(wrong, 0, "the black box must be learned exactly");
    Ok(())
}
