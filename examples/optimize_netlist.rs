//! The optimization toolchain on its own: take a deliberately bloated
//! circuit (a flat minterm cover, the shape an FBDT emits), run each
//! pass, and watch the gate count fall — ending with technology
//! mapping to the contest's 2-input primitive-gate metric.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example optimize_netlist
//! ```

use cirlearn_aig::{Aig, Edge};
use cirlearn_sat::check_equivalence;
use cirlearn_synth::{
    balance, collapse, fraig, map::map_gates, optimize, redundancy_removal, refactor, rewrite,
    CollapseConfig, FraigConfig, OptimizeConfig, RedundancyConfig, RefactorConfig,
};

/// Builds the minterm-by-minterm cover of `maj(x0,x1,x2) XOR x3` over
/// 6 inputs — massively redundant on purpose.
fn bloated() -> Aig {
    let mut g = Aig::new();
    let inputs = g.add_inputs("x", 6);
    let f = |m: u32| -> bool {
        let maj = (m & 1) + (m >> 1 & 1) + (m >> 2 & 1) >= 2;
        maj != (m >> 3 & 1 == 1)
    };
    let mut cubes = Vec::new();
    for m in 0..64u32 {
        if f(m) {
            let lits: Vec<Edge> = (0..6)
                .map(|k| inputs[k].complement_if(m >> k & 1 == 0))
                .collect();
            cubes.push(g.and_many(&lits));
        }
    }
    let y = g.or_many(&cubes);
    g.add_output(y, "y");
    g
}

fn main() {
    let original = bloated();
    println!(
        "original (flat minterm cover): {} AND nodes",
        original.gate_count()
    );

    let mut current = original.clone();
    type NamedPass = (&'static str, Box<dyn Fn(&Aig) -> Aig>);
    let passes: Vec<NamedPass> = vec![
        ("balance", Box::new(balance)),
        ("rewrite", Box::new(rewrite)),
        (
            "refactor",
            Box::new(|g| refactor(g, &RefactorConfig::default())),
        ),
        ("fraig", Box::new(|g| fraig(g, &FraigConfig::default()))),
        (
            "collapse",
            Box::new(|g| collapse(g, &CollapseConfig::default())),
        ),
        (
            "redundancy",
            Box::new(|g| redundancy_removal(g, &RedundancyConfig::default())),
        ),
    ];
    for (name, pass) in &passes {
        let next = pass(&current);
        println!(
            "after {:<10}: {:>4} AND nodes{}",
            name,
            next.gate_count(),
            if next.gate_count() < current.gate_count() {
                "  (improved)"
            } else {
                ""
            }
        );
        assert!(
            check_equivalence(&current, &next).is_equivalent(),
            "{name} must preserve the function"
        );
        if next.gate_count() <= current.gate_count() {
            current = next;
        }
    }

    let best = optimize(&original, &OptimizeConfig::default());
    println!("\nfull optimize script: {} AND nodes", best.gate_count());
    assert!(check_equivalence(&original, &best).is_equivalent());

    let mapped = map_gates(&best);
    println!(
        "technology mapped: {} primitive gates ({} cells incl. XOR/MUX)",
        mapped.gate_count(),
        mapped.cell_count()
    );
    println!(
        "\nfinal circuit as Verilog:\n{}",
        best.to_verilog("optimized")
    );
}
