//! Run one case of the contest suite end to end.
//!
//! Picks a case from the 20-case roster (paper Table II), instantiates
//! its hidden circuit, learns it, and reports size / accuracy / time —
//! the three columns of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example contest_case [case_name]
//! # e.g.
//! cargo run --release --example contest_case case_16
//! ```

use std::time::Duration;

use cirlearn::{Learner, LearnerConfig};
use cirlearn_oracle::{contest_suite, evaluate_accuracy, EvalConfig};

fn main() {
    let wanted = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "case_16".to_owned());
    let suite = contest_suite();
    let case = suite.iter().find(|c| c.name == wanted).unwrap_or_else(|| {
        eprintln!("unknown case {wanted}; available:");
        for c in &suite {
            eprintln!(
                "  {} ({} {}x{})",
                c.name, c.category, c.num_inputs, c.num_outputs
            );
        }
        std::process::exit(1);
    });

    println!(
        "{}: {} with {} inputs, {} outputs{}",
        case.name,
        case.category,
        case.num_inputs,
        case.num_outputs,
        if case.hidden {
            " (hidden at the contest)"
        } else {
            ""
        }
    );

    let mut oracle = case.build();
    println!(
        "hidden circuit has {} gates (unknown to the learner)",
        oracle.reveal().gate_count()
    );

    let mut config = LearnerConfig::fast();
    config.time_budget = Duration::from_secs(60);
    let mut learner = Learner::new(config);
    let result = learner.learn(&mut oracle);

    let mut by_strategy = std::collections::BTreeMap::new();
    for s in &result.outputs {
        *by_strategy.entry(s.strategy.to_string()).or_insert(0usize) += 1;
    }
    println!("strategies: {by_strategy:?}");

    let acc = evaluate_accuracy(
        oracle.reveal(),
        &result.circuit,
        &EvalConfig {
            patterns_per_group: 100_000,
            ..EvalConfig::default()
        },
    );
    let mapped = cirlearn_synth::map::map_gates(&result.circuit).gate_count();
    println!(
        "size = {:>6} primitive gates ({} AIG ands)   accuracy = {:>8}   time = {:>6.1?}   queries = {}",
        mapped,
        result.circuit.gate_count(),
        acc.to_string(),
        result.elapsed,
        result.queries,
    );
}
