//! DATA scenario: recognizing an arithmetic datapath behind a black
//! box (paper §V, category DATA).
//!
//! A hidden circuit computes `N_z = 3·N_a + 5·N_b − 2·N_c + 11` over
//! named buses. The learner's name grouping discovers the buses, the
//! linear-arithmetic template recovers every coefficient with a handful
//! of probes, and the emitted adder network is exact — the reason the
//! paper solves DATA cases in seconds with the smallest circuits.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example datapath_recognition
//! ```

use cirlearn::naming::group_names;
use cirlearn::sampling::seeded_rng;
use cirlearn::template::{match_linear, TemplateConfig};
use cirlearn::{Learner, LearnerConfig, Strategy};
use cirlearn_aig::Aig;
use cirlearn_oracle::{CircuitOracle, Oracle};
use cirlearn_sat::check_equivalence;

fn main() {
    // Hidden datapath: z (8 bits) = 3a + 5b - 2c + 11 (mod 256).
    let mut hidden = Aig::new();
    let a: Vec<_> = (0..5)
        .map(|k| hidden.add_input(format!("a[{}]", 4 - k)))
        .collect();
    let b: Vec<_> = (0..5)
        .map(|k| hidden.add_input(format!("b[{}]", 4 - k)))
        .collect();
    let c: Vec<_> = (0..4)
        .map(|k| hidden.add_input(format!("c[{}]", 3 - k)))
        .collect();
    let z = hidden.scale_sum(&[(3, a), (5, b), (-2, c)], 11, 8);
    for (k, e) in z.iter().enumerate() {
        hidden.add_output(*e, format!("z[{}]", 7 - k));
    }
    println!("hidden datapath: {hidden} ({} gates)", hidden.gate_count());
    let mut oracle = CircuitOracle::new(hidden);

    // Step 1: name based grouping (paper Fig. 2).
    let in_groups = group_names(oracle.input_names());
    println!("\nrecovered input buses:");
    for g in &in_groups.groups {
        println!("  {} : width {}", g.stem, g.width());
    }
    let out_groups = group_names(oracle.output_names());
    println!(
        "recovered output buses: {:?}",
        out_groups
            .groups
            .iter()
            .map(|g| (&g.stem, g.width()))
            .collect::<Vec<_>>()
    );

    // Step 2: linear-arithmetic template (paper §IV-B2), shown
    // explicitly before running the full pipeline.
    let mut rng = seeded_rng(1);
    let m = match_linear(
        &mut oracle,
        &out_groups.groups[0],
        &in_groups.groups,
        &TemplateConfig::default(),
        &mut rng,
    )
    .expect("the datapath matches the linear template");
    println!("\nmatched: N_z = ");
    for (coeff, gi) in &m.terms {
        println!("    + {} * N_{}", coeff, in_groups.groups[*gi].stem);
    }
    println!("    + {}   (mod 2^{})", m.offset, m.width);
    println!("(coefficients are residues mod 2^{}; 254 = -2)", m.width);

    // Full pipeline for comparison.
    let mut learner = Learner::new(LearnerConfig::fast());
    let result = learner.learn(&mut oracle);
    assert!(result
        .outputs
        .iter()
        .all(|s| s.strategy == Strategy::LinearTemplate));
    println!(
        "\nfull pipeline: {} gates, {} queries, {:?}",
        result.circuit.gate_count(),
        result.queries,
        result.elapsed
    );

    // The learned datapath is *provably* equivalent to the hidden one.
    let verdict = check_equivalence(oracle.reveal(), &result.circuit);
    println!(
        "SAT equivalence check: {}",
        if verdict.is_equivalent() {
            "EQUIVALENT"
        } else {
            "DIFFERENT"
        }
    );
    assert!(verdict.is_equivalent());
}
