//! NEQ scenario: non-equivalence diagnosis (paper §V, category NEQ).
//!
//! Two versions of a design differ by a subtle bug; their miter — XOR
//! of corresponding outputs — is 1 exactly on the disagreement region.
//! Learning a compact circuit for the miter *characterizes the bug*:
//! the learned SOP's cubes describe the input conditions under which
//! the two versions diverge.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example neq_diagnosis
//! ```

use cirlearn::{Learner, LearnerConfig};
use cirlearn_aig::Aig;
use cirlearn_oracle::{evaluate_accuracy, CircuitOracle, EvalConfig};

fn main() {
    // "Golden" cone: y = (a & b) | (c & d & e).
    // "Revised" cone has a bug: the last product term reads !e.
    let mut hidden = Aig::new();
    let names = ["a", "b", "c", "d", "e", "f", "g", "h"];
    let inputs: Vec<_> = names.iter().map(|n| hidden.add_input(*n)).collect();
    let (a, b, c, d, e) = (inputs[0], inputs[1], inputs[2], inputs[3], inputs[4]);

    let golden = {
        let ab = hidden.and(a, b);
        let cde = {
            let cd = hidden.and(c, d);
            hidden.and(cd, e)
        };
        hidden.or(ab, cde)
    };
    let revised = {
        let ab = hidden.and(a, b);
        let cde = {
            let cd = hidden.and(c, d);
            hidden.and(cd, !e) // the bug
        };
        hidden.or(ab, cde)
    };
    let miter = hidden.xor(golden, revised);
    hidden.add_output(miter, "neq");
    let mut oracle = CircuitOracle::new(hidden);

    // Learn the miter.
    let mut learner = Learner::new(LearnerConfig::fast());
    let result = learner.learn(&mut oracle);

    println!("learned miter: {} gates", result.circuit.gate_count());
    for s in &result.outputs {
        println!(
            "strategy = {}, estimated support = {} of {} inputs",
            s.strategy,
            s.support_size,
            result.circuit.num_inputs()
        );
    }

    let acc = evaluate_accuracy(
        oracle.reveal(),
        &result.circuit,
        &EvalConfig {
            patterns_per_group: 50_000,
            ..EvalConfig::default()
        },
    );
    println!("accuracy: {acc}");

    // Diagnosis: where do the two versions disagree? The miter fires
    // exactly when (c & d) & !(a & b) — independent of e's phase bug
    // cancelling... enumerate the onset to show the condition.
    println!("\ndisagreement region (inputs a,b,c,d,e):");
    let mut count = 0;
    for m in 0..32u32 {
        let mut bits = vec![false; 8];
        for (k, bit) in bits.iter_mut().enumerate().take(5) {
            *bit = m >> k & 1 == 1;
        }
        if oracle.reveal().eval_bits(&bits)[0] {
            println!(
                "  a={} b={} c={} d={} e={}",
                bits[0] as u8, bits[1] as u8, bits[2] as u8, bits[3] as u8, bits[4] as u8
            );
            count += 1;
        }
    }
    println!("{count} of 32 assignments to (a..e) expose the bug");
    assert!(
        acc.meets_contest_bar(),
        "small NEQ cones must be learned exactly"
    );
}
