//! Quickstart: learn a black-box circuit end to end.
//!
//! Builds a hidden circuit, wraps it as a black-box oracle, runs the
//! full learning pipeline (paper Fig. 1) and prints a per-stage trace:
//! grouping, template matching, support identification, FBDT, and
//! optimization — then measures accuracy with the contest metric.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cirlearn::{Learner, LearnerConfig};
use cirlearn_aig::Aig;
use cirlearn_oracle::{evaluate_accuracy, CircuitOracle, EvalConfig};

fn main() {
    // The "unknown system": z = (N_a >= N_b) OR (x AND y), over two
    // 4-bit buses and two control wires. Only the query interface is
    // visible to the learner.
    let mut hidden = Aig::new();
    let a: Vec<_> = (0..4)
        .map(|k| hidden.add_input(format!("a[{}]", 3 - k)))
        .collect();
    let b: Vec<_> = (0..4)
        .map(|k| hidden.add_input(format!("b[{}]", 3 - k)))
        .collect();
    let x = hidden.add_input("x");
    let y = hidden.add_input("y");
    let ge = hidden.cmp_uge(&a, &b);
    let xy = hidden.and(x, y);
    let z = hidden.or(ge, xy);
    hidden.add_output(z, "z");
    println!("hidden circuit: {hidden}");

    let mut oracle = CircuitOracle::new(hidden);

    // Learn it.
    let mut learner = Learner::new(LearnerConfig::fast());
    let result = learner.learn(&mut oracle);

    println!("\n== per-output trace ==");
    for s in &result.outputs {
        println!(
            "output {:>2} ({}): strategy={} support={} forced_leaves={}",
            s.output, s.name, s.strategy, s.support_size, s.forced_leaves
        );
    }

    println!("\n== learned circuit ==");
    println!("{}", result.circuit);
    println!("gates: {}", result.circuit.gate_count());
    println!("queries spent: {}", result.queries);
    println!("time: {:?}", result.elapsed);

    // Score with the contest metric (biased + uniform pattern mix).
    let acc = evaluate_accuracy(
        oracle.reveal(),
        &result.circuit,
        &EvalConfig {
            patterns_per_group: 50_000,
            ..EvalConfig::default()
        },
    );
    println!("\naccuracy: {acc} ({}/{} hits)", acc.hits, acc.total);
    println!("meets contest bar (>= 99.99%): {}", acc.meets_contest_bar());
}
