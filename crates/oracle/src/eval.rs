//! The contest accuracy metric.
//!
//! Paper §V: each submitted circuit is tested with 1500k assignments —
//! 500k with a higher ratio of 1s, 500k with a higher ratio of 0s and
//! 500k uniformly random — and accuracy is the *hit rate*: the fraction
//! of assignments on which **all** outputs match the golden circuit.

use cirlearn_aig::Aig;
use cirlearn_logic::Assignment;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for [`evaluate_accuracy`].
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Patterns per group (the contest used 500 000 per group; tests
    /// use far fewer).
    pub patterns_per_group: usize,
    /// Probability of a 1 in the "higher ratio of 1s" group.
    pub high_ratio: f64,
    /// Probability of a 1 in the "higher ratio of 0s" group.
    pub low_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            patterns_per_group: 20_000,
            high_ratio: 0.75,
            low_ratio: 0.25,
            seed: 0xE7A1,
        }
    }
}

/// The outcome of an accuracy evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Accuracy {
    /// Assignments on which every output matched.
    pub hits: u64,
    /// Total assignments tested.
    pub total: u64,
}

impl Accuracy {
    /// Hit rate in `[0, 1]`.
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Hit rate as the percentage the paper reports (3 decimals).
    pub fn percent(&self) -> f64 {
        self.ratio() * 100.0
    }

    /// Whether the contest's hard constraint (≥ 99.99%) is met.
    pub fn meets_contest_bar(&self) -> bool {
        self.ratio() >= 0.9999
    }
}

impl std::fmt::Display for Accuracy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}%", self.percent())
    }
}

/// Measures the hit rate of `candidate` against `golden` with the
/// contest's three-way pattern mix.
///
/// A *hit* requires all outputs to match on the assignment. Patterns
/// are evaluated in batches with bit-parallel simulation.
///
/// # Panics
///
/// Panics if the circuits disagree in input or output count.
///
/// # Examples
///
/// ```
/// use cirlearn_aig::Aig;
/// use cirlearn_oracle::{evaluate_accuracy, EvalConfig};
///
/// let mut golden = Aig::new();
/// let a = golden.add_input("a");
/// let b = golden.add_input("b");
/// let y = golden.xor(a, b);
/// golden.add_output(y, "y");
///
/// let perfect = golden.clone();
/// let acc = evaluate_accuracy(&golden, &perfect, &EvalConfig { patterns_per_group: 100, ..EvalConfig::default() });
/// assert_eq!(acc.percent(), 100.0);
/// assert!(acc.meets_contest_bar());
/// ```
pub fn evaluate_accuracy(golden: &Aig, candidate: &Aig, config: &EvalConfig) -> Accuracy {
    assert_eq!(
        golden.num_inputs(),
        candidate.num_inputs(),
        "input counts differ"
    );
    assert_eq!(
        golden.num_outputs(),
        candidate.num_outputs(),
        "output counts differ"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = golden.num_inputs();
    let mut hits = 0u64;
    let mut total = 0u64;
    const CHUNK: usize = 4096;
    for ratio in [Some(config.high_ratio), Some(config.low_ratio), None] {
        let mut remaining = config.patterns_per_group;
        while remaining > 0 {
            let take = remaining.min(CHUNK);
            let patterns: Vec<Assignment> = (0..take)
                .map(|_| match ratio {
                    Some(r) => Assignment::random_biased(n, r, &mut rng),
                    None => Assignment::random(n, &mut rng),
                })
                .collect();
            let g = golden.eval_batch(&patterns);
            let c = candidate.eval_batch(&patterns);
            hits += g.iter().zip(&c).filter(|(a, b)| a == b).count() as u64;
            total += take as u64;
            remaining -= take;
        }
    }
    Accuracy { hits, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor2() -> Aig {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y = g.xor(a, b);
        g.add_output(y, "y");
        g
    }

    #[test]
    fn perfect_candidate_scores_100() {
        let g = xor2();
        let acc = evaluate_accuracy(&g, &g.clone(), &EvalConfig::default());
        assert_eq!(acc.hits, acc.total);
        assert!(acc.meets_contest_bar());
        assert_eq!(acc.to_string(), "100.000%");
    }

    #[test]
    fn wrong_candidate_scores_low() {
        let g = xor2();
        let mut bad = Aig::new();
        let a = bad.add_input("a");
        let b = bad.add_input("b");
        let y = bad.and(a, b);
        bad.add_output(y, "y");
        let acc = evaluate_accuracy(&g, &bad, &EvalConfig::default());
        assert!(!acc.meets_contest_bar());
        // XOR and AND agree on 2 of 4 uniform patterns; biased groups
        // shift the exact number, but it must be well below 100%.
        assert!(acc.ratio() < 0.9);
        assert!(acc.ratio() > 0.1);
    }

    #[test]
    fn multi_output_requires_all_to_match() {
        let mut golden = Aig::new();
        let a = golden.add_input("a");
        golden.add_output(a, "y0");
        golden.add_output(!a, "y1");
        // Candidate matches y0 but always gets y1 wrong.
        let mut cand = Aig::new();
        let a2 = cand.add_input("a");
        cand.add_output(a2, "y0");
        cand.add_output(a2, "y1");
        let acc = evaluate_accuracy(&golden, &cand, &EvalConfig::default());
        assert_eq!(acc.hits, 0, "one wrong output spoils the pattern");
    }

    #[test]
    fn biased_groups_catch_skewed_errors() {
        // Candidate differs from golden only on the all-ones minterm
        // of 8 inputs; the high-ratio group finds it far more often.
        let mut golden = Aig::new();
        let inputs = golden.add_inputs("x", 8);
        let all = golden.and_many(&inputs);
        golden.add_output(all, "y");
        let mut cand = Aig::new();
        let _ = cand.add_inputs("x", 8);
        cand.add_output(cirlearn_aig::Edge::FALSE, "y");
        let cfg = EvalConfig {
            patterns_per_group: 10_000,
            ..EvalConfig::default()
        };
        let acc = evaluate_accuracy(&golden, &cand, &cfg);
        // 0.75^8 ≈ 10% of high-ratio patterns hit the bad minterm;
        // uniform patterns almost never do (1/256).
        assert!(acc.ratio() < 0.999);
        assert!(!acc.meets_contest_bar());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = xor2();
        let mut near = Aig::new();
        let a = near.add_input("a");
        let b = near.add_input("b");
        let y = near.or(a, b);
        near.add_output(y, "y");
        let cfg = EvalConfig {
            patterns_per_group: 500,
            ..EvalConfig::default()
        };
        let a1 = evaluate_accuracy(&g, &near, &cfg);
        let a2 = evaluate_accuracy(&g, &near, &cfg);
        assert_eq!(a1, a2);
    }
}
