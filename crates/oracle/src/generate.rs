//! Synthetic benchmark circuit families.
//!
//! The contest's 20 hidden industrial benchmarks fall into four
//! application categories (paper §V). This module generates circuits of
//! each category with realistic port naming, so the whole learning
//! pipeline — name grouping, template matching, support identification,
//! FBDT — is exercised exactly as on the contest cases:
//!
//! * [`neq_case`] — miters of near-identical random logic cones (the
//!   output is 1 only where the two cones disagree),
//! * [`eco_case`] — random patch cones with small per-output support,
//! * [`diag_case`] — comparator predicates over named buses,
//! * [`data_case`] — a linear-arithmetic datapath
//!   `N_z = Σ aᵢ·N_vᵢ + b`.

use cirlearn_aig::{Aig, Edge};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::CircuitOracle;

/// The contest's four application categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Miter structures of non-equivalent logic cones.
    Neq,
    /// Patch or logic difference of ECO problems.
    Eco,
    /// Diagnosis: semantic conditions/expressions over bus variables.
    Diag,
    /// Logic recognition of arithmetic datapaths.
    Data,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Category::Neq => "NEQ",
            Category::Eco => "ECO",
            Category::Diag => "DIAG",
            Category::Data => "DATA",
        };
        f.write_str(s)
    }
}

/// A recorded random-cone recipe: each entry is
/// `(left index, left complement, right index, right complement,
/// is_xor)` over a growing node pool seeded with the cone's inputs.
type ConeRecipe = Vec<(usize, bool, usize, bool, bool)>;

/// Draws a random cone recipe. `xor_ratio` controls the share of XOR
/// gates: AND-only random cones degenerate toward sparse functions
/// (each AND halves the onset), so cones meant to stay *hard* for
/// sampling-based learners need XOR mixed in to keep the function
/// dense and the functional support wide.
fn random_recipe(rng: &mut StdRng, num_leaves: usize, gates: usize, xor_ratio: f64) -> ConeRecipe {
    let mut recipe = Vec::with_capacity(gates);
    // Phase 1 — leaf-covering chain: fold every leaf into a running
    // accumulator so the cone provably depends on its whole support
    // (a fully random recipe tends to drop leaves, collapsing the
    // functional support far below the structural one).
    for i in 1..num_leaves {
        let prev = if i == 1 { 0 } else { num_leaves + i - 2 };
        recipe.push((
            prev,
            rng.gen_bool(0.3),
            i,
            rng.gen_bool(0.3),
            rng.gen_bool(xor_ratio),
        ));
    }
    // Phase 2 — extra random structure on top.
    while recipe.len() < gates {
        let pool = num_leaves + recipe.len();
        // Bias toward recent nodes so the cone gains depth.
        let pick = |rng: &mut StdRng| {
            if rng.gen_bool(0.5) && pool > num_leaves {
                rng.gen_range(num_leaves.saturating_sub(1).min(pool - 1)..pool)
            } else {
                rng.gen_range(0..pool)
            }
        };
        recipe.push((
            pick(rng),
            rng.gen_bool(0.5),
            pick(rng),
            rng.gen_bool(0.5),
            rng.gen_bool(xor_ratio),
        ));
    }
    recipe
}

fn build_recipe(aig: &mut Aig, leaves: &[Edge], recipe: &ConeRecipe) -> Edge {
    let mut pool: Vec<Edge> = leaves.to_vec();
    for &(i, ci, j, cj, is_xor) in recipe {
        let a = pool[i].complement_if(ci);
        let b = pool[j].complement_if(cj);
        let n = if is_xor { aig.xor(a, b) } else { aig.and(a, b) };
        pool.push(n);
    }
    *pool.last().unwrap_or(&Edge::FALSE)
}

/// Flat, non-bussed port names as seen in netlists of random logic
/// (distinct prefixes so name-based grouping finds no spurious buses).
fn flat_input_names(rng: &mut StdRng, count: usize) -> Vec<String> {
    let prefixes = ["n", "u", "w", "sig", "net", "t"];
    (0..count)
        .map(|i| {
            let p = prefixes[rng.gen_range(0..prefixes.len())];
            format!("{p}{}_{i}", rng.gen_range(100..1000))
        })
        .collect()
}

/// Generates an NEQ case: each output is the miter of two cones that
/// differ by a single mutated gate, so the output is 1 on a sparse
/// disagreement region — the shape that makes NEQ benchmarks hard for
/// sampling-based learners.
pub fn neq_case(num_inputs: usize, num_outputs: usize, seed: u64) -> CircuitOracle {
    neq_case_with_support(num_inputs, num_outputs, default_support(num_inputs), seed)
}

/// [`neq_case`] with explicit per-output support size (difficulty knob).
pub fn neq_case_with_support(
    num_inputs: usize,
    num_outputs: usize,
    support: usize,
    seed: u64,
) -> CircuitOracle {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x004E_4551);
    let mut aig = Aig::new();
    let names = flat_input_names(&mut rng, num_inputs);
    let inputs: Vec<Edge> = names.iter().map(|n| aig.add_input(n.clone())).collect();
    for o in 0..num_outputs {
        let k = support.min(num_inputs).max(2);
        let leaves = choose_inputs(&mut rng, &inputs, k);
        let gates = (k * 3).max(8);
        // Wide-support miters get XOR-rich cones so the disagreement
        // region stays spread over the whole support (the paper's hard
        // NEQ cases resist sampling exactly because of this).
        let hard = k > 20;
        let xor_ratio = if hard { 0.5 } else { 0.25 };
        let recipe = random_recipe(&mut rng, k, gates, xor_ratio);
        let cone1 = build_recipe(&mut aig, &leaves, &recipe);
        // Derive the non-equivalent revision. Easy cases flip a single
        // complement bit (a local bug: sparse, learnable disagreement);
        // hard cases re-randomize the extra structure entirely, so the
        // miter is a dense function of the whole support — the shape on
        // which the paper's case_14/18 stay far below the accuracy bar.
        let mut miter = Edge::FALSE;
        for _attempt in 0..16 {
            let mut mutated = recipe.clone();
            if hard {
                for entry in mutated.iter_mut().skip(k - 1) {
                    entry.1 ^= rng.gen_bool(0.5);
                    entry.3 ^= rng.gen_bool(0.5);
                    if rng.gen_bool(0.5) {
                        entry.4 ^= true;
                    }
                }
            } else {
                let g = rng.gen_range(0..mutated.len());
                mutated[g].1 ^= true;
            }
            let cone2 = build_recipe(&mut aig, &leaves, &mutated);
            let candidate = aig.xor(cone1, cone2);
            if candidate != Edge::FALSE {
                miter = candidate;
                if miter_is_nonconstant(&aig, candidate, &mut rng) {
                    break;
                }
            }
        }
        aig.add_output(miter, format!("neq_{o}"));
    }
    CircuitOracle::new(aig)
}

/// Generates an ECO case: independent random patch cones, each with a
/// bounded support — the typical shape of an ECO patch function.
pub fn eco_case(num_inputs: usize, num_outputs: usize, seed: u64) -> CircuitOracle {
    eco_case_with_support(num_inputs, num_outputs, default_support(num_inputs), seed)
}

/// [`eco_case`] with explicit per-output support size.
pub fn eco_case_with_support(
    num_inputs: usize,
    num_outputs: usize,
    support: usize,
    seed: u64,
) -> CircuitOracle {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x45_434F);
    let mut aig = Aig::new();
    let names = flat_input_names(&mut rng, num_inputs);
    let inputs: Vec<Edge> = names.iter().map(|n| aig.add_input(n.clone())).collect();
    for o in 0..num_outputs {
        let k = rng
            .gen_range((support / 2).max(2)..=support.max(3))
            .min(num_inputs);
        let leaves = choose_inputs(&mut rng, &inputs, k);
        let gates = (k * 2).max(6);
        let xor_ratio = if k > 20 { 0.4 } else { 0.15 };
        let recipe = random_recipe(&mut rng, k, gates, xor_ratio);
        let cone = build_recipe(&mut aig, &leaves, &recipe);
        aig.add_output(cone, format!("po_{o}"));
    }
    CircuitOracle::new(aig)
}

/// Generates a DIAG case: every output is a comparator predicate over
/// named buses (`z = N_a ⋈ N_b` or `z = N_a ⋈ const`), the shape the
/// paper's comparator template matches with 100% accuracy.
pub fn diag_case(num_inputs: usize, num_outputs: usize, seed: u64) -> CircuitOracle {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4449_4147);
    let mut aig = Aig::new();
    // Split inputs into buses of width 4..=12 plus leftover scalars.
    let bus_names = ["addr", "data", "cnt", "idx", "len", "tag", "mask", "off"];
    let mut buses: Vec<(String, Vec<Edge>)> = Vec::new();
    let mut remaining = num_inputs;
    let mut b = 0;
    while remaining >= 4 && b < bus_names.len() {
        let width = rng.gen_range(4..=12usize.min(remaining));
        let name = bus_names[b].to_owned();
        // MSB-first naming: name[width-1] .. name[0]; inputs created
        // MSB first so the bus slice reads as N_v directly.
        let edges: Vec<Edge> = (0..width)
            .map(|k| aig.add_input(format!("{name}[{}]", width - 1 - k)))
            .collect();
        buses.push((name, edges));
        remaining -= width;
        b += 1;
    }
    for i in 0..remaining {
        let _scalar = aig.add_input(format!("en_{i}"));
    }
    assert!(!buses.is_empty(), "DIAG case needs at least 4 inputs");

    for o in 0..num_outputs {
        let (_, ref va) = buses[rng.gen_range(0..buses.len())];
        let pred = rng.gen_range(0..6);
        let rhs_is_bus = buses.len() >= 2 && rng.gen_bool(0.5);
        let rhs: Vec<Edge> = if rhs_is_bus {
            loop {
                let (_, ref vb) = buses[rng.gen_range(0..buses.len())];
                if vb != va || buses.len() == 1 {
                    break vb.clone();
                }
            }
        } else {
            let max = (1u64 << va.len().min(16)) - 1;
            let c = rng.gen_range(0..=max);
            aig.const_word(c, va.len())
        };
        let va = va.clone();
        let z = match pred {
            0 => aig.cmp_eq(&va, &rhs),
            1 => aig.cmp_ne(&va, &rhs),
            2 => aig.cmp_ult(&va, &rhs),
            3 => aig.cmp_ule(&va, &rhs),
            4 => aig.cmp_ugt(&va, &rhs),
            _ => aig.cmp_uge(&va, &rhs),
        };
        aig.add_output(z, format!("cond_{o}"));
    }
    CircuitOracle::new(aig)
}

/// Generates a DATA case: the outputs form a bus `z` computing the
/// linear arithmetic `N_z = Σ aᵢ·N_vᵢ + b (mod 2^|z|)` over named input
/// buses — the shape of the paper's linear-arithmetic template.
pub fn data_case(num_inputs: usize, num_outputs: usize, seed: u64) -> CircuitOracle {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4441_5441);
    let mut aig = Aig::new();
    let width = num_outputs;
    let bus_names = ["a", "b", "c", "d", "e", "f", "g", "h"];
    let mut buses: Vec<Vec<Edge>> = Vec::new();
    let mut remaining = num_inputs;
    let mut b = 0;
    while remaining > 0 && b < bus_names.len() {
        let max_w = remaining.min(width.max(2)).min(12);
        let w = if remaining <= 3 {
            remaining
        } else {
            rng.gen_range(2..=max_w.max(2))
        };
        let name = bus_names[b];
        let edges: Vec<Edge> = (0..w)
            .map(|k| aig.add_input(format!("{name}[{}]", w - 1 - k)))
            .collect();
        buses.push(edges);
        remaining -= w;
        b += 1;
    }
    // Any leftover inputs beyond 8 buses become unused scalars.
    for i in 0..remaining {
        let _ = aig.add_input(format!("spare_{i}"));
    }

    let terms: Vec<(i64, Vec<Edge>)> = buses
        .iter()
        .map(|bus| {
            let coef = *[1i64, 1, 2, 3, 5, -1, -2]
                .get(rng.gen_range(0..7))
                .expect("in range");
            (coef, bus.clone())
        })
        .collect();
    let offset = rng.gen_range(-8i64..=8);
    let z = aig.scale_sum(&terms, offset, width);
    for (k, e) in z.iter().enumerate() {
        aig.add_output(*e, format!("z[{}]", width - 1 - k));
    }
    CircuitOracle::new(aig)
}

/// Generates a *mixed* case: bus-comparator outputs interleaved with
/// random-logic cones over the remaining scalar inputs.
///
/// Real designs rarely fall into one clean category; a mixed black box
/// exercises the learner's dispatch — some outputs match templates,
/// the rest go through support identification and the FBDT — within a
/// single run.
pub fn mixed_case(num_inputs: usize, num_outputs: usize, seed: u64) -> CircuitOracle {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4D49_5845);
    assert!(num_inputs >= 12, "mixed cases need at least 12 inputs");
    let mut aig = Aig::new();
    // Two buses over roughly half the inputs.
    let bus_width = (num_inputs / 4).clamp(4, 10);
    let a: Vec<Edge> = (0..bus_width)
        .map(|k| aig.add_input(format!("a[{}]", bus_width - 1 - k)))
        .collect();
    let b: Vec<Edge> = (0..bus_width)
        .map(|k| aig.add_input(format!("b[{}]", bus_width - 1 - k)))
        .collect();
    let scalar_count = num_inputs - 2 * bus_width;
    let scalar_names = flat_input_names(&mut rng, scalar_count);
    let scalars: Vec<Edge> = scalar_names
        .iter()
        .map(|n| aig.add_input(n.clone()))
        .collect();

    for o in 0..num_outputs {
        if o % 2 == 0 {
            // Comparator output.
            let z = match rng.gen_range(0..6) {
                0 => aig.cmp_eq(&a, &b),
                1 => aig.cmp_ne(&a, &b),
                2 => aig.cmp_ult(&a, &b),
                3 => aig.cmp_ule(&a, &b),
                4 => aig.cmp_ugt(&a, &b),
                _ => aig.cmp_uge(&a, &b),
            };
            aig.add_output(z, format!("cond_{o}"));
        } else {
            // Random cone over the scalars.
            let k = scalars.len().min(rng.gen_range(3..=8));
            let leaves = choose_inputs(&mut rng, &scalars, k);
            let recipe = random_recipe(&mut rng, k, (k * 2).max(6), 0.2);
            let cone = build_recipe(&mut aig, &leaves, &recipe);
            aig.add_output(cone, format!("logic_{o}"));
        }
    }
    CircuitOracle::new(aig)
}

/// Generates a case of the given category.
pub fn case(category: Category, num_inputs: usize, num_outputs: usize, seed: u64) -> CircuitOracle {
    match category {
        Category::Neq => neq_case(num_inputs, num_outputs, seed),
        Category::Eco => eco_case(num_inputs, num_outputs, seed),
        Category::Diag => diag_case(num_inputs, num_outputs, seed),
        Category::Data => data_case(num_inputs, num_outputs, seed),
    }
}

/// Checks by random simulation that `edge` takes both values 0 and 1
/// on sampled patterns (mixing uniform and biased blocks) — a miter
/// that is constant in practice would make the case degenerate.
fn miter_is_nonconstant(aig: &Aig, edge: Edge, rng: &mut StdRng) -> bool {
    use cirlearn_logic::SimVector;
    let mut saw_one = false;
    let mut saw_zero = false;
    for bias in [None, Some(0.25), Some(0.75)] {
        let patterns = 512;
        let inputs: Vec<SimVector> = (0..aig.num_inputs())
            .map(|_| match bias {
                None => SimVector::random(patterns, rng),
                Some(p) => SimVector::from_bits((0..patterns).map(|_| rng.gen_bool(p))),
            })
            .collect();
        let values = aig.simulate_nodes(&inputs);
        let mut v = values[edge.node().index()].clone();
        if edge.is_complemented() {
            v.not_assign();
        }
        saw_one |= v.count_ones() > 0;
        saw_zero |= v.count_ones() < v.len();
        if saw_one && saw_zero {
            return true;
        }
    }
    false
}

fn default_support(num_inputs: usize) -> usize {
    (num_inputs / 4).clamp(4, 16)
}

fn choose_inputs(rng: &mut StdRng, inputs: &[Edge], k: usize) -> Vec<Edge> {
    let mut idx: Vec<usize> = (0..inputs.len()).collect();
    // Partial Fisher–Yates.
    for i in 0..k.min(idx.len()) {
        let j = rng.gen_range(i..idx.len());
        idx.swap(i, j);
    }
    idx[..k.min(inputs.len())]
        .iter()
        .map(|&i| inputs[i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Oracle;
    use cirlearn_logic::Assignment;

    #[test]
    fn neq_outputs_are_nonconstant() {
        let mut o = neq_case(20, 3, 1);
        assert_eq!(o.num_inputs(), 20);
        assert_eq!(o.num_outputs(), 3);
        let mut rng = StdRng::seed_from_u64(2);
        let pats: Vec<Assignment> = (0..2000)
            .map(|_| Assignment::random(20, &mut rng))
            .collect();
        let outs = o.query_batch(&pats);
        let ones: usize = outs.iter().flat_map(|r| r.iter()).filter(|&&b| b).count();
        let total = 2000 * 3;
        // Miters must actually fire somewhere and also be falsifiable
        // (constant miters would make the case vacuous).
        assert!(ones > 0, "miter never fires");
        assert!(ones < total, "miter fires everywhere");
    }

    #[test]
    fn eco_supports_are_bounded() {
        let o = eco_case_with_support(40, 5, 8, 3);
        for pos in 0..o.num_outputs() {
            let sup = o.reveal().output_support(pos);
            assert!(sup.len() <= 8, "output {pos} support {}", sup.len());
        }
    }

    #[test]
    fn diag_ports_are_bussed() {
        let o = diag_case(30, 4, 7);
        assert_eq!(o.num_inputs(), 30);
        assert_eq!(o.num_outputs(), 4);
        let bussed = o.input_names().iter().filter(|n| n.contains('[')).count();
        assert!(bussed >= 8, "expected bussed names, got {bussed}");
    }

    #[test]
    fn diag_outputs_are_predicates() {
        // With a single bus and constant comparisons, verify one output
        // against direct integer comparison semantics.
        let mut o = diag_case(8, 3, 11);
        let mut rng = StdRng::seed_from_u64(0);
        // Sanity: query returns stable deterministic answers.
        let p = Assignment::random(8, &mut rng);
        let r1 = o.query(&p);
        let r2 = o.query(&p);
        assert_eq!(r1, r2);
    }

    #[test]
    fn data_case_is_linear() {
        // 2 buses, width-4 output; reconstruct coefficients by probing.
        let mut o = data_case(6, 4, 5);
        let n = o.num_inputs();
        // Find bus variable positions from names: a[?], b[?] MSB-first.
        let names = o.input_names().to_vec();
        let mut a_bus: Vec<(i32, usize)> = Vec::new();
        let mut b_bus: Vec<(i32, usize)> = Vec::new();
        for (i, name) in names.iter().enumerate() {
            if let Some(rest) = name.strip_prefix("a[") {
                a_bus.push((rest.trim_end_matches(']').parse().expect("bit"), i));
            } else if let Some(rest) = name.strip_prefix("b[") {
                b_bus.push((rest.trim_end_matches(']').parse().expect("bit"), i));
            }
        }
        a_bus.sort_by_key(|&(bit, _)| std::cmp::Reverse(bit));
        b_bus.sort_by_key(|&(bit, _)| std::cmp::Reverse(bit));

        let read_z =
            |out: &[bool]| -> u64 { out.iter().fold(0u64, |acc, &bit| acc << 1 | bit as u64) };
        let zeros = Assignment::zeros(n);
        let base = read_z(&o.query(&zeros)); // = b mod 16

        // Setting a=1 adds coefficient ca once.
        let mut a1 = Assignment::zeros(n);
        a1.set(
            cirlearn_logic::Var::new(a_bus.last().expect("bus").1 as u32),
            true,
        );
        let ca = (read_z(&o.query(&a1)) + 16 - base) % 16;

        // Then a=2 must add 2*ca.
        let mut a2 = Assignment::zeros(n);
        if a_bus.len() >= 2 {
            a2.set(
                cirlearn_logic::Var::new(a_bus[a_bus.len() - 2].1 as u32),
                true,
            );
            let got = (read_z(&o.query(&a2)) + 16 - base) % 16;
            assert_eq!(got, ca * 2 % 16, "linearity in bus a");
        }
        // And b bus likewise behaves linearly.
        let mut b1 = Assignment::zeros(n);
        b1.set(
            cirlearn_logic::Var::new(b_bus.last().expect("bus").1 as u32),
            true,
        );
        let cb = (read_z(&o.query(&b1)) + 16 - base) % 16;
        let mut ab = Assignment::zeros(n);
        ab.set(
            cirlearn_logic::Var::new(a_bus.last().expect("bus").1 as u32),
            true,
        );
        ab.set(
            cirlearn_logic::Var::new(b_bus.last().expect("bus").1 as u32),
            true,
        );
        let got = (read_z(&o.query(&ab)) + 16 - base) % 16;
        assert_eq!(got, (ca + cb) % 16, "superposition across buses");
    }

    #[test]
    fn generators_are_deterministic() {
        for cat in [Category::Neq, Category::Eco, Category::Diag, Category::Data] {
            let o1 = case(cat, 24, 4, 99);
            let o2 = case(cat, 24, 4, 99);
            assert_eq!(o1.input_names(), o2.input_names(), "{cat}");
            assert_eq!(o1.reveal().gate_count(), o2.reveal().gate_count(), "{cat}");
        }
    }

    #[test]
    fn port_counts_match_request() {
        for cat in [Category::Neq, Category::Eco, Category::Diag, Category::Data] {
            let o = case(cat, 33, 5, 1);
            assert_eq!(o.num_inputs(), 33, "{cat}");
            assert_eq!(o.num_outputs(), 5, "{cat}");
        }
    }
}

#[cfg(test)]
mod mixed_tests {
    use super::*;
    use crate::Oracle;

    #[test]
    fn mixed_case_interleaves_categories() {
        let o = mixed_case(24, 4, 9);
        assert_eq!(o.num_inputs(), 24);
        assert_eq!(o.num_outputs(), 4);
        assert!(o.output_names()[0].starts_with("cond_"));
        assert!(o.output_names()[1].starts_with("logic_"));
        // Comparator outputs read the buses; logic outputs only scalars.
        let sup_cmp = o.reveal().output_support(0);
        let sup_logic = o.reveal().output_support(1);
        assert!(sup_cmp.iter().all(|&p| p < 12), "comparator uses buses");
        assert!(sup_logic.iter().all(|&p| p >= 12), "cone uses scalars");
    }
}
