//! Deterministic fault injection for chaos-testing the learning
//! pipeline.
//!
//! [`FaultyOracle`] wraps any [`Oracle`] and injects faults according
//! to a [`FaultSchedule`]: crash-after-N, hangs (surfaced as watchdog
//! timeouts), malformed answers, and silent bit flips. Schedules are
//! either written out explicitly or generated from a seed, so a chaos
//! run is exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use cirlearn_logic::Assignment;
//! use cirlearn_oracle::{generate, FaultKind, FaultSchedule, FaultyOracle, Oracle};
//!
//! let schedule = FaultSchedule::new().at(1, FaultKind::Malformed);
//! let mut oracle = FaultyOracle::new(generate::eco_case(8, 1, 3), schedule);
//! assert!(oracle.try_query(&Assignment::zeros(8)).is_ok()); // slot 0
//! assert!(oracle.try_query(&Assignment::zeros(8)).is_err()); // slot 1: injected
//! assert!(oracle.try_query(&Assignment::zeros(8)).is_ok()); // slot 2
//! ```

use std::collections::BTreeMap;
use std::time::Duration;

use cirlearn_logic::Assignment;
use cirlearn_telemetry::json::Json;

use crate::oracle::{Oracle, OracleError};
use crate::resilient::Respawn;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The black box dies: this and every later query fails with
    /// [`OracleError::Died`] until the oracle is respawned.
    Crash,
    /// The black box hangs on this query; surfaced as the watchdog
    /// deadline firing ([`OracleError::Timeout`]).
    Hang,
    /// The black box answers garbage ([`OracleError::Malformed`]).
    Malformed,
    /// The black box answers, but with one output bit silently flipped
    /// — no error is raised; this models undetectable corruption.
    BitFlip,
}

/// A deterministic schedule mapping query slots to injected faults.
///
/// Slots count every [`Oracle::try_query`] call served by the
/// [`FaultyOracle`] (including calls that fault), so a schedule reads
/// as "the N-th query the learner issues misbehaves".
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    faults: BTreeMap<u64, FaultKind>,
}

impl FaultSchedule {
    /// An empty schedule (no faults).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Injects `kind` at query slot `slot` (builder style).
    #[must_use]
    pub fn at(mut self, slot: u64, kind: FaultKind) -> Self {
        self.faults.insert(slot, kind);
        self
    }

    /// A seeded random schedule: about `count` faults spread uniformly
    /// over the first `horizon` query slots, with kinds drawn from
    /// `kinds`. Identical seeds produce identical schedules.
    pub fn random(seed: u64, horizon: u64, count: usize, kinds: &[FaultKind]) -> Self {
        let mut schedule = FaultSchedule::new();
        if horizon == 0 || kinds.is_empty() {
            return schedule;
        }
        let mut state = seed ^ 0x5EED_FA17;
        let mut next = move || {
            // SplitMix64 step, same mixer the retry jitter uses.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..count {
            let slot = next() % horizon;
            let kind = kinds[(next() % kinds.len() as u64) as usize];
            schedule.faults.insert(slot, kind);
        }
        schedule
    }

    /// The number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Counts of faults actually injected, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Crashes injected.
    pub crashes: u64,
    /// Hangs (timeouts) injected.
    pub hangs: u64,
    /// Malformed answers injected.
    pub malformed: u64,
    /// Silent bit flips injected.
    pub bit_flips: u64,
}

/// An oracle wrapper that injects faults from a [`FaultSchedule`].
///
/// After an injected [`FaultKind::Crash`] the oracle stays dead —
/// every query errors — until [`Respawn::respawn`] is called, which
/// revives it (and respawns the inner oracle, if it needs that too).
#[derive(Debug)]
pub struct FaultyOracle<O> {
    inner: O,
    schedule: FaultSchedule,
    served: u64,
    crashed: bool,
    injected: InjectedFaults,
}

impl<O: Oracle> FaultyOracle<O> {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: O, schedule: FaultSchedule) -> Self {
        FaultyOracle {
            inner,
            schedule,
            served: 0,
            crashed: false,
            injected: InjectedFaults::default(),
        }
    }

    /// Counts of faults injected so far, by kind.
    pub fn injected(&self) -> InjectedFaults {
        self.injected
    }

    /// Whether the oracle is currently crashed (awaiting respawn).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    fn serve(&mut self, input: &Assignment) -> Result<Vec<bool>, OracleError> {
        if self.crashed {
            return Err(OracleError::Died(
                "injected crash: black box is down until respawn".into(),
            ));
        }
        let slot = self.served;
        self.served += 1;
        match self.schedule.faults.get(&slot).copied() {
            None => self.inner.try_query(input),
            Some(FaultKind::Crash) => {
                self.crashed = true;
                self.injected.crashes += 1;
                Err(OracleError::Died(format!(
                    "injected crash at query slot {slot}"
                )))
            }
            Some(FaultKind::Hang) => {
                self.injected.hangs += 1;
                Err(OracleError::Timeout(Duration::from_secs(0)))
            }
            Some(FaultKind::Malformed) => {
                self.injected.malformed += 1;
                Err(OracleError::Malformed(format!(
                    "injected garbage at query slot {slot}"
                )))
            }
            Some(FaultKind::BitFlip) => {
                let mut bits = self.inner.try_query(input)?;
                if !bits.is_empty() {
                    let victim = (slot % bits.len() as u64) as usize;
                    // panic-ok: `victim < bits.len()` by the modulo.
                    bits[victim] = !bits[victim];
                }
                self.injected.bit_flips += 1;
                Ok(bits)
            }
        }
    }
}

impl<O: Oracle> Oracle for FaultyOracle<O> {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }

    fn input_names(&self) -> &[String] {
        self.inner.input_names()
    }

    fn output_names(&self) -> &[String] {
        self.inner.output_names()
    }

    /// # Panics
    ///
    /// Panics on injected faults; chaos tests should drive the fallible
    /// [`Oracle::try_query`] path (directly or via a
    /// [`ResilientOracle`](crate::ResilientOracle)).
    fn query(&mut self, input: &Assignment) -> Vec<bool> {
        self.serve(input)
            // panic-ok: documented `# Panics` contract — the infallible
            // entry point cannot swallow an injected fault; chaos tests
            // drive `try_query` instead.
            .unwrap_or_else(|e| panic!("injected fault was not handled: {e}"))
    }

    fn try_query(&mut self, input: &Assignment) -> Result<Vec<bool>, OracleError> {
        self.serve(input)
    }

    fn queries(&self) -> u64 {
        self.inner.queries()
    }

    /// Persists the injector's position in its fault schedule (the
    /// served-slot counter plus crash/injection state) and nests the
    /// inner oracle's state, so a resumed chaos run replays the exact
    /// remaining schedule.
    fn checkpoint_state(&self) -> Option<Json> {
        let mut fields = vec![
            ("kind", Json::from("faulty")),
            ("served", Json::from(self.served)),
            ("crashed", Json::Bool(self.crashed)),
            (
                "injected",
                Json::object([
                    ("crashes", Json::from(self.injected.crashes)),
                    ("hangs", Json::from(self.injected.hangs)),
                    ("malformed", Json::from(self.injected.malformed)),
                    ("bit_flips", Json::from(self.injected.bit_flips)),
                ]),
            ),
        ];
        if let Some(inner) = self.inner.checkpoint_state() {
            fields.push(("inner", inner));
        }
        Some(Json::object(fields))
    }

    fn restore_state(&mut self, state: &Json) -> Result<(), OracleError> {
        let field = |name: &str| {
            state
                .get(name)
                .ok_or_else(|| OracleError::State(format!("faulty oracle state missing `{name}`")))
        };
        if field("kind")?.as_str() != Some("faulty") {
            return Err(OracleError::State(
                "state was not captured from a FaultyOracle".into(),
            ));
        }
        let served = field("served")?
            .as_u64()
            .ok_or_else(|| OracleError::State("faulty `served` is not a count".into()))?;
        let crashed = match field("crashed")? {
            Json::Bool(b) => *b,
            _ => return Err(OracleError::State("faulty `crashed` is not a bool".into())),
        };
        let injected = field("injected")?;
        let count = |name: &str| {
            injected
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| OracleError::State(format!("faulty injected `{name}` missing")))
        };
        self.injected = InjectedFaults {
            crashes: count("crashes")?,
            hangs: count("hangs")?,
            malformed: count("malformed")?,
            bit_flips: count("bit_flips")?,
        };
        self.served = served;
        self.crashed = crashed;
        if let Some(inner) = state.get("inner") {
            self.inner.restore_state(inner)?;
        }
        Ok(())
    }
}

impl<O: Oracle + Respawn> Respawn for FaultyOracle<O> {
    /// Revives an injected crash and respawns the inner oracle.
    fn respawn(&mut self) -> Result<(), OracleError> {
        self.crashed = false;
        self.inner.respawn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn crash_is_sticky_until_respawn() {
        let schedule = FaultSchedule::new().at(1, FaultKind::Crash);
        let mut o = FaultyOracle::new(generate::eco_case(8, 1, 9), schedule);
        let z = Assignment::zeros(8);
        assert!(o.try_query(&z).is_ok());
        assert!(matches!(o.try_query(&z), Err(OracleError::Died(_))));
        assert!(o.is_crashed());
        assert!(matches!(o.try_query(&z), Err(OracleError::Died(_))));
        o.respawn().expect("circuit oracle respawn is a no-op");
        assert!(!o.is_crashed());
        assert!(o.try_query(&z).is_ok());
        assert_eq!(o.injected().crashes, 1);
    }

    #[test]
    fn bit_flip_corrupts_silently() {
        let schedule = FaultSchedule::new().at(0, FaultKind::BitFlip);
        let inner = generate::eco_case(8, 1, 9);
        let mut clean = generate::eco_case(8, 1, 9);
        let mut o = FaultyOracle::new(inner, schedule);
        let z = Assignment::zeros(8);
        let corrupted = o.try_query(&z).expect("bit flips are silent");
        let truth = clean.try_query(&z).expect("in-process");
        assert_ne!(corrupted, truth, "exactly one bit must differ");
        // Subsequent queries are clean again.
        assert_eq!(o.try_query(&z).expect("clean"), truth);
        assert_eq!(o.injected().bit_flips, 1);
    }

    #[test]
    fn seeded_schedules_reproduce() {
        let kinds = [FaultKind::Hang, FaultKind::Malformed, FaultKind::BitFlip];
        let a = FaultSchedule::random(99, 1000, 10, &kinds);
        let b = FaultSchedule::random(99, 1000, 10, &kinds);
        assert_eq!(a.faults, b.faults);
        assert!(!a.is_empty());
        assert!(a.len() <= 10);
        let c = FaultSchedule::random(100, 1000, 10, &kinds);
        assert_ne!(a.faults, c.faults, "different seeds should differ");
    }

    #[test]
    fn checkpointed_state_resumes_the_schedule_in_lockstep() {
        let kinds = [FaultKind::Malformed, FaultKind::BitFlip, FaultKind::Hang];
        let schedule = FaultSchedule::random(7, 40, 12, &kinds);
        let mut original = FaultyOracle::new(generate::eco_case(8, 1, 9), schedule.clone());
        let z = Assignment::zeros(8);
        for _ in 0..17 {
            let _ = original.try_query(&z);
        }
        let state = original.checkpoint_state().expect("faulty state exists");

        // A fresh oracle restored from the checkpoint must replay the
        // exact remaining schedule, matching the original step for step.
        let mut resumed = FaultyOracle::new(generate::eco_case(8, 1, 9), schedule);
        resumed.restore_state(&state).expect("state round-trips");
        assert_eq!(resumed.injected(), original.injected());
        for step in 0..40 {
            let a = original.try_query(&z);
            let b = resumed.try_query(&z);
            assert_eq!(a.is_ok(), b.is_ok(), "step {step} diverged");
            if let (Ok(a), Ok(b)) = (a, b) {
                assert_eq!(a, b, "step {step} answers diverged");
            }
        }
        assert_eq!(resumed.injected(), original.injected());
    }

    #[test]
    fn restore_rejects_foreign_and_malformed_state() {
        let mut o = FaultyOracle::new(generate::eco_case(8, 1, 9), FaultSchedule::new());
        let foreign = Json::object([("kind", Json::from("resilient"))]);
        assert!(matches!(
            o.restore_state(&foreign),
            Err(OracleError::State(_))
        ));
        let malformed = Json::object([
            ("kind", Json::from("faulty")),
            ("served", Json::from("not a number")),
        ]);
        assert!(matches!(
            o.restore_state(&malformed),
            Err(OracleError::State(_))
        ));
        // A failed restore leaves the oracle usable.
        assert!(o.try_query(&Assignment::zeros(8)).is_ok());
    }

    #[test]
    fn fault_slots_count_faulted_queries_too() {
        let schedule = FaultSchedule::new()
            .at(0, FaultKind::Malformed)
            .at(1, FaultKind::Malformed);
        let mut o = FaultyOracle::new(generate::eco_case(8, 1, 9), schedule);
        let z = Assignment::zeros(8);
        assert!(o.try_query(&z).is_err());
        assert!(o.try_query(&z).is_err());
        assert!(o.try_query(&z).is_ok());
        assert_eq!(o.injected().malformed, 2);
        // Underlying query accounting only counts served queries.
        assert_eq!(o.queries(), 1);
    }
}
