//! Driving an external executable as the black box.
//!
//! The contest distributed its IO generators as opaque executables.
//! [`ProcessOracle`] speaks a minimal line protocol with any such
//! program, so the learner can run against real black boxes — not just
//! the in-process [`CircuitOracle`](crate::CircuitOracle):
//!
//! ```text
//! --> 0110...      one line per query: |I| characters of 0/1
//! <-- 1001...      one line per answer: |O| characters of 0/1
//! ```
//!
//! The child is spawned once and queried over stdin/stdout; port names
//! and widths are supplied by the caller (the contest shipped them in a
//! side file).

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use cirlearn_logic::Assignment;

use crate::Oracle;

/// Errors from spawning or talking to the external black box.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProcessOracleError {
    /// The child process could not be started.
    Spawn(std::io::Error),
    /// The child closed its pipes or an I/O error occurred.
    Io(std::io::Error),
    /// The child answered with the wrong number of output bits.
    BadAnswer(String),
}

impl std::fmt::Display for ProcessOracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcessOracleError::Spawn(e) => write!(f, "spawning black box: {e}"),
            ProcessOracleError::Io(e) => write!(f, "talking to black box: {e}"),
            ProcessOracleError::BadAnswer(l) => write!(f, "malformed black-box answer: {l}"),
        }
    }
}

impl std::error::Error for ProcessOracleError {}

/// A black-box oracle backed by an external process.
///
/// # Examples
///
/// Using a tiny shell script as the unknown system (output = first
/// input bit):
///
/// ```no_run
/// use cirlearn_oracle::{Oracle, ProcessOracle};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut oracle = ProcessOracle::spawn(
///     "./my_blackbox",
///     &[],
///     vec!["a".into(), "b".into()],
///     vec!["y".into()],
/// )?;
/// let pattern = cirlearn_logic::Assignment::zeros(2);
/// let out = oracle.query(&pattern);
/// assert_eq!(out.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProcessOracle {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    input_names: Vec<String>,
    output_names: Vec<String>,
    queries: u64,
}

impl ProcessOracle {
    /// Spawns `program` with `args` and wires up the query protocol.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessOracleError::Spawn`] when the program cannot be
    /// started.
    pub fn spawn(
        program: &str,
        args: &[&str],
        input_names: Vec<String>,
        output_names: Vec<String>,
    ) -> Result<Self, ProcessOracleError> {
        let mut child = Command::new(program)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(ProcessOracleError::Spawn)?;
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        Ok(ProcessOracle {
            child,
            stdin,
            stdout,
            input_names,
            output_names,
            queries: 0,
        })
    }

    /// Sends one query, propagating protocol errors.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed answers are reported; the infallible
    /// [`Oracle::query`] wrapper panics instead (the black box dying
    /// mid-run is unrecoverable for a learning session anyway).
    pub fn try_query(&mut self, input: &Assignment) -> Result<Vec<bool>, ProcessOracleError> {
        assert_eq!(input.len(), self.input_names.len(), "wrong input width");
        let line: String = input.iter().map(|b| if b { '1' } else { '0' }).collect();
        writeln!(self.stdin, "{line}").map_err(ProcessOracleError::Io)?;
        self.stdin.flush().map_err(ProcessOracleError::Io)?;
        let mut answer = String::new();
        self.stdout
            .read_line(&mut answer)
            .map_err(ProcessOracleError::Io)?;
        let bits: Vec<bool> = answer
            .trim()
            .chars()
            .map(|c| match c {
                '0' => Ok(false),
                '1' => Ok(true),
                _ => Err(()),
            })
            .collect::<Result<_, _>>()
            .map_err(|_| ProcessOracleError::BadAnswer(answer.clone()))?;
        if bits.len() != self.output_names.len() {
            return Err(ProcessOracleError::BadAnswer(answer));
        }
        self.queries += 1;
        Ok(bits)
    }
}

impl Drop for ProcessOracle {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Oracle for ProcessOracle {
    fn num_inputs(&self) -> usize {
        self.input_names.len()
    }

    fn num_outputs(&self) -> usize {
        self.output_names.len()
    }

    fn input_names(&self) -> &[String] {
        &self.input_names
    }

    fn output_names(&self) -> &[String] {
        &self.output_names
    }

    /// # Panics
    ///
    /// Panics if the child process violates the protocol; use
    /// [`ProcessOracle::try_query`] for a fallible call.
    fn query(&mut self, input: &Assignment) -> Vec<bool> {
        self.try_query(input)
            .unwrap_or_else(|e| panic!("black-box process failed: {e}"))
    }

    fn queries(&self) -> u64 {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_logic::Var;

    /// A shell one-liner black box: y0 = first bit, y1 = NOT first bit.
    fn spawn_sh() -> ProcessOracle {
        ProcessOracle::spawn(
            "sh",
            &[
                "-c",
                r#"while read line; do
                       first=$(printf %.1s "$line")
                       if [ "$first" = 1 ]; then echo 10; else echo 01; fi
                   done"#,
            ],
            vec!["a".into(), "b".into(), "c".into()],
            vec!["y0".into(), "y1".into()],
        )
        .expect("sh is available")
    }

    #[test]
    fn round_trips_queries() {
        let mut o = spawn_sh();
        assert_eq!(o.num_inputs(), 3);
        assert_eq!(o.num_outputs(), 2);
        let zeros = Assignment::zeros(3);
        assert_eq!(o.query(&zeros), vec![false, true]);
        let mut ones = Assignment::zeros(3);
        ones.set(Var::new(0), true);
        assert_eq!(o.query(&ones), vec![true, false]);
        assert_eq!(o.queries(), 2);
    }

    #[test]
    fn batch_uses_single_process() {
        let mut o = spawn_sh();
        let patterns: Vec<Assignment> = (0..8)
            .map(|k| {
                let mut a = Assignment::zeros(3);
                a.set(Var::new(0), k % 2 == 1);
                a
            })
            .collect();
        let outs = o.query_batch(&patterns);
        for (k, row) in outs.iter().enumerate() {
            assert_eq!(row[0], k % 2 == 1);
        }
        assert_eq!(o.queries(), 8);
    }

    #[test]
    fn spawn_failure_is_reported() {
        let r = ProcessOracle::spawn(
            "/nonexistent/black_box_binary",
            &[],
            vec!["a".into()],
            vec!["y".into()],
        );
        assert!(matches!(r, Err(ProcessOracleError::Spawn(_))));
    }
}
