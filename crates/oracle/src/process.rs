//! Driving an external executable as the black box.
//!
//! The contest distributed its IO generators as opaque executables.
//! [`ProcessOracle`] speaks a minimal line protocol with any such
//! program, so the learner can run against real black boxes — not just
//! the in-process [`CircuitOracle`](crate::CircuitOracle):
//!
//! ```text
//! --> 0110...      one line per query: |I| characters of 0/1
//! <-- 1001...      one line per answer: |O| characters of 0/1
//! ```
//!
//! The child is spawned once and queried over stdin/stdout; port names
//! and widths are supplied by the caller (the contest shipped them in a
//! side file).
//!
//! Answers are pumped through a dedicated reader thread, so queries can
//! carry a watchdog deadline ([`ProcessOracle::set_read_timeout`]): a
//! hung black box surfaces as [`OracleError::Timeout`] instead of
//! blocking the learning session forever. After a timeout the answer
//! stream is out of sync with the query stream, so the transport must
//! be [respawned](ProcessOracle::respawn) before further queries — the
//! [`ResilientOracle`](crate::ResilientOracle) wrapper automates that.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::time::Duration;

use cirlearn_logic::Assignment;

use crate::oracle::OracleError;
use crate::resilient::Respawn;
use crate::Oracle;

/// Errors from spawning or talking to the external black box.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProcessOracleError {
    /// The child process could not be started, or its pipes could not
    /// be wired up.
    Spawn(std::io::Error),
    /// The child closed its pipes or an I/O error occurred.
    Io(std::io::Error),
    /// The child answered with the wrong number of output bits.
    BadAnswer(String),
    /// No answer arrived within the watchdog read deadline.
    Timeout(Duration),
}

impl std::fmt::Display for ProcessOracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcessOracleError::Spawn(e) => write!(f, "spawning black box: {e}"),
            ProcessOracleError::Io(e) => write!(f, "talking to black box: {e}"),
            ProcessOracleError::BadAnswer(l) => write!(f, "malformed black-box answer: {l}"),
            ProcessOracleError::Timeout(d) => write!(
                f,
                "black box answered nothing within {:.3}s",
                d.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for ProcessOracleError {}

impl From<ProcessOracleError> for OracleError {
    fn from(e: ProcessOracleError) -> OracleError {
        match e {
            ProcessOracleError::Spawn(io) | ProcessOracleError::Io(io) => {
                if io.kind() == std::io::ErrorKind::UnexpectedEof {
                    OracleError::Died(io.to_string())
                } else {
                    OracleError::Io(io)
                }
            }
            ProcessOracleError::BadAnswer(l) => OracleError::Malformed(l),
            ProcessOracleError::Timeout(d) => OracleError::Timeout(d),
        }
    }
}

/// A black-box oracle backed by an external process.
///
/// # Examples
///
/// Using a tiny shell script as the unknown system (output = first
/// input bit):
///
/// ```no_run
/// use cirlearn_oracle::{Oracle, ProcessOracle};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut oracle = ProcessOracle::spawn(
///     "./my_blackbox",
///     &[],
///     vec!["a".into(), "b".into()],
///     vec!["y".into()],
/// )?;
/// let pattern = cirlearn_logic::Assignment::zeros(2);
/// let out = oracle.query(&pattern);
/// assert_eq!(out.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProcessOracle {
    program: String,
    args: Vec<String>,
    transport: Transport,
    input_names: Vec<String>,
    output_names: Vec<String>,
    read_timeout: Option<Duration>,
    queries: u64,
}

/// One incarnation of the child process: pipes plus the reader thread
/// pumping answer lines. Replaced wholesale on respawn.
#[derive(Debug)]
struct Transport {
    child: Child,
    stdin: ChildStdin,
    answers: Receiver<std::io::Result<String>>,
}

impl Transport {
    fn open(program: &str, args: &[String]) -> Result<Transport, ProcessOracleError> {
        // blocking-ok: spawning the black-box process IS this oracle's
        // transport; it happens once per (re)connect, not per query.
        let mut child = Command::new(program)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(ProcessOracleError::Spawn)?;
        let Some(stdin) = child.stdin.take() else {
            let _ = child.kill();
            // blocking-ok: reaping a just-killed child on the failure
            // path of a once-per-connect setup.
            let _ = child.wait();
            return Err(ProcessOracleError::Spawn(std::io::Error::other(
                "child stdin was not piped",
            )));
        };
        let Some(stdout) = child.stdout.take() else {
            let _ = child.kill();
            // blocking-ok: reaping a just-killed child on the failure
            // path of a once-per-connect setup.
            let _ = child.wait();
            return Err(ProcessOracleError::Spawn(std::io::Error::other(
                "child stdout was not piped",
            )));
        };
        // The reader thread owns the stdout pipe; it exits when the
        // child closes its end (EOF, crash, or our kill on drop) or
        // when this Transport is dropped (send fails on a closed
        // channel). It never outlives the child by more than one read.
        let (tx, answers) = std::sync::mpsc::channel();
        std::thread::Builder::new()
            .name("oracle-reader".into())
            .spawn(move || {
                let mut reader = BufReader::new(stdout);
                loop {
                    let mut line = String::new();
                    // blocking-ok: this is the dedicated reader thread
                    // whose whole job is to block on the child's
                    // stdout so the query path can time out instead.
                    let send = match reader.read_line(&mut line) {
                        Ok(0) => break, // EOF: child is gone.
                        Ok(_) => tx.send(Ok(line)),
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            break;
                        }
                    };
                    if send.is_err() {
                        break; // Receiver dropped: transport replaced.
                    }
                }
            })
            .map_err(ProcessOracleError::Spawn)?;
        Ok(Transport {
            child,
            stdin,
            answers,
        })
    }

    /// Reads one answer line, honouring the optional deadline.
    fn read_answer(&mut self, timeout: Option<Duration>) -> Result<String, ProcessOracleError> {
        let received = match timeout {
            // blocking-ok: waiting for the black box's answer IS the
            // oracle query; the deadline bounds the wait.
            Some(deadline) => match self.answers.recv_timeout(deadline) {
                Ok(r) => r,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(ProcessOracleError::Timeout(deadline))
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(ProcessOracleError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "black box closed its answer stream",
                    )))
                }
            },
            // blocking-ok: deliberately unbounded wait when the caller
            // configured no deadline — the black box is the clock.
            None => match self.answers.recv() {
                Ok(r) => r,
                Err(_) => {
                    return Err(ProcessOracleError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "black box closed its answer stream",
                    )))
                }
            },
        };
        received.map_err(ProcessOracleError::Io)
    }

    fn shutdown(&mut self) {
        let _ = self.child.kill();
        // blocking-ok: reaping a just-killed child once per teardown —
        // no zombies across respawns.
        let _ = self.child.wait();
    }
}

impl Drop for Transport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ProcessOracle {
    /// Spawns `program` with `args` and wires up the query protocol.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessOracleError::Spawn`] when the program cannot be
    /// started or its stdio pipes cannot be wired up.
    pub fn spawn(
        program: &str,
        args: &[&str],
        input_names: Vec<String>,
        output_names: Vec<String>,
    ) -> Result<Self, ProcessOracleError> {
        let args: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        let transport = Transport::open(program, &args)?;
        Ok(ProcessOracle {
            program: program.to_owned(),
            args,
            transport,
            input_names,
            output_names,
            read_timeout: None,
            queries: 0,
        })
    }

    /// Sets the watchdog read deadline for every subsequent query
    /// (`None` waits forever, the default).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.read_timeout = timeout;
    }

    /// The configured watchdog read deadline.
    pub fn read_timeout(&self) -> Option<Duration> {
        self.read_timeout
    }

    /// Whether the child process is still running.
    pub fn is_alive(&mut self) -> bool {
        matches!(self.transport.child.try_wait(), Ok(None))
    }

    /// Kills the current child (reaping it) and starts a fresh one with
    /// the same program and arguments.
    ///
    /// The query counter is preserved: respawns replace the transport,
    /// not the accounting. Callers are responsible for checking that
    /// the new incarnation computes the same function (see
    /// [`ResilientOracle`](crate::ResilientOracle)'s replay probe).
    ///
    /// # Errors
    ///
    /// Returns [`ProcessOracleError::Spawn`] when the replacement child
    /// cannot be started; the oracle is left without a live child.
    pub fn respawn_process(&mut self) -> Result<(), ProcessOracleError> {
        self.transport.shutdown();
        self.transport = Transport::open(&self.program, &self.args)?;
        Ok(())
    }

    /// Sends one query, propagating protocol errors.
    ///
    /// # Errors
    ///
    /// I/O failures, watchdog timeouts and malformed answers are
    /// reported; the infallible [`Oracle::query`] wrapper panics
    /// instead. After a [`ProcessOracleError::Timeout`] the answer
    /// stream is desynchronized: call
    /// [`ProcessOracle::respawn_process`] before querying again.
    pub fn try_query_process(
        &mut self,
        input: &Assignment,
    ) -> Result<Vec<bool>, ProcessOracleError> {
        // panic-ok: entry contract guard, once per query — a wrong
        // width is a caller bug, not a transport fault.
        assert_eq!(input.len(), self.input_names.len(), "wrong input width");
        let line: String = input.iter().map(|b| if b { '1' } else { '0' }).collect();
        writeln!(self.transport.stdin, "{line}").map_err(ProcessOracleError::Io)?;
        self.transport
            .stdin
            .flush()
            .map_err(ProcessOracleError::Io)?;
        let answer = self.transport.read_answer(self.read_timeout)?;
        let bits: Vec<bool> = answer
            .trim()
            .chars()
            .map(|c| match c {
                '0' => Ok(false),
                '1' => Ok(true),
                _ => Err(()),
            })
            .collect::<Result<_, _>>()
            .map_err(|_| ProcessOracleError::BadAnswer(answer.clone()))?;
        if bits.len() != self.output_names.len() {
            return Err(ProcessOracleError::BadAnswer(answer));
        }
        self.queries += 1;
        Ok(bits)
    }
}

impl Oracle for ProcessOracle {
    fn num_inputs(&self) -> usize {
        self.input_names.len()
    }

    fn num_outputs(&self) -> usize {
        self.output_names.len()
    }

    fn input_names(&self) -> &[String] {
        &self.input_names
    }

    fn output_names(&self) -> &[String] {
        &self.output_names
    }

    /// # Panics
    ///
    /// Panics if the child process violates the protocol; use
    /// [`Oracle::try_query`] for a fallible call.
    fn query(&mut self, input: &Assignment) -> Vec<bool> {
        self.try_query_process(input)
            // panic-ok: documented `# Panics` contract — the infallible
            // entry point cannot absorb transport failures; fallible
            // callers use `try_query`.
            .unwrap_or_else(|e| panic!("black-box process failed: {e}"))
    }

    fn try_query(&mut self, input: &Assignment) -> Result<Vec<bool>, OracleError> {
        self.try_query_process(input).map_err(OracleError::from)
    }

    fn queries(&self) -> u64 {
        self.queries
    }
}

impl Respawn for ProcessOracle {
    fn respawn(&mut self) -> Result<(), OracleError> {
        self.respawn_process().map_err(OracleError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_logic::Var;

    /// A shell one-liner black box: y0 = first bit, y1 = NOT first bit.
    fn spawn_sh() -> ProcessOracle {
        ProcessOracle::spawn(
            "sh",
            &[
                "-c",
                r#"while read line; do
                       first=$(printf %.1s "$line")
                       if [ "$first" = 1 ]; then echo 10; else echo 01; fi
                   done"#,
            ],
            vec!["a".into(), "b".into(), "c".into()],
            vec!["y0".into(), "y1".into()],
        )
        .expect("sh is available")
    }

    #[test]
    fn round_trips_queries() {
        let mut o = spawn_sh();
        assert_eq!(o.num_inputs(), 3);
        assert_eq!(o.num_outputs(), 2);
        let zeros = Assignment::zeros(3);
        assert_eq!(o.query(&zeros), vec![false, true]);
        let mut ones = Assignment::zeros(3);
        ones.set(Var::new(0), true);
        assert_eq!(o.query(&ones), vec![true, false]);
        assert_eq!(o.queries(), 2);
    }

    #[test]
    fn batch_uses_single_process() {
        let mut o = spawn_sh();
        let patterns: Vec<Assignment> = (0..8)
            .map(|k| {
                let mut a = Assignment::zeros(3);
                a.set(Var::new(0), k % 2 == 1);
                a
            })
            .collect();
        let outs = o.query_batch(&patterns);
        for (k, row) in outs.iter().enumerate() {
            assert_eq!(row[0], k % 2 == 1);
        }
        assert_eq!(o.queries(), 8);
    }

    #[test]
    fn spawn_failure_is_reported() {
        let r = ProcessOracle::spawn(
            "/nonexistent/black_box_binary",
            &[],
            vec!["a".into()],
            vec!["y".into()],
        );
        assert!(matches!(r, Err(ProcessOracleError::Spawn(_))));
    }

    #[test]
    fn hang_hits_the_watchdog_deadline() {
        let mut o = ProcessOracle::spawn(
            "sh",
            &["-c", "read line; sleep 60"],
            vec!["a".into()],
            vec!["y".into()],
        )
        .expect("sh is available");
        o.set_read_timeout(Some(Duration::from_millis(80)));
        let r = o.try_query_process(&Assignment::zeros(1));
        assert!(matches!(r, Err(ProcessOracleError::Timeout(_))));
        // The trait-level error classifies as needing a respawn.
        let e = OracleError::from(ProcessOracleError::Timeout(Duration::from_millis(80)));
        assert!(e.needs_respawn());
    }

    #[test]
    fn crash_surfaces_as_death_and_respawn_recovers() {
        let mut o = ProcessOracle::spawn(
            "sh",
            &[
                "-c",
                // Answer the first query, then exit.
                r#"read line; echo 0; exit 3"#,
            ],
            vec!["a".into()],
            vec!["y".into()],
        )
        .expect("sh is available");
        assert_eq!(o.query(&Assignment::zeros(1)), vec![false]);
        // The child has exited; the next query sees a dead transport.
        let r = o.try_query(&Assignment::zeros(1));
        match r {
            Err(e) => assert!(e.needs_respawn(), "unexpected error class: {e}"),
            Ok(_) => panic!("query against a dead child must fail"),
        }
        // Respawn brings a fresh incarnation of the same program.
        o.respawn_process().expect("respawn");
        assert!(o.is_alive());
        assert_eq!(
            o.try_query(&Assignment::zeros(1)).expect("fresh child"),
            vec![false]
        );
        // Query accounting survives the respawn.
        assert_eq!(o.queries(), 2);
    }

    #[test]
    fn malformed_answer_is_reported_not_panicked() {
        let mut o = ProcessOracle::spawn(
            "sh",
            &["-c", r#"while read line; do echo xyzzy; done"#],
            vec!["a".into()],
            vec!["y".into()],
        )
        .expect("sh is available");
        let r = o.try_query_process(&Assignment::zeros(1));
        assert!(matches!(r, Err(ProcessOracleError::BadAnswer(_))));
    }

    #[test]
    fn drop_reaps_the_child() {
        let mut o = ProcessOracle::spawn(
            "sh",
            &["-c", "while read line; do echo 0; done"],
            vec!["a".into()],
            vec!["y".into()],
        )
        .expect("sh is available");
        let pid = o.transport.child.id();
        assert!(o.is_alive());
        drop(o);
        // After drop the PID must no longer be one of our children; a
        // kill(0) probe from a different process object is racy, so
        // just check /proc when available (Linux CI) — the zombie
        // state would show as 'Z' if the child were unreaped.
        let status = std::fs::read_to_string(format!("/proc/{pid}/stat"));
        if let Ok(s) = status {
            assert!(
                !s.contains(") Z "),
                "child {pid} left as a zombie after drop: {s}"
            );
        }
    }
}
