//! The 20-case contest roster (paper Table II).
//!
//! Each entry mirrors one row of the paper's Table II: the same name,
//! category and port counts. The hidden circuit itself is synthetic
//! (the industrial originals are not public); its *difficulty* — the
//! per-output support size driving how hard the FBDT has to work — is
//! tuned per case so the table's qualitative outcome pattern
//! (template cases solve instantly, most ECO/NEQ solve exactly, the
//! paper's failure cases stay hard) reproduces.

use crate::generate::{self, Category};
use crate::CircuitOracle;

/// One benchmark case of the contest suite.
#[derive(Debug, Clone)]
pub struct ContestCase {
    /// Case name, e.g. `case_4`.
    pub name: &'static str,
    /// Application category.
    pub category: Category,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Whether the case was hidden during the contest (marked `*` in
    /// the paper's table).
    pub hidden: bool,
    /// Per-output structural support size used by the generator
    /// (`None` = the generator's default). Larger supports make the
    /// case harder for sampling-based learning.
    pub support: Option<usize>,
    /// Generator seed (fixed so the suite is reproducible).
    pub seed: u64,
}

impl ContestCase {
    /// Instantiates the hidden circuit for this case as a black-box
    /// oracle.
    pub fn build(&self) -> CircuitOracle {
        match self.category {
            Category::Neq => generate::neq_case_with_support(
                self.num_inputs,
                self.num_outputs,
                self.support.unwrap_or(12),
                self.seed,
            ),
            Category::Eco => generate::eco_case_with_support(
                self.num_inputs,
                self.num_outputs,
                self.support.unwrap_or(10),
                self.seed,
            ),
            Category::Diag => generate::diag_case(self.num_inputs, self.num_outputs, self.seed),
            Category::Data => generate::data_case(self.num_inputs, self.num_outputs, self.seed),
        }
    }
}

/// Returns the 20 cases of the 2019 contest with the paper's
/// per-case category and port counts.
pub fn contest_suite() -> Vec<ContestCase> {
    use Category::*;
    // (name, category, #PI, #PO, bussed names, support bound).
    type SuiteRow = (&'static str, Category, usize, usize, bool, Option<usize>);
    let rows: [SuiteRow; 20] = [
        ("case_1", Eco, 121, 38, false, Some(8)),
        ("case_2", Data, 53, 19, false, None),
        ("case_3", Diag, 72, 1, false, None),
        ("case_4", Eco, 56, 5, false, Some(14)),
        ("case_5", Neq, 87, 16, false, Some(16)),
        ("case_6", Diag, 76, 1, false, None),
        ("case_7", Eco, 43, 7, false, Some(7)),
        ("case_8", Diag, 44, 5, false, None),
        ("case_9", Eco, 173, 16, false, Some(40)),
        ("case_10", Neq, 37, 2, false, Some(6)),
        ("case_11", Neq, 60, 20, true, Some(16)),
        ("case_12", Data, 40, 26, true, None),
        ("case_13", Eco, 43, 7, true, Some(6)),
        ("case_14", Neq, 50, 22, true, Some(32)),
        ("case_15", Diag, 80, 3, true, None),
        ("case_16", Diag, 26, 4, true, None),
        ("case_17", Eco, 76, 33, true, Some(12)),
        ("case_18", Neq, 102, 2, true, Some(36)),
        ("case_19", Eco, 73, 8, true, Some(12)),
        ("case_20", Diag, 51, 2, true, None),
    ];
    rows.into_iter()
        .enumerate()
        .map(
            |(i, (name, category, pi, po, hidden, support))| ContestCase {
                name,
                category,
                num_inputs: pi,
                num_outputs: po,
                hidden,
                support,
                seed: 0xC0DE_0000 + i as u64,
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Oracle;

    #[test]
    fn suite_matches_paper_dimensions() {
        let suite = contest_suite();
        assert_eq!(suite.len(), 20);
        // Spot-check rows against the paper's Table II.
        assert_eq!(suite[0].num_inputs, 121);
        assert_eq!(suite[0].num_outputs, 38);
        assert_eq!(suite[4].category, Category::Neq);
        assert_eq!(suite[4].num_inputs, 87);
        assert_eq!(suite[11].category, Category::Data);
        assert_eq!(suite[11].num_outputs, 26);
        assert_eq!(suite[19].name, "case_20");
        assert!(suite[10].hidden && !suite[9].hidden);
        // Category tallies: 7 ECO, 6 NEQ (incl. case_10), 7 DIAG? — per
        // the paper: ECO 7, DIAG 6, NEQ 5, DATA 2.
        let count = |c: Category| suite.iter().filter(|x| x.category == c).count();
        assert_eq!(count(Category::Eco), 7);
        assert_eq!(count(Category::Diag), 6);
        assert_eq!(count(Category::Neq), 5);
        assert_eq!(count(Category::Data), 2);
    }

    #[test]
    fn cases_build_with_requested_ports() {
        for case in contest_suite() {
            // Skip the largest for test speed; covered by benches.
            if case.num_inputs > 100 {
                continue;
            }
            let oracle = case.build();
            assert_eq!(oracle.num_inputs(), case.num_inputs, "{}", case.name);
            assert_eq!(oracle.num_outputs(), case.num_outputs, "{}", case.name);
        }
    }

    #[test]
    fn builds_are_reproducible() {
        let case = &contest_suite()[3];
        let a = case.build();
        let b = case.build();
        assert_eq!(a.reveal().gate_count(), b.reveal().gate_count());
        assert_eq!(a.input_names(), b.input_names());
    }
}
