//! Fault tolerance around black-box oracles.
//!
//! A long anytime learning run issues millions of queries against an
//! opaque external generator; transient faults — hangs, crashes,
//! garbage answers — are a certainty at that scale. [`ResilientOracle`]
//! wraps any [`Oracle`] with a [`RetryPolicy`]: bounded retries with
//! exponential backoff and deterministic jitter, watchdog-timeout
//! awareness, and automatic respawn of dead transports (guarded by a
//! replay-consistency probe so a restarted black box that computes a
//! *different* function is rejected instead of silently corrupting the
//! learned circuit).
//!
//! # Examples
//!
//! ```
//! use cirlearn_oracle::{generate, Oracle, ResilientOracle, RetryPolicy};
//! use cirlearn_logic::Assignment;
//!
//! let inner = generate::eco_case(8, 2, 7);
//! let mut oracle = ResilientOracle::new(inner, RetryPolicy::default());
//! let out = oracle
//!     .try_query(&Assignment::zeros(8))
//!     .expect("in-process oracle cannot fault");
//! assert_eq!(out.len(), 2);
//! ```

use std::time::{Duration, Instant};

use cirlearn_logic::Assignment;
use cirlearn_telemetry::json::Json;
use cirlearn_telemetry::{counters, histograms, HistogramHandle, Level, Telemetry};

use crate::oracle::{Oracle, OracleError};

/// How a wrapped oracle can be brought back after a fatal fault.
///
/// [`ResilientOracle`] calls [`Respawn::respawn`] when a query fails in
/// a way a plain retry cannot fix (timeouts desynchronize the answer
/// stream; dead processes need a fresh child). In-process oracles that
/// never fault implement it as a no-op.
pub trait Respawn {
    /// Attempts to restore the oracle to a queryable state.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::RespawnUnsupported`] when the oracle has
    /// no recovery mechanism, or the underlying failure when recovery
    /// itself fails.
    fn respawn(&mut self) -> Result<(), OracleError> {
        Err(OracleError::RespawnUnsupported)
    }
}

impl Respawn for crate::CircuitOracle {
    /// In-process circuits never fault; respawn is a no-op.
    fn respawn(&mut self) -> Result<(), OracleError> {
        Ok(())
    }
}

/// Retry/backoff configuration of a [`ResilientOracle`].
///
/// Backoff for retry `k` (0-based) is `base * factor^k`, capped at
/// `cap`, then scaled by a deterministic jitter factor in
/// `[1 - jitter, 1 + jitter]` derived from `seed` — two runs with the
/// same seed retry on the same schedule, so budgeted runs reproduce.
/// All arithmetic saturates: no parameter combination can overflow a
/// [`Duration`] or panic.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries per query beyond the first attempt.
    pub max_retries: u32,
    /// Delay before the first retry.
    pub backoff_base: Duration,
    /// Multiplier applied per retry (values below 1 are clamped to 1).
    pub backoff_factor: f64,
    /// Upper bound on any single delay.
    pub backoff_cap: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a
    /// deterministic factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Whether a dead transport is respawned (with a replay probe)
    /// instead of failing the query.
    pub respawn: bool,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base: Duration::from_millis(50),
            backoff_factor: 2.0,
            backoff_cap: Duration::from_secs(5),
            jitter: 0.25,
            respawn: true,
            seed: 0x1CCAD,
        }
    }
}

/// SplitMix64: a tiny deterministic mixer for the jitter stream.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// A policy that never retries (fail on the first fault).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            respawn: false,
            ..RetryPolicy::default()
        }
    }

    /// The un-jittered backoff for 0-based retry `attempt`:
    /// `base * factor^attempt`, capped at `cap`. Saturates instead of
    /// overflowing for any parameter combination.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = if self.backoff_factor.is_finite() {
            self.backoff_factor.max(1.0)
        } else {
            1.0
        };
        let cap_s = self.backoff_cap.as_secs_f64();
        let scale = factor.powi(attempt.min(i32::MAX as u32) as i32);
        let secs = self.backoff_base.as_secs_f64() * scale;
        let secs = if secs.is_finite() {
            secs.min(cap_s)
        } else {
            cap_s
        };
        Duration::try_from_secs_f64(secs.max(0.0)).unwrap_or(self.backoff_cap)
    }

    /// The jittered backoff for retry `attempt`, deterministic in
    /// `(seed, salt, attempt)`. `salt` distinguishes retry sequences of
    /// different queries so they do not thunder in lockstep.
    pub fn backoff_with_jitter(&self, attempt: u32, salt: u64) -> Duration {
        let base = self.backoff(attempt);
        let jitter = if self.jitter.is_finite() {
            self.jitter.clamp(0.0, 1.0)
        } else {
            0.0
        };
        if jitter == 0.0 {
            return base;
        }
        let bits = splitmix64(self.seed ^ splitmix64(salt.wrapping_add(u64::from(attempt))));
        // Uniform in [0, 1): 53 mantissa bits of the mixed word.
        let unit = (bits >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 - jitter + unit * 2.0 * jitter;
        let secs = (base.as_secs_f64() * factor).min(
            self.backoff_cap.as_secs_f64().max(
                self.backoff_base.as_secs_f64(), // cap*(1+j) may exceed cap; bound by max(cap, base)*2
            ) * 2.0,
        );
        Duration::try_from_secs_f64(secs.max(0.0)).unwrap_or(base)
    }

    /// The delay to sleep before retry `attempt`, or `None` when the
    /// delay would land past the remaining deadline — a retry that
    /// cannot complete before the budget expires is never scheduled.
    pub fn delay_within(
        &self,
        attempt: u32,
        salt: u64,
        remaining: Option<Duration>,
    ) -> Option<Duration> {
        let delay = self.backoff_with_jitter(attempt, salt);
        match remaining {
            Some(left) if delay >= left => None,
            _ => Some(delay),
        }
    }
}

/// Counters of fault-handling activity, exposed by
/// [`ResilientOracle::fault_stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Query attempts retried after a fault.
    pub retries: u64,
    /// Faults that were watchdog timeouts.
    pub timeouts: u64,
    /// Transport respawns performed.
    pub respawns: u64,
    /// Display form of the last fault observed, if any.
    pub last_error: Option<String>,
}

/// A fault-tolerant wrapper: retries, backoff, respawn and replay
/// consistency checking around any [`Oracle`].
///
/// Once a query exhausts its retries (or a respawned black box fails
/// the replay probe) the wrapper marks itself *dead*: every subsequent
/// fallible query fails fast without touching the transport, so an
/// anytime learner can degrade the remaining work instead of hanging.
#[derive(Debug)]
pub struct ResilientOracle<O> {
    inner: O,
    policy: RetryPolicy,
    telemetry: Telemetry,
    /// End-to-end latency per guarded query, including backoff sleeps,
    /// respawns and replay probes — the latency the learner actually
    /// experiences, as opposed to `oracle.query_ns` transport time.
    latency: HistogramHandle,
    stats: FaultStats,
    /// First few successful (pattern, answer) pairs, replayed after a
    /// respawn to check the new incarnation is the same function.
    probes: Vec<(Assignment, Vec<bool>)>,
    /// Wall-clock deadline: no retry is scheduled past it.
    deadline: Option<Instant>,
    dead: bool,
    /// Salts the jitter stream per fault sequence.
    fault_seq: u64,
}

/// How many successful queries are remembered for the replay probe.
const PROBE_SET_SIZE: usize = 4;

impl<O: Oracle + Respawn> ResilientOracle<O> {
    /// Wraps `inner` with the given policy and telemetry disabled.
    pub fn new(inner: O, policy: RetryPolicy) -> Self {
        ResilientOracle::with_telemetry(inner, policy, Telemetry::disabled())
    }

    /// Wraps `inner`, reporting fault counters to `telemetry`
    /// (`faults.retries`, `faults.timeouts`, `faults.respawns`).
    pub fn with_telemetry(inner: O, policy: RetryPolicy, telemetry: Telemetry) -> Self {
        let latency = telemetry.histogram_handle(histograms::ORACLE_GUARDED_QUERY_NS);
        ResilientOracle {
            inner,
            policy,
            telemetry,
            latency,
            stats: FaultStats::default(),
            probes: Vec::new(),
            deadline: None,
            dead: false,
            fault_seq: 0,
        }
    }

    /// Sets the wall-clock deadline: retries whose backoff would land
    /// past it are not scheduled (the query fails instead).
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// The fault-handling activity so far.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Whether the oracle has been marked dead (retries exhausted or
    /// replay probe failed); every further fallible query fails fast.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps back into the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    fn record_fault(&mut self, e: &OracleError) {
        self.stats.last_error = Some(e.to_string());
        let timeout = matches!(e, OracleError::Timeout(_));
        if timeout {
            self.stats.timeouts += 1;
            self.telemetry.incr(counters::FAULT_TIMEOUTS);
        }
        self.telemetry.trace(
            "fault",
            &[
                ("error", Json::from(e.to_string())),
                ("timeout", Json::Bool(timeout)),
            ],
        );
        self.telemetry
            .event(Level::Debug, &format!("oracle fault: {e}"));
    }

    /// Replays the probe set against a freshly respawned transport.
    fn check_probes(&mut self) -> Result<(), OracleError> {
        for k in 0..self.probes.len() {
            // panic-ok: `k` ranges over `probes` indices.
            let pattern = self.probes[k].0.clone();
            // panic-ok: `k` ranges over `probes` indices.
            let want = self.probes[k].1.clone();
            let got = self.inner.try_query(&pattern)?;
            if got != want {
                return Err(OracleError::Inconsistent(format!(
                    "probe {k} answered {got:?}, original incarnation answered {want:?}"
                )));
            }
        }
        Ok(())
    }

    fn respawn_and_verify(&mut self) -> Result<(), OracleError> {
        self.inner.respawn()?;
        self.stats.respawns += 1;
        self.telemetry.incr(counters::FAULT_RESPAWNS);
        self.check_probes()
    }

    /// One fully guarded query: retry loop with backoff, respawn and
    /// deadline awareness. The end-to-end time (retries included)
    /// lands in the `oracle.guarded_query_ns` histogram; the fail-fast
    /// dead path is not recorded, as no transport work happens.
    fn query_guarded(&mut self, input: &Assignment) -> Result<Vec<bool>, OracleError> {
        if self.dead {
            return Err(OracleError::Died(
                "oracle marked dead after an earlier fatal fault".into(),
            ));
        }
        let start = Instant::now();
        let out = self.query_guarded_inner(input);
        self.latency.record_duration(start.elapsed());
        out
    }

    fn query_guarded_inner(&mut self, input: &Assignment) -> Result<Vec<bool>, OracleError> {
        let salt = self.fault_seq;
        let mut attempt: u32 = 0;
        loop {
            match self.inner.try_query(input) {
                Ok(bits) => {
                    if self.probes.len() < PROBE_SET_SIZE
                        && !self.probes.iter().any(|(p, _)| p == input)
                    {
                        self.probes.push((input.clone(), bits.clone()));
                    }
                    return Ok(bits);
                }
                Err(e) => {
                    self.fault_seq += 1;
                    self.record_fault(&e);
                    if attempt >= self.policy.max_retries {
                        self.dead = true;
                        return Err(OracleError::Exhausted(Box::new(e)));
                    }
                    let Some(delay) = self.policy.delay_within(attempt, salt, self.remaining())
                    else {
                        // No time left for another attempt: fail the
                        // query now rather than sleeping past the
                        // deadline.
                        self.dead = true;
                        return Err(OracleError::Exhausted(Box::new(e)));
                    };
                    if !delay.is_zero() {
                        // blocking-ok: deliberate backoff between retry
                        // attempts against a faulted transport — the
                        // deadline check above bounds the total sleep.
                        std::thread::sleep(delay);
                    }
                    if e.needs_respawn() {
                        if !self.policy.respawn {
                            self.dead = true;
                            return Err(OracleError::Exhausted(Box::new(e)));
                        }
                        if let Err(re) = self.respawn_and_verify() {
                            self.record_fault(&re);
                            if re.is_fatal() {
                                // An inconsistent replacement is not
                                // retryable: it computes a different
                                // function.
                                self.dead = true;
                                return Err(re);
                            }
                            // Respawn itself failed transiently; spend
                            // a retry and loop.
                        }
                    }
                    attempt += 1;
                    self.stats.retries += 1;
                    self.telemetry.incr(counters::FAULT_RETRIES);
                }
            }
        }
    }
}

impl<O: Oracle + Respawn> Oracle for ResilientOracle<O> {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }

    fn input_names(&self) -> &[String] {
        self.inner.input_names()
    }

    fn output_names(&self) -> &[String] {
        self.inner.output_names()
    }

    /// # Panics
    ///
    /// Panics when the fault budget is exhausted; use
    /// [`Oracle::try_query`] for the fallible path.
    fn query(&mut self, input: &Assignment) -> Vec<bool> {
        self.query_guarded(input)
            // panic-ok: documented `# Panics` contract — the infallible
            // entry point surfaces an exhausted fault budget; fallible
            // callers use `try_query`.
            .unwrap_or_else(|e| panic!("oracle failed beyond recovery: {e}"))
    }

    fn try_query(&mut self, input: &Assignment) -> Result<Vec<bool>, OracleError> {
        self.query_guarded(input)
    }

    fn queries(&self) -> u64 {
        self.inner.queries()
    }

    /// Persists the jitter-salt position (`fault_seq`) plus the inner
    /// oracle's state. The dead flag and probe set are *not* persisted:
    /// a resumed run gets a fresh chance at a transport that may have
    /// recovered, and probes repopulate deterministically from the
    /// first successful queries of the new segment.
    fn checkpoint_state(&self) -> Option<Json> {
        let mut fields = vec![
            ("kind", Json::from("resilient")),
            ("fault_seq", Json::from(self.fault_seq)),
        ];
        if let Some(inner) = self.inner.checkpoint_state() {
            fields.push(("inner", inner));
        }
        Some(Json::object(fields))
    }

    fn restore_state(&mut self, state: &Json) -> Result<(), OracleError> {
        if state.get("kind").and_then(Json::as_str) != Some("resilient") {
            return Err(OracleError::State(
                "state was not captured from a ResilientOracle".into(),
            ));
        }
        let fault_seq = state
            .get("fault_seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| OracleError::State("resilient `fault_seq` is not a count".into()))?;
        self.fault_seq = fault_seq;
        if let Some(inner) = state.get("inner") {
            self.inner.restore_state(inner)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faulty::{FaultKind, FaultSchedule, FaultyOracle};
    use crate::generate;

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn passes_through_a_healthy_oracle() {
        let inner = generate::eco_case(10, 2, 3);
        let mut o = ResilientOracle::new(inner, fast_policy());
        let out = o.try_query(&Assignment::zeros(10)).expect("healthy");
        assert_eq!(out.len(), 2);
        assert_eq!(o.fault_stats(), &FaultStats::default());
        assert!(!o.is_dead());
    }

    #[test]
    fn retries_through_transient_malformed_answers() {
        let schedule = FaultSchedule::new()
            .at(1, FaultKind::Malformed)
            .at(3, FaultKind::Malformed);
        let inner = FaultyOracle::new(generate::eco_case(8, 1, 5), schedule);
        let mut o = ResilientOracle::new(inner, fast_policy());
        for k in 0..6u32 {
            let mut a = Assignment::zeros(8);
            if k % 2 == 0 {
                a.set(cirlearn_logic::Var::new(0), true);
            }
            o.try_query(&a).expect("transient faults are retried");
        }
        assert_eq!(o.fault_stats().retries, 2);
        assert_eq!(o.fault_stats().respawns, 0);
        assert!(!o.is_dead());
    }

    #[test]
    fn crash_triggers_respawn_and_replay_probe() {
        let schedule = FaultSchedule::new().at(5, FaultKind::Crash);
        let inner = FaultyOracle::new(generate::eco_case(8, 1, 5), schedule);
        let mut o = ResilientOracle::new(inner, fast_policy());
        for k in 0..10u32 {
            let mut a = Assignment::zeros(8);
            for b in 0..8 {
                if k >> b & 1 == 1 {
                    a.set(cirlearn_logic::Var::new(b as u32), true);
                }
            }
            o.try_query(&a).expect("crash is respawned through");
        }
        assert_eq!(o.fault_stats().respawns, 1);
        assert!(o.fault_stats().retries >= 1);
        assert!(!o.is_dead());
    }

    #[test]
    fn telemetry_counters_track_fault_activity() {
        let telemetry = Telemetry::recording();
        let schedule = FaultSchedule::new()
            .at(0, FaultKind::Hang)
            .at(4, FaultKind::Malformed);
        let inner = FaultyOracle::new(generate::eco_case(6, 1, 2), schedule);
        let mut o = ResilientOracle::with_telemetry(inner, fast_policy(), telemetry.clone());
        for _ in 0..6 {
            o.try_query(&Assignment::zeros(6)).expect("recovers");
        }
        assert!(telemetry.counter(counters::FAULT_RETRIES) >= 2);
        assert_eq!(telemetry.counter(counters::FAULT_TIMEOUTS), 1);
        assert_eq!(telemetry.counter(counters::FAULT_RESPAWNS), 1);
        let report = telemetry.report();
        assert!(report.faults.any());
        assert_eq!(report.faults.timeouts, 1);
    }

    #[test]
    fn guarded_latency_includes_retries() {
        use cirlearn_telemetry::{histograms, TraceWriter};
        let telemetry = Telemetry::recording();
        let (trace, sink) = TraceWriter::to_shared_buffer();
        telemetry.set_trace(trace);
        let schedule = FaultSchedule::new().at(0, FaultKind::Malformed);
        let inner = FaultyOracle::new(generate::eco_case(6, 1, 2), schedule);
        let mut o = ResilientOracle::with_telemetry(
            inner,
            RetryPolicy {
                backoff_base: Duration::from_millis(5),
                backoff_cap: Duration::from_millis(50),
                jitter: 0.0,
                ..fast_policy()
            },
            telemetry.clone(),
        );
        o.try_query(&Assignment::zeros(6)).expect("recovers");
        o.try_query(&Assignment::zeros(6)).expect("healthy");
        let report = telemetry.report();
        let h = &report.histograms[histograms::ORACLE_GUARDED_QUERY_NS];
        assert_eq!(h.count, 2);
        // The retried query slept through at least the 5 ms backoff.
        assert!(h.max >= 5_000_000, "max {} ns misses the backoff", h.max);
        // The fault reached the trace stream as a dedicated event.
        let text = sink.take_string();
        assert!(
            text.lines().any(|l| l.contains("\"fault\"")),
            "no fault event in trace: {text}"
        );
    }

    #[test]
    fn permanent_death_exhausts_and_marks_dead() {
        // Crash every incarnation immediately: respawn cannot help.
        let schedule = FaultSchedule::new()
            .at(0, FaultKind::Crash)
            .at(1, FaultKind::Crash)
            .at(2, FaultKind::Crash)
            .at(3, FaultKind::Crash)
            .at(4, FaultKind::Crash)
            .at(5, FaultKind::Crash);
        let inner = FaultyOracle::new(generate::eco_case(6, 1, 2), schedule);
        let mut o = ResilientOracle::new(inner, fast_policy());
        let err = o.try_query(&Assignment::zeros(6)).unwrap_err();
        assert!(matches!(err, OracleError::Exhausted(_)), "got {err}");
        assert!(o.is_dead());
        // Fail-fast afterwards: no further transport activity.
        let q_before = o.queries();
        assert!(o.try_query(&Assignment::zeros(6)).is_err());
        assert_eq!(o.queries(), q_before);
    }

    #[test]
    fn respawn_disabled_fails_on_fatal_faults() {
        let schedule = FaultSchedule::new().at(0, FaultKind::Crash);
        let inner = FaultyOracle::new(generate::eco_case(6, 1, 2), schedule);
        let mut o = ResilientOracle::new(
            inner,
            RetryPolicy {
                respawn: false,
                ..fast_policy()
            },
        );
        let err = o.try_query(&Assignment::zeros(6)).unwrap_err();
        assert!(matches!(err, OracleError::Exhausted(_)));
        assert_eq!(o.fault_stats().respawns, 0);
    }

    #[test]
    fn deadline_blocks_retries_past_the_budget() {
        let schedule = FaultSchedule::new().at(0, FaultKind::Malformed);
        let inner = FaultyOracle::new(generate::eco_case(6, 1, 2), schedule);
        let mut o = ResilientOracle::new(
            inner,
            RetryPolicy {
                backoff_base: Duration::from_secs(10),
                backoff_cap: Duration::from_secs(10),
                jitter: 0.0,
                ..fast_policy()
            },
        );
        // Deadline closer than the first backoff: the retry must not be
        // scheduled, and the query must fail promptly.
        o.set_deadline(Some(Instant::now() + Duration::from_millis(50)));
        let start = Instant::now();
        let err = o.try_query(&Assignment::zeros(6)).unwrap_err();
        assert!(matches!(err, OracleError::Exhausted(_)));
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "slept past the deadline: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn checkpoint_state_nests_and_restores_the_stack() {
        let schedule = FaultSchedule::new()
            .at(1, FaultKind::Malformed)
            .at(3, FaultKind::Malformed);
        let inner = FaultyOracle::new(generate::eco_case(8, 1, 5), schedule.clone());
        let mut o = ResilientOracle::new(inner, fast_policy());
        for _ in 0..4 {
            o.try_query(&Assignment::zeros(8)).expect("retried through");
        }
        let state = o.checkpoint_state().expect("resilient state exists");
        assert_eq!(state.get("kind").and_then(Json::as_str), Some("resilient"));
        assert_eq!(
            state
                .get("inner")
                .and_then(|i| i.get("kind"))
                .and_then(Json::as_str),
            Some("faulty"),
            "inner FaultyOracle state must nest"
        );

        let inner2 = FaultyOracle::new(generate::eco_case(8, 1, 5), schedule);
        let mut restored = ResilientOracle::new(inner2, fast_policy());
        restored.restore_state(&state).expect("state round-trips");
        assert_eq!(restored.fault_seq, o.fault_seq);
        assert_eq!(restored.inner().injected(), o.inner().injected());
        // Dead flag is intentionally not persisted: a resumed run gets a
        // fresh chance on the transport.
        assert!(!restored.is_dead());
    }

    #[test]
    fn restore_rejects_foreign_state() {
        let inner = generate::eco_case(6, 1, 2);
        let mut o = ResilientOracle::new(inner, fast_policy());
        let foreign = Json::object([("kind", Json::from("faulty"))]);
        assert!(matches!(
            o.restore_state(&foreign),
            Err(OracleError::State(_))
        ));
    }

    #[test]
    fn backoff_is_monotone_capped_and_deterministic() {
        let p = RetryPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_factor: 2.0,
            backoff_cap: Duration::from_millis(500),
            jitter: 0.5,
            ..RetryPolicy::default()
        };
        let mut prev = Duration::ZERO;
        for k in 0..20 {
            let b = p.backoff(k);
            assert!(b >= prev, "un-jittered backoff must be monotone");
            assert!(b <= p.backoff_cap);
            prev = b;
        }
        // Jitter is deterministic per (seed, salt, attempt).
        assert_eq!(p.backoff_with_jitter(3, 17), p.backoff_with_jitter(3, 17));
        // And bounded by [1-j, 1+j] around the un-jittered value.
        let base = p.backoff(3).as_secs_f64();
        let j = p.backoff_with_jitter(3, 17).as_secs_f64();
        assert!(j >= base * 0.5 - 1e-9 && j <= base * 1.5 + 1e-9);
    }

    #[test]
    fn extreme_policy_parameters_never_panic() {
        let p = RetryPolicy {
            max_retries: u32::MAX,
            backoff_base: Duration::MAX,
            backoff_factor: f64::INFINITY,
            backoff_cap: Duration::MAX,
            jitter: f64::NAN,
            respawn: true,
            seed: u64::MAX,
        };
        let _ = p.backoff(u32::MAX);
        let _ = p.backoff_with_jitter(u32::MAX, u64::MAX);
        let _ = p.delay_within(u32::MAX, 0, Some(Duration::ZERO));
    }
}
