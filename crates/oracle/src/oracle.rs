//! The black-box query interface.

use cirlearn_aig::Aig;
use cirlearn_logic::Assignment;

/// A black-box input-output relation generator.
///
/// Matches the contest's interface exactly: the box accepts a *full*
/// assignment to its primary inputs and returns a full assignment to
/// its outputs. Nothing else — no partial queries, no structure, no
/// satisfiability questions. Implementations count queries so
/// experiments can report sampling effort.
pub trait Oracle {
    /// Number of primary inputs.
    fn num_inputs(&self) -> usize;

    /// Number of primary outputs.
    fn num_outputs(&self) -> usize;

    /// Port names of the inputs, in input order.
    ///
    /// The contest exposes names; the paper's preprocessing mines them
    /// for bus structure.
    fn input_names(&self) -> &[String];

    /// Port names of the outputs, in output order.
    fn output_names(&self) -> &[String];

    /// Evaluates the hidden function on one full assignment.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `input.len() != num_inputs()`.
    fn query(&mut self, input: &Assignment) -> Vec<bool>;

    /// Evaluates a batch of assignments.
    ///
    /// The default implementation loops over [`Oracle::query`];
    /// implementations with bit-parallel evaluators should override it.
    fn query_batch(&mut self, inputs: &[Assignment]) -> Vec<Vec<bool>> {
        inputs.iter().map(|a| self.query(a)).collect()
    }

    /// Number of single-pattern queries served so far (batches count
    /// per pattern).
    fn queries(&self) -> u64;
}

/// An oracle wrapping a hidden combinational circuit.
///
/// The circuit is deliberately inaccessible: only the port names and
/// the query interface are public, mirroring the contest setup. Tests
/// and the evaluation harness may use [`CircuitOracle::reveal`] to
/// compare a learned circuit against the hidden one.
///
/// # Examples
///
/// ```
/// use cirlearn_aig::Aig;
/// use cirlearn_logic::Assignment;
/// use cirlearn_oracle::{CircuitOracle, Oracle};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let y = aig.xor(a, b);
/// aig.add_output(y, "y");
/// let mut oracle = CircuitOracle::new(aig);
///
/// let mut pat = Assignment::zeros(2);
/// pat.set(cirlearn_logic::Var::new(0), true);
/// assert_eq!(oracle.query(&pat), vec![true]);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitOracle {
    circuit: Aig,
    input_names: Vec<String>,
    output_names: Vec<String>,
    queries: u64,
}

impl CircuitOracle {
    /// Wraps a circuit as a black box.
    pub fn new(circuit: Aig) -> Self {
        let input_names = circuit.input_names().to_vec();
        let output_names = circuit
            .outputs()
            .iter()
            .map(|(_, name)| name.clone())
            .collect();
        CircuitOracle {
            circuit,
            input_names,
            output_names,
            queries: 0,
        }
    }

    /// Exposes the hidden circuit — for evaluation harnesses and tests
    /// only; the learner must never call this.
    pub fn reveal(&self) -> &Aig {
        &self.circuit
    }

    /// Resets the query counter.
    pub fn reset_queries(&mut self) {
        self.queries = 0;
    }
}

impl Oracle for CircuitOracle {
    fn num_inputs(&self) -> usize {
        self.circuit.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.circuit.num_outputs()
    }

    fn input_names(&self) -> &[String] {
        &self.input_names
    }

    fn output_names(&self) -> &[String] {
        &self.output_names
    }

    fn query(&mut self, input: &Assignment) -> Vec<bool> {
        self.queries += 1;
        self.circuit.eval(input)
    }

    fn query_batch(&mut self, inputs: &[Assignment]) -> Vec<Vec<bool>> {
        self.queries += inputs.len() as u64;
        self.circuit.eval_batch(inputs)
    }

    fn queries(&self) -> u64 {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_logic::Var;

    fn sample() -> CircuitOracle {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y0 = g.and(a, b);
        let y1 = g.or(a, b);
        g.add_output(y0, "and");
        g.add_output(y1, "or");
        CircuitOracle::new(g)
    }

    #[test]
    fn names_are_exposed() {
        let o = sample();
        assert_eq!(o.input_names(), &["a".to_owned(), "b".into()]);
        assert_eq!(o.output_names(), &["and".to_owned(), "or".into()]);
        assert_eq!(o.num_inputs(), 2);
        assert_eq!(o.num_outputs(), 2);
    }

    #[test]
    fn queries_are_counted() {
        let mut o = sample();
        let z = Assignment::zeros(2);
        o.query(&z);
        o.query(&z);
        assert_eq!(o.queries(), 2);
        o.query_batch(&[z.clone(), z.clone(), z.clone()]);
        assert_eq!(o.queries(), 5);
        o.reset_queries();
        assert_eq!(o.queries(), 0);
    }

    #[test]
    fn batch_matches_single_queries() {
        let mut o = sample();
        let mut pats = Vec::new();
        for m in 0..4u32 {
            let mut a = Assignment::zeros(2);
            a.set(Var::new(0), m & 1 == 1);
            a.set(Var::new(1), m >> 1 & 1 == 1);
            pats.push(a);
        }
        let batch = o.query_batch(&pats);
        for (i, p) in pats.iter().enumerate() {
            assert_eq!(batch[i], o.query(p), "pattern {i}");
        }
    }
}
