//! The black-box query interface.

use std::time::Duration;

use cirlearn_aig::Aig;
use cirlearn_logic::Assignment;
use cirlearn_telemetry::json::Json;

/// A fault observed while serving an oracle query.
///
/// The contest's black boxes are opaque external programs, so every
/// failure mode of an external process is a failure mode of a query:
/// broken pipes, hangs, garbage answers, outright crashes. The fallible
/// path ([`Oracle::try_query`]) surfaces them as values; the infallible
/// [`Oracle::query`] is reserved for oracles that cannot fault (or
/// callers that accept a panic).
#[derive(Debug)]
#[non_exhaustive]
pub enum OracleError {
    /// An I/O error while talking to the black box.
    Io(std::io::Error),
    /// The watchdog read deadline expired before an answer arrived.
    ///
    /// After a timeout the answer stream is out of sync with the query
    /// stream (a late answer could be mistaken for the next query's),
    /// so the transport must be respawned before further queries.
    Timeout(Duration),
    /// The black box answered, but not with `num_outputs` bits of 0/1.
    Malformed(String),
    /// The black box terminated (EOF on its answer stream or a dead
    /// child process).
    Died(String),
    /// All retries were spent without a good answer; the wrapped error
    /// is the last failure observed.
    Exhausted(Box<OracleError>),
    /// A respawned black box answered a replay probe differently than
    /// the original incarnation — it is not the same function, so
    /// learned results would silently mix two different oracles.
    Inconsistent(String),
    /// The oracle cannot be respawned (it has no recovery mechanism).
    RespawnUnsupported,
    /// A checkpointed oracle state could not be restored (missing
    /// fields, wrong shape, or a mismatched oracle stack).
    State(String),
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::Io(e) => write!(f, "oracle I/O error: {e}"),
            OracleError::Timeout(d) => {
                write!(f, "oracle answer timed out after {:.3}s", d.as_secs_f64())
            }
            OracleError::Malformed(l) => write!(f, "malformed oracle answer: {l:?}"),
            OracleError::Died(why) => write!(f, "oracle died: {why}"),
            OracleError::Exhausted(last) => write!(f, "oracle retries exhausted; last: {last}"),
            OracleError::Inconsistent(why) => {
                write!(f, "respawned oracle is inconsistent: {why}")
            }
            OracleError::RespawnUnsupported => f.write_str("oracle cannot be respawned"),
            OracleError::State(why) => write!(f, "invalid oracle resume state: {why}"),
        }
    }
}

impl std::error::Error for OracleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OracleError::Io(e) => Some(e),
            OracleError::Exhausted(last) => Some(last),
            _ => None,
        }
    }
}

impl OracleError {
    /// Whether retrying the same query on the same transport can
    /// succeed. Timeouts and deaths need a respawn first; malformed
    /// answers and I/O hiccups may be transient.
    pub fn needs_respawn(&self) -> bool {
        match self {
            OracleError::Timeout(_) | OracleError::Died(_) | OracleError::Io(_) => true,
            OracleError::Malformed(_) => false,
            OracleError::Exhausted(last) => last.needs_respawn(),
            OracleError::Inconsistent(_)
            | OracleError::RespawnUnsupported
            | OracleError::State(_) => false,
        }
    }

    /// Whether this error is terminal: no retry or respawn can help.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            OracleError::Exhausted(_)
                | OracleError::Inconsistent(_)
                | OracleError::RespawnUnsupported
                | OracleError::State(_)
        )
    }
}

/// A black-box input-output relation generator.
///
/// Matches the contest's interface exactly: the box accepts a *full*
/// assignment to its primary inputs and returns a full assignment to
/// its outputs. Nothing else — no partial queries, no structure, no
/// satisfiability questions. Implementations count queries so
/// experiments can report sampling effort.
pub trait Oracle {
    /// Number of primary inputs.
    fn num_inputs(&self) -> usize;

    /// Number of primary outputs.
    fn num_outputs(&self) -> usize;

    /// Port names of the inputs, in input order.
    ///
    /// The contest exposes names; the paper's preprocessing mines them
    /// for bus structure.
    fn input_names(&self) -> &[String];

    /// Port names of the outputs, in output order.
    fn output_names(&self) -> &[String];

    /// Evaluates the hidden function on one full assignment.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `input.len() != num_inputs()`.
    fn query(&mut self, input: &Assignment) -> Vec<bool>;

    /// Evaluates a batch of assignments.
    ///
    /// The default implementation loops over [`Oracle::query`];
    /// implementations with bit-parallel evaluators should override it.
    fn query_batch(&mut self, inputs: &[Assignment]) -> Vec<Vec<bool>> {
        inputs.iter().map(|a| self.query(a)).collect()
    }

    /// Fallibly evaluates the hidden function on one full assignment.
    ///
    /// The default delegates to the infallible [`Oracle::query`]
    /// (in-process oracles cannot fault); oracles backed by external
    /// transports override it to surface faults as [`OracleError`]s
    /// instead of panicking.
    fn try_query(&mut self, input: &Assignment) -> Result<Vec<bool>, OracleError> {
        Ok(self.query(input))
    }

    /// Fallibly evaluates a batch, stopping at the first fault.
    ///
    /// Answers already obtained are discarded on error; callers that
    /// want partial progress should loop [`Oracle::try_query`]
    /// themselves.
    fn try_query_batch(&mut self, inputs: &[Assignment]) -> Result<Vec<Vec<bool>>, OracleError> {
        inputs.iter().map(|a| self.try_query(a)).collect()
    }

    /// Number of single-pattern queries served so far (batches count
    /// per pattern).
    fn queries(&self) -> u64;

    /// Serializable resume state of the oracle stack, if any.
    ///
    /// Wrappers that hold a position in a deterministic stream — fault
    /// injectors, retry-jitter salts — return it here so a checkpointed
    /// learning run resumes with the exact same fault schedule.
    /// Stateless transports return `None` (the default); wrapper
    /// oracles nest their inner oracle's state so the whole stack
    /// round-trips.
    fn checkpoint_state(&self) -> Option<Json> {
        None
    }

    /// Restores state captured by [`Oracle::checkpoint_state`].
    ///
    /// The default accepts anything and restores nothing, matching the
    /// default `checkpoint_state` of stateless oracles.
    ///
    /// # Errors
    ///
    /// Implementations return [`OracleError::State`] when the value
    /// does not describe this oracle stack.
    fn restore_state(&mut self, _state: &Json) -> Result<(), OracleError> {
        Ok(())
    }
}

/// An oracle wrapping a hidden combinational circuit.
///
/// The circuit is deliberately inaccessible: only the port names and
/// the query interface are public, mirroring the contest setup. Tests
/// and the evaluation harness may use [`CircuitOracle::reveal`] to
/// compare a learned circuit against the hidden one.
///
/// # Examples
///
/// ```
/// use cirlearn_aig::Aig;
/// use cirlearn_logic::Assignment;
/// use cirlearn_oracle::{CircuitOracle, Oracle};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let y = aig.xor(a, b);
/// aig.add_output(y, "y");
/// let mut oracle = CircuitOracle::new(aig);
///
/// let mut pat = Assignment::zeros(2);
/// pat.set(cirlearn_logic::Var::new(0), true);
/// assert_eq!(oracle.query(&pat), vec![true]);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitOracle {
    circuit: Aig,
    input_names: Vec<String>,
    output_names: Vec<String>,
    queries: u64,
}

impl CircuitOracle {
    /// Wraps a circuit as a black box.
    pub fn new(circuit: Aig) -> Self {
        let input_names = circuit.input_names().to_vec();
        let output_names = circuit
            .outputs()
            .iter()
            .map(|(_, name)| name.clone())
            .collect();
        CircuitOracle {
            circuit,
            input_names,
            output_names,
            queries: 0,
        }
    }

    /// Exposes the hidden circuit — for evaluation harnesses and tests
    /// only; the learner must never call this.
    pub fn reveal(&self) -> &Aig {
        &self.circuit
    }

    /// Resets the query counter.
    pub fn reset_queries(&mut self) {
        self.queries = 0;
    }
}

impl Oracle for CircuitOracle {
    fn num_inputs(&self) -> usize {
        self.circuit.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.circuit.num_outputs()
    }

    fn input_names(&self) -> &[String] {
        &self.input_names
    }

    fn output_names(&self) -> &[String] {
        &self.output_names
    }

    fn query(&mut self, input: &Assignment) -> Vec<bool> {
        self.queries += 1;
        self.circuit.eval(input)
    }

    fn query_batch(&mut self, inputs: &[Assignment]) -> Vec<Vec<bool>> {
        self.queries += inputs.len() as u64;
        self.circuit.eval_batch(inputs)
    }

    fn try_query_batch(&mut self, inputs: &[Assignment]) -> Result<Vec<Vec<bool>>, OracleError> {
        // In-process evaluation cannot fault; keep the bit-parallel
        // batch path instead of the default per-pattern loop.
        Ok(self.query_batch(inputs))
    }

    fn queries(&self) -> u64 {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_logic::Var;

    fn sample() -> CircuitOracle {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y0 = g.and(a, b);
        let y1 = g.or(a, b);
        g.add_output(y0, "and");
        g.add_output(y1, "or");
        CircuitOracle::new(g)
    }

    #[test]
    fn names_are_exposed() {
        let o = sample();
        assert_eq!(o.input_names(), &["a".to_owned(), "b".into()]);
        assert_eq!(o.output_names(), &["and".to_owned(), "or".into()]);
        assert_eq!(o.num_inputs(), 2);
        assert_eq!(o.num_outputs(), 2);
    }

    #[test]
    fn queries_are_counted() {
        let mut o = sample();
        let z = Assignment::zeros(2);
        o.query(&z);
        o.query(&z);
        assert_eq!(o.queries(), 2);
        o.query_batch(&[z.clone(), z.clone(), z.clone()]);
        assert_eq!(o.queries(), 5);
        o.reset_queries();
        assert_eq!(o.queries(), 0);
    }

    #[test]
    fn batch_matches_single_queries() {
        let mut o = sample();
        let mut pats = Vec::new();
        for m in 0..4u32 {
            let mut a = Assignment::zeros(2);
            a.set(Var::new(0), m & 1 == 1);
            a.set(Var::new(1), m >> 1 & 1 == 1);
            pats.push(a);
        }
        let batch = o.query_batch(&pats);
        for (i, p) in pats.iter().enumerate() {
            assert_eq!(batch[i], o.query(p), "pattern {i}");
        }
    }
}
