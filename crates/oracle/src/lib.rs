//! Black-box IO-generator substrate and benchmark suite.
//!
//! The paper evaluates on 20 hidden industrial benchmarks from the 2019
//! ICCAD CAD Contest, exposed to contestants only as black-box
//! input-output pattern generators. This crate reproduces that
//! substrate:
//!
//! * [`Oracle`] — the query interface (full assignment in, output bits
//!   out) with query accounting,
//! * [`CircuitOracle`] — an oracle wrapping a hidden
//!   [`Aig`](cirlearn_aig::Aig),
//! * [`generate`] — synthetic circuit families for the contest's four
//!   application categories (NEQ miters, ECO patches, DIAG bus
//!   predicates, DATA arithmetic datapaths) with realistic port naming,
//! * [`suite`] — the 20-case roster mirroring the paper's Table II
//!   (category, #PI, #PO per case),
//! * [`eval`] — the contest accuracy metric: exact-match hit rate over
//!   a three-way mix of biased and uniform random patterns,
//! * [`ResilientOracle`] — fault tolerance (retry/backoff/timeout/
//!   respawn with replay-consistency probing) around any oracle,
//! * [`FaultyOracle`] — deterministic chaos injection (crash, hang,
//!   malformed answer, silent bit flip) for testing the above.
//!
//! # Examples
//!
//! ```
//! use cirlearn_oracle::{generate, Category, Oracle};
//! use cirlearn_logic::Assignment;
//!
//! let mut oracle = generate::diag_case(16, 2, 42);
//! let zeros = Assignment::zeros(oracle.num_inputs());
//! let out = oracle.query(&zeros);
//! assert_eq!(out.len(), oracle.num_outputs());
//! assert_eq!(oracle.queries(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
mod faulty;
pub mod generate;
mod instrument;
mod oracle;
mod process;
mod resilient;
pub mod suite;

pub use eval::{evaluate_accuracy, Accuracy, EvalConfig};
pub use faulty::{FaultKind, FaultSchedule, FaultyOracle, InjectedFaults};
pub use generate::Category;
pub use instrument::InstrumentedOracle;
pub use oracle::{CircuitOracle, Oracle, OracleError};
pub use process::{ProcessOracle, ProcessOracleError};
pub use resilient::{FaultStats, ResilientOracle, Respawn, RetryPolicy};
pub use suite::{contest_suite, ContestCase};
