//! Telemetry instrumentation for oracles.

use std::time::Instant;

use cirlearn_logic::Assignment;
use cirlearn_telemetry::{histograms, HistogramHandle, Telemetry};

use crate::oracle::Oracle;

/// An oracle wrapper that counts and times every query into a
/// [`Telemetry`] handle at the source.
///
/// Queries are bumped on the `oracle.queries` counter as they are
/// served (via [`Telemetry::record_oracle_queries`]), so stage spans
/// open in the learner attribute them to the pipeline stage that
/// issued them — the run report's per-stage query breakdown and the
/// total query count agree by construction. The same call feeds the
/// per-(stage, output) cost ledger: queries are tagged with whatever
/// attribution context (output scope, FBDT depth) the learner has set
/// at the time they are served.
///
/// Round-trip latency lands in the `oracle.query_ns` histogram
/// (lock-free; the handle is resolved once at construction). Batch
/// queries attribute the batch's mean per-item latency to each item,
/// so the histogram's count matches the query counter.
///
/// # Examples
///
/// ```
/// use cirlearn_aig::Aig;
/// use cirlearn_logic::Assignment;
/// use cirlearn_oracle::{CircuitOracle, InstrumentedOracle, Oracle};
/// use cirlearn_telemetry::{counters, Telemetry};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// aig.add_output(a, "y");
///
/// let telemetry = Telemetry::recording();
/// let mut oracle =
///     InstrumentedOracle::new(CircuitOracle::new(aig), telemetry.clone());
/// oracle.query(&Assignment::zeros(1));
/// assert_eq!(telemetry.counter(counters::ORACLE_QUERIES), 1);
/// assert_eq!(oracle.queries(), 1);
/// ```
#[derive(Debug)]
pub struct InstrumentedOracle<O> {
    inner: O,
    telemetry: Telemetry,
    latency: HistogramHandle,
}

impl<O: Oracle> InstrumentedOracle<O> {
    /// Wraps `inner`, reporting its query traffic to `telemetry`.
    pub fn new(inner: O, telemetry: Telemetry) -> Self {
        let latency = telemetry.histogram_handle(histograms::ORACLE_QUERY_NS);
        InstrumentedOracle {
            inner,
            telemetry,
            latency,
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps back into the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Oracle> Oracle for InstrumentedOracle<O> {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }

    fn input_names(&self) -> &[String] {
        self.inner.input_names()
    }

    fn output_names(&self) -> &[String] {
        self.inner.output_names()
    }

    fn query(&mut self, input: &Assignment) -> Vec<bool> {
        let start = Instant::now();
        let out = self.inner.query(input);
        let elapsed = start.elapsed();
        self.latency.record_duration(elapsed);
        self.telemetry
            .record_oracle_queries(1, u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
        out
    }

    fn query_batch(&mut self, inputs: &[Assignment]) -> Vec<Vec<bool>> {
        let start = Instant::now();
        let out = self.inner.query_batch(inputs);
        let total = record_batch(&self.latency, start, inputs.len());
        self.telemetry
            .record_oracle_queries(inputs.len() as u64, total);
        out
    }

    fn try_query(&mut self, input: &Assignment) -> Result<Vec<bool>, crate::oracle::OracleError> {
        // Counted only on success, matching the inner oracle's own
        // accounting (a faulted query served no answer).
        let start = Instant::now();
        let out = self.inner.try_query(input)?;
        let elapsed = start.elapsed();
        self.latency.record_duration(elapsed);
        self.telemetry
            .record_oracle_queries(1, u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
        Ok(out)
    }

    fn try_query_batch(
        &mut self,
        inputs: &[Assignment],
    ) -> Result<Vec<Vec<bool>>, crate::oracle::OracleError> {
        let start = Instant::now();
        let out = self.inner.try_query_batch(inputs)?;
        let total = record_batch(&self.latency, start, out.len());
        self.telemetry
            .record_oracle_queries(out.len() as u64, total);
        Ok(out)
    }

    fn queries(&self) -> u64 {
        self.inner.queries()
    }

    fn checkpoint_state(&self) -> Option<cirlearn_telemetry::json::Json> {
        self.inner.checkpoint_state()
    }

    fn restore_state(
        &mut self,
        state: &cirlearn_telemetry::json::Json,
    ) -> Result<(), crate::oracle::OracleError> {
        self.inner.restore_state(state)
    }
}

/// Attributes a batch's elapsed time across its items: `n` samples of
/// the mean per-item latency, so per-batch and per-query transports
/// yield comparable distributions. Returns the batch's total elapsed
/// nanoseconds (0 for empty batches).
fn record_batch(latency: &HistogramHandle, start: Instant, n: usize) -> u64 {
    if n == 0 {
        return 0;
    }
    let total = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    latency.record_n(total / n as u64, n as u64);
    total
}

impl<O: Oracle + ?Sized> Oracle for &mut O {
    fn num_inputs(&self) -> usize {
        (**self).num_inputs()
    }

    fn num_outputs(&self) -> usize {
        (**self).num_outputs()
    }

    fn input_names(&self) -> &[String] {
        (**self).input_names()
    }

    fn output_names(&self) -> &[String] {
        (**self).output_names()
    }

    fn query(&mut self, input: &Assignment) -> Vec<bool> {
        (**self).query(input)
    }

    fn query_batch(&mut self, inputs: &[Assignment]) -> Vec<Vec<bool>> {
        (**self).query_batch(inputs)
    }

    fn try_query(&mut self, input: &Assignment) -> Result<Vec<bool>, crate::oracle::OracleError> {
        (**self).try_query(input)
    }

    fn try_query_batch(
        &mut self,
        inputs: &[Assignment],
    ) -> Result<Vec<Vec<bool>>, crate::oracle::OracleError> {
        (**self).try_query_batch(inputs)
    }

    fn queries(&self) -> u64 {
        (**self).queries()
    }

    fn checkpoint_state(&self) -> Option<cirlearn_telemetry::json::Json> {
        (**self).checkpoint_state()
    }

    fn restore_state(
        &mut self,
        state: &cirlearn_telemetry::json::Json,
    ) -> Result<(), crate::oracle::OracleError> {
        (**self).restore_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitOracle;
    use cirlearn_aig::Aig;
    use cirlearn_telemetry::counters;

    fn sample() -> CircuitOracle {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y = g.xor(a, b);
        g.add_output(y, "y");
        CircuitOracle::new(g)
    }

    #[test]
    fn counts_singles_and_batches_into_telemetry() {
        let telemetry = Telemetry::recording();
        let mut o = InstrumentedOracle::new(sample(), telemetry.clone());
        let z = Assignment::zeros(2);
        o.query(&z);
        o.query_batch(&[z.clone(), z.clone(), z.clone()]);
        assert_eq!(telemetry.counter(counters::ORACLE_QUERIES), 4);
        assert_eq!(o.queries(), 4);
    }

    #[test]
    fn attribution_lands_on_the_active_span() {
        let telemetry = Telemetry::recording();
        let mut o = InstrumentedOracle::new(sample(), telemetry.clone());
        let z = Assignment::zeros(2);
        {
            let _support = telemetry.span("support");
            o.query(&z);
            o.query(&z);
        }
        {
            let _fbdt = telemetry.span("fbdt");
            o.query(&z);
        }
        let report = telemetry.report();
        let support = report
            .stage("support")
            .expect("span closed above, so the stage must be recorded");
        assert_eq!(support.counters[counters::ORACLE_QUERIES], 2);
        let fbdt = report
            .stage("fbdt")
            .expect("span closed above, so the stage must be recorded");
        assert_eq!(fbdt.counters[counters::ORACLE_QUERIES], 1);
        assert_eq!(
            report.top_level_counter_sum(counters::ORACLE_QUERIES),
            report.counter(counters::ORACLE_QUERIES)
        );
    }

    #[test]
    fn latency_lands_in_the_query_histogram() {
        use cirlearn_telemetry::histograms;
        let telemetry = Telemetry::recording();
        let mut o = InstrumentedOracle::new(sample(), telemetry.clone());
        let z = Assignment::zeros(2);
        o.query(&z);
        o.query_batch(&[z.clone(), z.clone(), z.clone()]);
        o.try_query(&z).expect("circuit oracle cannot fault");
        let report = telemetry.report();
        let h = &report.histograms[histograms::ORACLE_QUERY_NS];
        // One sample per query, matching the counter.
        assert_eq!(h.count, 5);
        assert_eq!(h.count, report.counter(counters::ORACLE_QUERIES));
    }

    #[test]
    fn queries_feed_the_attribution_ledger_with_context() {
        let telemetry = Telemetry::recording();
        let mut o = InstrumentedOracle::new(sample(), telemetry.clone());
        let z = Assignment::zeros(2);
        {
            let _scope = telemetry.output_scope(3);
            let _span = telemetry.span("fbdt");
            o.query(&z);
            o.query_batch(&[z.clone(), z.clone()]);
        }
        {
            let _span = telemetry.span("templates");
            o.query(&z);
        }
        let report = telemetry.report();
        assert_eq!(report.attribution_total_queries(), 4);
        let fbdt = report
            .attribution
            .iter()
            .find(|a| a.stage == "fbdt")
            .expect("fbdt ledger cell");
        assert_eq!(fbdt.output, Some(3));
        assert_eq!(fbdt.queries, 3);
        assert!(fbdt.query_ns > 0, "query wall clock is attributed");
        let templates = report
            .attribution
            .iter()
            .find(|a| a.stage == "templates")
            .expect("templates ledger cell");
        assert_eq!(templates.output, None);
        assert_eq!(templates.queries, 1);
    }

    #[test]
    fn disabled_telemetry_passes_queries_through() {
        let mut o = InstrumentedOracle::new(sample(), Telemetry::disabled());
        let z = Assignment::zeros(2);
        let out = o.query(&z);
        assert_eq!(out, vec![false]);
        assert_eq!(o.queries(), 1);
    }
}
