//! `cirlearn top <status.json>` — renders the live status snapshot a
//! `--status` run rewrites.
//!
//! By default it follows the file like `top(1)`: clear the screen,
//! render the snapshot, sleep, repeat — until the snapshot says `done`
//! or the writing process is gone. `--once` renders a single snapshot
//! and exits (the scripting/CI mode). Reads are naturally torn-free:
//! the writer replaces the file atomically, so every read sees a
//! complete snapshot.

use std::time::Duration;

use cirlearn_telemetry::StatusSnapshot;

use crate::Opts;

pub(crate) fn cmd_top(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["interval"])?;
    let [path] = opts.positional.as_slice() else {
        return Err("top expects exactly one status file".to_owned());
    };
    let once = opts.present("once");
    let interval = Duration::from_secs_f64(opts.number("interval", 1.0)?);
    let mut waiting_printed = false;
    loop {
        let snap = match std::fs::read_to_string(path) {
            Ok(text) => StatusSnapshot::parse(&text)
                .map_err(|e| format!("parsing status file {path}: {e}"))?,
            Err(e) if once => return Err(format!("reading status file {path}: {e}")),
            Err(_) => {
                // Follow mode tolerates a not-yet-written file: the run
                // may still be starting up.
                if !waiting_printed {
                    eprintln!("waiting for {path} ...");
                    waiting_printed = true;
                }
                std::thread::sleep(interval);
                continue;
            }
        };
        if once {
            print!("{}", snap.render());
            return Ok(());
        }
        // Clear screen + home, like top(1).
        print!("\x1b[2J\x1b[H{}", snap.render());
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        if snap.done {
            return Ok(());
        }
        if !pid_alive(snap.pid) {
            eprintln!("writer (pid {}) exited without finishing", snap.pid);
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// Whether the snapshot's writer is still running, via the classic
/// `kill(pid, 0)` existence probe.
#[cfg(unix)]
fn pid_alive(pid: u64) -> bool {
    // SAFETY: `kill(2)` is a standard libc symbol with exactly this
    // signature; declaring it is sound and calls are checked below.
    unsafe extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    if pid == 0 || pid > i32::MAX as u64 {
        return false;
    }
    // SAFETY: signal 0 sends nothing — kill(2) only performs the
    // existence/permission check and cannot affect the target.
    (unsafe { kill(pid as i32, 0) }) == 0
}

#[cfg(not(unix))]
fn pid_alive(_pid: u64) -> bool {
    // No cheap probe: keep following until the snapshot says done.
    true
}
