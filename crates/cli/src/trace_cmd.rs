//! The `cirlearn trace` subcommand family: offline analysis of JSONL
//! trace streams written by `--trace`.
//!
//! ```text
//! cirlearn trace summary <trace.jsonl> [...] [--top N]
//! cirlearn trace export <trace.jsonl> --chrome [-o out.json]
//! cirlearn trace diff <old.jsonl> <new.jsonl>
//!                     [--pct P] [--min-ms N] [--min-queries N]
//! ```
//!
//! `summary` prints the hot-span table, the per-(stage, output)
//! attribution table and the critical path; given several files it
//! treats them as the segments of one checkpoint/resume run and merges
//! their accounts (summing the per-segment ledgers, so the query total
//! matches the resumed run's final count); `export --chrome` converts
//! the stream into Chrome trace-event JSON loadable in Perfetto or
//! `chrome://tracing`; `diff` compares two traces with the same
//! noise-floor discipline as `bench compare` and exits nonzero when a
//! regression clears both the relative threshold and the absolute
//! floor.

use cirlearn_telemetry::analysis::{self, DiffConfig, TraceEvent, TraceSummary};
use cirlearn_telemetry::json::Json;

use crate::Opts;

pub fn cmd_trace(args: &[String]) -> Result<(), String> {
    let Some(sub) = args.first() else {
        return Err("trace expects a subcommand: summary|export|diff".to_owned());
    };
    let rest = &args[1..];
    match sub.as_str() {
        "summary" => cmd_summary(rest),
        "export" => cmd_export(rest),
        "diff" => cmd_diff(rest),
        other => Err(format!(
            "unknown trace subcommand {other} (summary|export|diff)"
        )),
    }
}

fn load_events(path: &str) -> Result<Vec<TraceEvent>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    analysis::parse_trace(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_summary(path: &str) -> Result<TraceSummary, String> {
    Ok(analysis::summarize(&load_events(path)?))
}

fn cmd_summary(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["top"])?;
    if opts.positional.is_empty() {
        return Err("trace summary expects one or more trace files".to_owned());
    }
    let top = opts.number("top", 12usize)?;
    if let [input] = opts.positional.as_slice() {
        print!("{}", load_summary(input)?.render(top));
        return Ok(());
    }
    // Several files = the segments of one checkpoint/resume run, in
    // order. Per-segment ledgers restart from zero, so the merge sums
    // them; the total then matches the resumed run's final query count.
    let segments = opts
        .positional
        .iter()
        .map(|p| load_summary(p))
        .collect::<Result<Vec<_>, _>>()?;
    let resumes: u64 = segments
        .iter()
        .map(|s| s.counts_by_kind.get("resume").copied().unwrap_or(0))
        .sum();
    let merged = analysis::merge_summaries(&segments);
    println!(
        "merged {} trace segment(s) ({} resume event(s))",
        segments.len(),
        resumes
    );
    print!("{}", merged.render(top));
    Ok(())
}

fn cmd_export(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &[])?;
    let [input] = opts.positional.as_slice() else {
        return Err("trace export expects exactly one trace file".to_owned());
    };
    if !opts.present("chrome") {
        return Err("trace export requires a format flag (--chrome)".to_owned());
    }
    let events = load_events(input)?;
    let chrome = analysis::to_chrome_trace(&events);
    // Report the count actually written: spans collapse open/close
    // pairs into one complete event, so it differs from the input.
    let written = chrome
        .get("traceEvents")
        .and_then(Json::as_array)
        .map_or(0, <[Json]>::len);
    match opts.value("o") {
        Some(path) => {
            cirlearn_telemetry::persist::write_atomic(path, chrome.to_pretty())
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path} ({written} events)");
        }
        None => println!("{}", chrome.to_pretty()),
    }
    Ok(())
}

fn cmd_diff(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["pct", "min-ms", "min-queries"])?;
    let [old_path, new_path] = opts.positional.as_slice() else {
        return Err("trace diff expects two trace files".to_owned());
    };
    let default = DiffConfig::default();
    let cfg = DiffConfig {
        pct_threshold: opts.number("pct", default.pct_threshold)?,
        min_us: opts.number("min-ms", default.min_us / 1000)? * 1000,
        min_queries: opts.number("min-queries", default.min_queries)?,
    };
    let old = load_summary(old_path)?;
    let new = load_summary(new_path)?;
    let deltas = analysis::diff(&old, &new, &cfg);
    if deltas.is_empty() {
        println!(
            "no regressions (+{:.0}% threshold, {}ms / {} query floors)",
            cfg.pct_threshold,
            cfg.min_us / 1000,
            cfg.min_queries
        );
        return Ok(());
    }
    for d in &deltas {
        println!("{d}");
    }
    Err(format!(
        "{} regression(s) beyond the +{:.0}% threshold",
        deltas.len(),
        cfg.pct_threshold
    ))
}
