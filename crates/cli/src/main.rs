//! `cirlearn` — the command-line front end of the circuit-learning
//! toolkit.
//!
//! ```text
//! cirlearn learn <hidden.aag> [-o learned.aag] [--verilog out.v]
//!                [--budget SECS] [--seed N] [--no-preprocessing] [--paper-scale]
//!                [--check off|lint|sim|sat]
//!                [--checkpoint ckpt.clck] [--checkpoint-interval SECS]
//!                [--resume ckpt.clck] [--deadline SECS]
//!                [--report report.json] [--log-level LEVEL] [--verbose]
//! cirlearn learn-bb --cmd <program> [--args ARGSTR] --inputs a,b,c --outputs y,z
//!                [--oracle-timeout SECS] [--oracle-retries N]
//!                [--oracle-backoff SECS] [--oracle-respawn on|off]
//!                [--checkpoint ckpt.clck] [--resume ckpt.clck] [--deadline SECS]
//! cirlearn eval <golden.aag> <candidate.aag> [--patterns N] [--seed N]
//! cirlearn gen <neq|eco|diag|data> <#PI> <#PO> [--seed N] [-o out.aag]
//! cirlearn blackbox <neq|eco|diag|data> <#PI> <#PO> [--seed N]
//!                [--support K] [--flake-every N]
//! cirlearn opt <input.aag> [-o out.aag] [--budget SECS] [--check off|lint|sim|sat]
//! cirlearn lint <input.aag> [...] [--allow-dangling]
//! cirlearn analyze <input.aag> [...] [--deny info|warning|error]
//!                [--report out.json] [--fanout-threshold N]
//! cirlearn stats <input.aag>
//! cirlearn trace summary <trace.jsonl> [--top N]
//! cirlearn trace export <trace.jsonl> --chrome [-o out.json]
//! cirlearn trace diff <old.jsonl> <new.jsonl> [--pct P] [--min-ms N] [--min-queries N]
//! ```
//!
//! `learn` treats the input circuit as a black box (only its query
//! interface is used), runs the DAC'20 pipeline and writes the learned
//! circuit; `eval` scores a candidate with the contest's three-way
//! biased pattern mix; `gen` emits a synthetic benchmark of the given
//! contest category.
//!
//! Verification: `--check` selects how hard every optimization pass is
//! validated (`lint` = structural linting of the result, `sim` = 256
//! random-pattern differential simulation, `sat` = full SAT equivalence
//! check); a failing pass is rejected and reported with a minimized
//! counterexample witness. `lint` runs the strict structural linter
//! over standalone AIGER files and exits nonzero on any violation
//! (`--allow-dangling` tolerates unreferenced AND nodes, which foreign
//! exporters sometimes leave behind; files written by this CLI are
//! compacted and pass the strict check). `analyze` goes further than
//! `lint`: on top of the structural checks it runs the
//! `cirlearn-analyze` dataflow suite — ternary constant propagation,
//! dead-node detection, duplicate detection and structural metrics —
//! prints a severity-ordered findings table, optionally writes a JSON
//! report, and exits nonzero when any finding reaches the `--deny`
//! severity (default `warning`), making it a drop-in CI quality gate
//! for exported circuits.
//!
//! Crash safety: `--checkpoint <path>` makes `learn`/`learn-bb` write
//! a versioned, checksummed snapshot of the full learning state at
//! every `--checkpoint-interval` (default 30s) safe point, atomically
//! (tmp + fsync + rename); SIGINT/SIGTERM suspend the run into the
//! same checkpoint and exit 130. `--resume <path>` continues such a
//! run bit-identically — query and time budgets carry across segments.
//! `--deadline SECS` bounds the *total* wall clock across all
//! segments: past it, unfinished FBDT outputs are synthesized from
//! their already-collected cubes (unstarted ones fall back to majority
//! constants) and reported in `degraded` rather than aborting. The
//! `blackbox` subcommand serves a deterministic synthetic benchmark
//! over the `learn-bb` line protocol, so kill/resume drills need no
//! external tooling.
//!
//! Fault tolerance: `learn-bb` wraps the external process in a
//! [`cirlearn_oracle::ResilientOracle`] — `--oracle-timeout` arms a
//! per-query watchdog deadline, `--oracle-retries`/`--oracle-backoff`
//! bound the retry loop (exponential backoff, deterministic jitter),
//! and `--oracle-respawn off` disables the automatic restart of dead
//! black boxes. When the oracle dies beyond recovery the learner
//! degrades the affected outputs to baseline constants instead of
//! aborting; the run report's `faults` section records the activity.
//!
//! Telemetry: `--log-level` (error|warn|info|debug|trace) controls the
//! pipeline narration on stderr (`--verbose` is an alias for `--log-level
//! debug`); `--report <path>` writes a machine-readable JSON run report
//! with per-stage wall clock, oracle-query and latency-histogram
//! breakdowns; `--trace <path>` streams JSONL trace events (span
//! open/close, FBDT node expansions, synthesis passes, oracle faults,
//! budget checkpoints) to a file as the run progresses. Both survive
//! crashes: a drop guard drains buffered per-thread trace chunks, then
//! flushes the trace stream and a partial `--report` (with
//! `"aborted": "true"` in its meta) when the run panics instead of
//! finishing.
//!
//! Trace analysis: `trace summary` reads a `--trace` stream back and
//! prints hot spans, the per-(stage, output) cost-attribution table
//! (whose query total equals the run's query count) and the critical
//! path; `trace export --chrome` converts the stream to Chrome
//! trace-event JSON for Perfetto / `chrome://tracing`; `trace diff`
//! compares two streams under the bench noise-floor discipline and
//! exits nonzero on regressions.

use std::process::ExitCode;
use std::str::FromStr;
use std::time::Duration;

use cirlearn::{LearnOutcome, LearnResult, LearnState, Learner, LearnerConfig, RunControl};
use cirlearn_aig::Aig;
use cirlearn_oracle::{
    evaluate_accuracy, generate, CircuitOracle, EvalConfig, Oracle, ResilientOracle, RetryPolicy,
};
use cirlearn_telemetry::{persist, Level, StderrReporter, Telemetry, TraceWriter};

mod top_cmd;
mod trace_cmd;

/// Graceful-interrupt plumbing: SIGINT/SIGTERM set a shared flag the
/// learner polls at its safe points, so an interrupted run suspends
/// into a checkpoint instead of dying mid-stage.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    const SIGINT: i32 = 2;
    const SIGUSR1: i32 = 10; // Linux numbering; this module is cfg(unix) for Linux CI.
    const SIGTERM: i32 = 15;

    static STOP: OnceLock<Arc<AtomicBool>> = OnceLock::new();
    static DUMP: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    extern "C" fn on_signal(_signum: i32) {
        // Only lock-free atomics here: a signal handler may interrupt
        // arbitrary code, so it must stay async-signal-safe.
        if let Some(flag) = STOP.get() {
            // relaxed-ok: a standalone stop flag; the learner polls it
            // at safe points, no other memory is published through it.
            flag.store(true, Ordering::Relaxed);
        }
    }

    extern "C" fn on_dump_signal(_signum: i32) {
        // Store-only, same async-signal-safety discipline as
        // `on_signal`: the flight-recorder dump itself happens at the
        // learner's next safe point, never inside the handler.
        if let Some(flag) = DUMP.get() {
            // relaxed-ok: a standalone dump flag; the learner swaps it
            // at safe points, no other memory is published through it.
            flag.store(true, Ordering::Relaxed);
        }
    }

    // SAFETY: `signal(2)` is called with a valid signal number and a
    // non-capturing `extern "C"` handler that performs only
    // async-signal-safe operations (atomic load + atomic store).
    unsafe extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Installs the SIGINT/SIGTERM handler (idempotent) and returns
    /// the stop flag it raises.
    pub fn install_stop_flag() -> Arc<AtomicBool> {
        let flag = STOP
            .get_or_init(|| Arc::new(AtomicBool::new(false)))
            .clone();
        // SAFETY: the handler is async-signal-safe (see `on_signal`)
        // and stays valid for the process lifetime (it is a plain fn).
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
        flag
    }

    /// Installs the SIGUSR1 handler (idempotent) and returns the
    /// flight-dump flag it raises. The learner clears the flag and
    /// dumps the flight recorder at its next safe point.
    pub fn install_dump_flag() -> Arc<AtomicBool> {
        let flag = DUMP
            .get_or_init(|| Arc::new(AtomicBool::new(false)))
            .clone();
        // SAFETY: the handler is async-signal-safe (see
        // `on_dump_signal`) and stays valid for the process lifetime.
        unsafe {
            signal(SIGUSR1, on_dump_signal);
        }
        flag
    }
}

#[cfg(not(unix))]
mod sig {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// Non-Unix fallback: no handler; the flag never fires and runs
    /// rely on the checkpoint cadence alone.
    pub fn install_stop_flag() -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(false))
    }

    /// Non-Unix fallback: no handler; flight dumps still happen on
    /// panic, fault, deadline and suspension.
    pub fn install_dump_flag() -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(false))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  cirlearn learn <hidden.aag> [-o learned.aag] [--verilog out.v]
                 [--budget SECS] [--max-queries N] [--seed N]
                 [--no-preprocessing] [--paper-scale]
                 [--check off|lint|sim|sat]
                 [--checkpoint ckpt.clck] [--checkpoint-interval SECS]
                 [--resume ckpt.clck] [--deadline SECS]
                 [--report report.json] [--trace trace.jsonl]
                 [--log-level LEVEL] [--verbose]
  cirlearn learn-bb --cmd <program> [--args ARGSTR] --inputs a,b,c --outputs y,z
                 [-o learned.aag] [--budget SECS] [--max-queries N]
                 [--seed N] [--check LEVEL]
                 [--oracle-timeout SECS] [--oracle-retries N]
                 [--oracle-backoff SECS] [--oracle-respawn on|off]
                 [--checkpoint ckpt.clck] [--checkpoint-interval SECS]
                 [--resume ckpt.clck] [--deadline SECS]
                 [--report report.json] [--trace trace.jsonl]
                 [--log-level LEVEL] [--verbose]
  cirlearn eval <golden.aag> <candidate.aag> [--patterns N] [--seed N]
  cirlearn gen <neq|eco|diag|data> <#PI> <#PO> [--seed N] [-o out.aag]
  cirlearn blackbox <neq|eco|diag|data> <#PI> <#PO> [--seed N]
                 [--support K] [--flake-every N]
  cirlearn opt <input.aag> [-o out.aag] [--budget SECS] [--check LEVEL]
  cirlearn lint <input.aag> [...] [--allow-dangling]
  cirlearn analyze <input.aag> [...] [--deny info|warning|error]
                 [--report out.json] [--fanout-threshold N]
  cirlearn stats <input.aag>
  cirlearn top <status.json> [--once] [--interval SECS]
  cirlearn trace summary <trace.jsonl> [...] [--top N]
  cirlearn trace export <trace.jsonl> --chrome [-o out.json]
  cirlearn trace diff <old.jsonl> <new.jsonl>
                 [--pct P] [--min-ms N] [--min-queries N]

  learn/learn-bb also accept [--status status.json] (live progress
  snapshots for `cirlearn top`) and [--flight <path|off>] (where the
  always-on flight recorder dumps on panic/fault/deadline/SIGUSR1).";

/// Minimal flag parser: returns positional arguments and a lookup for
/// `--flag value` / `--flag` options.
pub(crate) struct Opts {
    pub(crate) positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Opts {
    pub(crate) fn parse(args: &[String], value_flags: &[&str]) -> Result<Opts, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if value_flags.contains(&name) {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("--{name} expects a value"))?;
                    flags.push((name.to_owned(), Some(v.clone())));
                } else {
                    flags.push((name.to_owned(), None));
                }
            } else if a == "-o" {
                let v = it.next().ok_or("-o expects a file name")?;
                flags.push(("o".to_owned(), Some(v.clone())));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Opts { positional, flags })
    }

    pub(crate) fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    pub(crate) fn present(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    pub(crate) fn number<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got {v}")),
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".to_owned());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "learn" => cmd_learn(rest),
        "learn-bb" => cmd_learn_bb(rest),
        "eval" => cmd_eval(rest),
        "gen" => cmd_gen(rest),
        "opt" => cmd_opt(rest),
        "lint" => cmd_lint(rest),
        "analyze" => cmd_analyze(rest),
        "stats" => cmd_stats(rest),
        "trace" => trace_cmd::cmd_trace(rest),
        "top" => top_cmd::cmd_top(rest),
        "blackbox" => cmd_blackbox(rest),
        other => Err(format!("unknown subcommand {other}")),
    }
}

fn read_aig(path: &str) -> Result<Aig, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Aig::from_aiger_ascii(&text).map_err(|e| format!("parsing {path}: {e}"))
}

/// All CLI artifacts (learned AIGER, reports, exports) go through the
/// tmp + fsync + rename protocol, so a crash mid-write can never leave
/// a torn half-file where a previous good artifact used to be.
fn write_file(path: &str, contents: &str) -> Result<(), String> {
    persist::write_atomic(path, contents).map_err(|e| format!("writing {path}: {e}"))
}

/// Parses the crash-safety flags shared by `learn` and `learn-bb` into
/// the learner's [`RunControl`]. The SIGINT/SIGTERM handler is only
/// installed when there is a `--checkpoint` path to suspend into;
/// without one, the default die-on-signal behavior is the honest
/// choice (suspending would silently discard the progress anyway).
fn run_control_of(opts: &Opts) -> Result<RunControl, String> {
    let mut ctl = RunControl::default();
    if let Some(path) = opts.value("checkpoint") {
        ctl.checkpoint_path = Some(std::path::PathBuf::from(path));
        ctl.checkpoint_interval =
            Duration::from_secs_f64(opts.number("checkpoint-interval", 30.0)?);
        ctl.stop = Some(sig::install_stop_flag());
    }
    // SIGUSR1 is observability, not suspension: always armed, so any
    // running `learn`/`learn-bb` can be asked for a flight dump.
    ctl.dump = Some(sig::install_dump_flag());
    if let Some(secs) = opts.value("deadline") {
        let secs: f64 = secs
            .parse()
            .map_err(|_| format!("--deadline expects seconds, got {secs}"))?;
        ctl.deadline = Some(Duration::from_secs_f64(secs));
    }
    // Deterministic suspension for tests and scripts: stop at the Nth
    // safe point instead of on a signal.
    if opts.value("stop-after-safe-points").is_some() {
        ctl.stop_after_safe_points = Some(opts.number("stop-after-safe-points", 0u64)?);
    }
    Ok(ctl)
}

/// Terminal path of a suspended run. The engine already wrote the
/// checkpoint at the safe point it stopped on (when `--checkpoint` was
/// given); flush the report/trace and exit 130 so scripts can tell a
/// suspension from a completed run.
fn suspend_exit(
    state: &LearnState,
    ctl: &RunControl,
    telemetry: &Telemetry,
    opts: &Opts,
    guard: &mut ReportGuard,
) -> Result<(), String> {
    telemetry.set_meta("suspended", true);
    match &ctl.checkpoint_path {
        Some(path) => eprintln!(
            "interrupted at a safe point ({}/{} outputs done, {} queries spent); \
             resume with --resume {}",
            state.outputs_done(),
            state.output_names.len(),
            state.queries_used,
            path.display()
        ),
        None => eprintln!("interrupted at a safe point; no --checkpoint path, progress discarded"),
    }
    finish_run(telemetry, opts, guard)?;
    std::process::exit(130);
}

/// Runs the learner fresh or — with `--resume <checkpoint>` — from a
/// suspended state, returning the completed result or exiting through
/// [`suspend_exit`] on a mid-run suspension.
fn drive_learner<O: Oracle>(
    learner: &mut Learner,
    oracle: &mut O,
    ctl: &RunControl,
    telemetry: &Telemetry,
    opts: &Opts,
    guard: &mut ReportGuard,
) -> Result<LearnResult, String> {
    let outcome = match opts.value("resume") {
        Some(rpath) => {
            let state =
                LearnState::load(rpath).map_err(|e| format!("loading checkpoint {rpath}: {e}"))?;
            learner
                .resume(state, oracle, ctl)
                .map_err(|e| format!("resuming from {rpath}: {e}"))?
        }
        None => learner.learn_with(oracle, ctl),
    };
    match outcome {
        LearnOutcome::Completed(result) => Ok(*result),
        LearnOutcome::Suspended(state) => {
            suspend_exit(&state, ctl, telemetry, opts, guard)?;
            unreachable!("suspend_exit never returns")
        }
    }
}

/// Parses `--check <off|lint|sim|sat>`; `None` when the flag is absent.
fn check_level_of(opts: &Opts) -> Result<Option<cirlearn_synth::VerifyLevel>, String> {
    match opts.value("check") {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|e| format!("--check: {e}")),
    }
}

/// Builds the telemetry handle from `--log-level` / `--verbose`.
///
/// Telemetry is always enabled in the CLI (the overhead is a handful of
/// span timestamps per output); the level only controls what the stderr
/// reporter prints.
fn telemetry_of(opts: &Opts) -> Result<Telemetry, String> {
    let level = match opts.value("log-level") {
        Some(v) => Level::from_str(v)?,
        None if opts.present("verbose") => Level::Debug,
        None => Level::Warn,
    };
    let telemetry = Telemetry::new(Box::new(StderrReporter::new(level)));
    if let Some(path) = opts.value("trace") {
        let writer = TraceWriter::to_file(std::path::Path::new(path))
            .map_err(|e| format!("opening trace file {path}: {e}"))?;
        telemetry.set_trace(writer);
    }
    if let Some(path) = opts.value("status") {
        telemetry.set_status_path(Some(std::path::PathBuf::from(path)));
    }
    // The flight recorder is always on; `--flight <path>` picks where
    // dumps land, `--flight off` turns the recorder off entirely. With
    // neither, dumps go next to the report or trace artifact when one
    // exists, otherwise to the temp dir — a panicking run always
    // leaves a black box somewhere.
    match opts.value("flight") {
        Some("off") => telemetry.disable_flight(),
        Some(path) => telemetry.set_flight_dump_path(Some(std::path::PathBuf::from(path))),
        None => {
            let derived = opts
                .value("report")
                .or_else(|| opts.value("trace"))
                .map(|p| std::path::PathBuf::from(format!("{p}.flight.jsonl")))
                .unwrap_or_else(|| {
                    std::env::temp_dir()
                        .join(format!("cirlearn-{}.flight.jsonl", std::process::id()))
                });
            telemetry.set_flight_dump_path(Some(derived));
        }
    }
    Ok(telemetry)
}

/// Flushes the `--report` JSON and the trace stream even when a run
/// panics or errors out mid-way, so a crashed run still leaves a
/// partial report behind for debugging.
///
/// On the normal path [`finish_run`] disarms the guard after writing
/// the complete report; the armed `Drop` path marks the report's meta
/// with `aborted` before writing whatever the telemetry accumulated.
struct ReportGuard {
    telemetry: Telemetry,
    report_path: Option<String>,
    armed: bool,
}

impl ReportGuard {
    fn new(telemetry: &Telemetry, opts: &Opts) -> ReportGuard {
        ReportGuard {
            telemetry: telemetry.clone(),
            report_path: opts.value("report").map(str::to_owned),
            armed: true,
        }
    }

    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for ReportGuard {
    fn drop(&mut self) {
        if self.armed {
            // The armed path is the black-box moment: dump the flight
            // recorder first (it drains the trace buffers itself, so
            // the ring snapshot includes the run's final events).
            let reason = if std::thread::panicking() {
                "panic"
            } else {
                "abort"
            };
            if let Some(path) = self.telemetry.dump_flight(reason) {
                eprintln!("wrote flight-recorder dump to {}", path.display());
            }
            // Drain buffered per-thread trace chunks (node events,
            // metrics snapshots) *before* appending the abort marker,
            // so the JSONL stream stays well-formed: everything the
            // run buffered lands ahead of the final `aborted` event.
            self.telemetry.flush_trace();
            self.telemetry.trace_attribution();
            self.telemetry.set_meta("aborted", true);
            self.telemetry
                .event(Level::Warn, "run aborted; flushing partial report");
            if let Some(path) = &self.report_path {
                let json = self.telemetry.report().to_json().to_pretty();
                if persist::write_atomic(path, json).is_ok() {
                    eprintln!("wrote partial report to {path}");
                }
            }
        }
        self.telemetry.flush_trace();
    }
}

/// Prints the per-output summary lines on stderr.
fn print_output_summary(result: &LearnResult) {
    for s in &result.outputs {
        eprintln!(
            "  output {:>3} ({}): {} (support {}, {} queries, {:.3}s, gates {} -> {})",
            s.output,
            s.name,
            s.strategy,
            s.support_size,
            s.queries,
            s.elapsed.as_secs_f64(),
            s.gates_before_opt,
            s.gates_after_opt
        );
    }
}

/// Writes the JSON run report when `--report <path>` was given, and
/// prints the per-stage breakdown at the end of a run. Disarms the
/// crash guard: from here the complete report is on disk.
fn finish_run(telemetry: &Telemetry, opts: &Opts, guard: &mut ReportGuard) -> Result<(), String> {
    guard.disarm();
    // Drain per-thread buffers first so the final attribution events
    // land after every buffered node/metrics event in the stream.
    telemetry.flush_trace();
    telemetry.trace_attribution();
    // The final status snapshot: progress pinned, `done: true`, so
    // `cirlearn top --follow` knows to stop.
    telemetry.finalize_status();
    let report = telemetry.report();
    eprint!("{}", report.stage_breakdown());
    if let Some(path) = opts.value("report") {
        write_file(path, &report.to_json().to_pretty())?;
        eprintln!("wrote {path}");
    }
    telemetry.flush_trace();
    Ok(())
}

fn cmd_learn(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &[
            "budget",
            "seed",
            "verilog",
            "check",
            "report",
            "trace",
            "log-level",
            "max-queries",
            "checkpoint",
            "checkpoint-interval",
            "resume",
            "deadline",
            "stop-after-safe-points",
            "status",
            "flight",
        ],
    )?;
    let [input] = opts.positional.as_slice() else {
        return Err("learn expects exactly one input file".to_owned());
    };
    let hidden = read_aig(input)?;
    let mut oracle = CircuitOracle::new(hidden);

    let mut config = if opts.present("paper-scale") {
        LearnerConfig::default()
    } else {
        LearnerConfig::fast()
    };
    config.time_budget = Duration::from_secs_f64(opts.number("budget", 60.0)?);
    config.seed = opts.number("seed", config.seed)?;
    if opts.value("max-queries").is_some() {
        config.max_queries = Some(opts.number("max-queries", 0u64)?);
    }
    if opts.present("no-preprocessing") {
        config.preprocessing = false;
    }
    if let Some(level) = check_level_of(&opts)? {
        config
            .optimize
            .get_or_insert_with(cirlearn_synth::OptimizeConfig::default)
            .verify
            .level = level;
    }
    let telemetry = telemetry_of(&opts)?;
    telemetry.set_meta("command", "learn");
    telemetry.set_meta("case", input);
    telemetry.set_meta("seed", config.seed);
    telemetry.set_meta("budget_s", config.time_budget.as_secs_f64());
    let mut guard = ReportGuard::new(&telemetry, &opts);

    eprintln!(
        "learning {} ({} inputs, {} outputs) ...",
        input,
        oracle.num_inputs(),
        oracle.num_outputs()
    );
    let ctl = run_control_of(&opts)?;
    let mut learner = Learner::with_telemetry(config, telemetry.clone());
    let result = drive_learner(
        &mut learner,
        &mut oracle,
        &ctl,
        &telemetry,
        &opts,
        &mut guard,
    )?;
    print_output_summary(&result);
    if !result.degraded.is_empty() {
        eprintln!(
            "degraded outputs {:?}: synthesized from partial evidence or constants",
            result.degraded
        );
    }
    eprintln!(
        "learned {} gates in {:.1?} with {} queries",
        result.circuit.gate_count(),
        result.elapsed,
        result.queries
    );
    let acc = evaluate_accuracy(
        oracle.reveal(),
        &result.circuit,
        &EvalConfig {
            patterns_per_group: 20_000,
            ..EvalConfig::default()
        },
    );
    let mapped = cirlearn_synth::map::map_gates(&result.circuit).gate_count();
    println!(
        "size={mapped} aig_ands={} accuracy={} time={:.3}s queries={}",
        result.circuit.gate_count(),
        acc,
        result.elapsed.as_secs_f64(),
        result.queries
    );
    if let Some(path) = opts.value("o") {
        // Compact before export so the file passes strict `lint`.
        write_file(path, &result.circuit.cleanup().to_aiger_ascii())?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = opts.value("verilog") {
        write_file(path, &result.circuit.to_verilog("learned"))?;
        eprintln!("wrote {path}");
    }
    finish_run(&telemetry, &opts, &mut guard)
}

/// Learns an *external* black box over the line protocol of
/// [`cirlearn_oracle::ProcessOracle`]. Accuracy cannot be reported (no
/// golden circuit); the learned AIGER is the deliverable.
fn cmd_learn_bb(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &[
            "cmd",
            "args",
            "inputs",
            "outputs",
            "budget",
            "seed",
            "check",
            "report",
            "trace",
            "log-level",
            "oracle-timeout",
            "oracle-retries",
            "oracle-backoff",
            "oracle-respawn",
            "max-queries",
            "checkpoint",
            "checkpoint-interval",
            "resume",
            "deadline",
            "stop-after-safe-points",
            "status",
            "flight",
        ],
    )?;
    let program = opts.value("cmd").ok_or("learn-bb requires --cmd")?;
    let split_names = |s: &str| -> Vec<String> {
        s.split(',')
            .map(|t| t.trim().to_owned())
            .filter(|t| !t.is_empty())
            .collect()
    };
    let inputs = split_names(opts.value("inputs").ok_or("learn-bb requires --inputs")?);
    let outputs = split_names(opts.value("outputs").ok_or("learn-bb requires --outputs")?);
    if inputs.is_empty() || outputs.is_empty() {
        return Err("empty --inputs or --outputs".to_owned());
    }
    let extra_args: Vec<String> = opts
        .value("args")
        .map(|a| a.split_whitespace().map(str::to_owned).collect())
        .unwrap_or_default();
    let arg_refs: Vec<&str> = extra_args.iter().map(String::as_str).collect();
    let mut inner = cirlearn_oracle::ProcessOracle::spawn(program, &arg_refs, inputs, outputs)
        .map_err(|e| e.to_string())?;
    if let Some(secs) = opts.value("oracle-timeout") {
        let secs: f64 = secs
            .parse()
            .map_err(|_| format!("--oracle-timeout expects seconds, got {secs}"))?;
        inner.set_read_timeout(Some(Duration::from_secs_f64(secs)));
    }
    let respawn = match opts.value("oracle-respawn").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => return Err(format!("--oracle-respawn expects on|off, got {other}")),
    };

    let mut config = LearnerConfig::fast();
    config.time_budget = Duration::from_secs_f64(opts.number("budget", 60.0)?);
    config.seed = opts.number("seed", config.seed)?;
    if opts.value("max-queries").is_some() {
        config.max_queries = Some(opts.number("max-queries", 0u64)?);
    }
    if let Some(level) = check_level_of(&opts)? {
        config
            .optimize
            .get_or_insert_with(cirlearn_synth::OptimizeConfig::default)
            .verify
            .level = level;
    }
    let telemetry = telemetry_of(&opts)?;
    telemetry.set_meta("command", "learn-bb");
    telemetry.set_meta("case", program);
    telemetry.set_meta("seed", config.seed);
    let mut guard = ReportGuard::new(&telemetry, &opts);

    let policy = RetryPolicy {
        max_retries: opts.number("oracle-retries", 3u32)?,
        backoff_base: Duration::from_secs_f64(opts.number("oracle-backoff", 0.05)?),
        respawn,
        seed: config.seed,
        ..RetryPolicy::default()
    };
    let mut oracle = ResilientOracle::with_telemetry(inner, policy, telemetry.clone());
    oracle.set_deadline(Some(std::time::Instant::now() + config.time_budget));
    let ctl = run_control_of(&opts)?;
    let mut learner = Learner::with_telemetry(config, telemetry.clone());
    let result = drive_learner(
        &mut learner,
        &mut oracle,
        &ctl,
        &telemetry,
        &opts,
        &mut guard,
    )?;
    print_output_summary(&result);
    let stats = oracle.fault_stats();
    if stats.retries > 0 || stats.respawns > 0 {
        eprintln!(
            "oracle faults: {} retries, {} timeouts, {} respawns",
            stats.retries, stats.timeouts, stats.respawns
        );
    }
    if result.faults.any() {
        eprintln!(
            "degraded {} output(s){}",
            result.faults.degraded_outputs,
            result
                .faults
                .oracle_error
                .as_deref()
                .map(|e| format!(" ({e})"))
                .unwrap_or_default()
        );
    }
    let mapped = cirlearn_synth::map::map_gates(&result.circuit).gate_count();
    println!(
        "size={mapped} aig_ands={} time={:.3}s queries={}",
        result.circuit.gate_count(),
        result.elapsed.as_secs_f64(),
        result.queries
    );
    if let Some(path) = opts.value("o") {
        write_file(path, &result.circuit.cleanup().to_aiger_ascii())?;
        eprintln!("wrote {path}");
    }
    finish_run(&telemetry, &opts, &mut guard)
}

fn cmd_eval(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["patterns", "seed"])?;
    let [golden_path, candidate_path] = opts.positional.as_slice() else {
        return Err("eval expects two input files".to_owned());
    };
    let golden = read_aig(golden_path)?;
    let candidate = read_aig(candidate_path)?;
    if golden.num_inputs() != candidate.num_inputs()
        || golden.num_outputs() != candidate.num_outputs()
    {
        return Err(format!(
            "interface mismatch: {}x{} vs {}x{}",
            golden.num_inputs(),
            golden.num_outputs(),
            candidate.num_inputs(),
            candidate.num_outputs()
        ));
    }
    let acc = evaluate_accuracy(
        &golden,
        &candidate,
        &EvalConfig {
            patterns_per_group: opts.number("patterns", 100_000usize)?,
            seed: opts.number("seed", 0xE7A1u64)?,
            ..EvalConfig::default()
        },
    );
    println!(
        "accuracy={} hits={} total={} meets_bar={}",
        acc,
        acc.hits,
        acc.total,
        acc.meets_contest_bar()
    );
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["seed"])?;
    let [category, pi, po] = opts.positional.as_slice() else {
        return Err("gen expects: <category> <#PI> <#PO>".to_owned());
    };
    let pi: usize = pi.parse().map_err(|_| format!("bad #PI {pi}"))?;
    let po: usize = po.parse().map_err(|_| format!("bad #PO {po}"))?;
    let seed = opts.number("seed", 1u64)?;
    let cat = match category.to_ascii_lowercase().as_str() {
        "neq" => generate::Category::Neq,
        "eco" => generate::Category::Eco,
        "diag" => generate::Category::Diag,
        "data" => generate::Category::Data,
        other => return Err(format!("unknown category {other} (neq|eco|diag|data)")),
    };
    let oracle = generate::case(cat, pi, po, seed);
    // Compact before export so the benchmark passes strict `lint`.
    let text = oracle.reveal().cleanup().to_aiger_ascii();
    match opts.value("o") {
        Some(path) => {
            write_file(path, &text)?;
            eprintln!(
                "wrote {path}: {} ({} gates)",
                cat,
                oracle.reveal().gate_count()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_opt(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["budget", "check", "log-level"])?;
    let [input] = opts.positional.as_slice() else {
        return Err("opt expects exactly one input file".to_owned());
    };
    let aig = read_aig(input)?;
    let mut cfg = cirlearn_synth::OptimizeConfig {
        time_budget: Duration::from_secs_f64(opts.number("budget", 60.0)?),
        ..cirlearn_synth::OptimizeConfig::default()
    };
    if let Some(level) = check_level_of(&opts)? {
        cfg.verify.level = level;
    }
    let telemetry = telemetry_of(&opts)?;
    let before = aig.gate_count();
    let best = cirlearn_synth::optimize_with(&aig, &cfg, &telemetry);
    println!("gates: {before} -> {}", best.gate_count());
    if let Some(path) = opts.value("o") {
        write_file(path, &best.cleanup().to_aiger_ascii())?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// Runs the strict structural linter over one or more AIGER files
/// (`--allow-dangling` downgrades unreferenced-AND violations).
///
/// Prints one line per violation (`file: violation`) and fails (nonzero
/// exit) if any file has violations, so it slots directly into CI.
fn cmd_lint(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &[])?;
    if opts.positional.is_empty() {
        return Err("lint expects one or more input files".to_owned());
    }
    let linter = cirlearn_verify::Linter::new().allow_dangling(opts.present("allow-dangling"));
    let mut dirty = 0usize;
    for path in &opts.positional {
        let aig = read_aig(path)?;
        let violations = linter.lint(&aig);
        if violations.is_empty() {
            eprintln!(
                "{path}: clean ({} inputs, {} outputs, {} gates)",
                aig.num_inputs(),
                aig.num_outputs(),
                aig.gate_count()
            );
        } else {
            dirty += 1;
            for v in &violations {
                println!("{path}: {v}");
            }
        }
    }
    if dirty > 0 {
        return Err(format!(
            "{dirty} of {} file(s) failed lint",
            opts.positional.len()
        ));
    }
    Ok(())
}

/// Runs the full static-analysis suite (`cirlearn-analyze`) over one or
/// more AIGER files: structural lint plus ternary constant propagation,
/// dead-node and duplicate detection, and structural metrics.
///
/// Prints a severity-ordered findings table per file, writes a combined
/// JSON report when `--report <path>` is given, and fails (nonzero
/// exit) when any finding reaches the `--deny` severity (default
/// `warning`; `--deny error` tolerates waste but not corruption,
/// `--deny info` is the strictest gate).
fn cmd_analyze(args: &[String]) -> Result<(), String> {
    use cirlearn_analyze::{AnalyzeConfig, Analyzer, Severity};
    use cirlearn_telemetry::json::Json;

    let opts = Opts::parse(args, &["deny", "report", "fanout-threshold"])?;
    if opts.positional.is_empty() {
        return Err("analyze expects one or more input files".to_owned());
    }
    let deny = match opts.value("deny") {
        None => Severity::Warning,
        Some(v) => v.parse().map_err(|e| format!("--deny: {e}"))?,
    };
    let config = AnalyzeConfig {
        fanout_threshold: opts.number(
            "fanout-threshold",
            AnalyzeConfig::default().fanout_threshold,
        )?,
        ..AnalyzeConfig::default()
    };
    let analyzer = Analyzer::with_config(config);

    let mut dirty = 0usize;
    let mut file_reports: Vec<Json> = Vec::new();
    for path in &opts.positional {
        let aig = read_aig(path)?;
        let report = analyzer.analyze(&aig);
        let denied = report.count_at_least(deny);
        if denied == 0 {
            eprintln!(
                "{path}: clean at --deny {deny} ({} finding(s) below the gate)",
                report.findings.len()
            );
        } else {
            dirty += 1;
            println!("{path}: {denied} finding(s) at or above {deny}");
        }
        print!("{}", report.render_table());
        if opts.value("report").is_some() {
            let mut fields = vec![
                ("path", Json::from(path.as_str())),
                (
                    "findings",
                    Json::Array(report.findings.iter().map(|f| f.to_json()).collect()),
                ),
            ];
            if let Some(m) = &report.metrics {
                fields.push(("metrics", m.to_json()));
            }
            file_reports.push(Json::object(fields));
        }
    }
    if let Some(path) = opts.value("report") {
        let json = Json::object([
            ("schema_version", Json::from(1u64)),
            ("deny", Json::from(deny.as_str())),
            ("files", Json::Array(file_reports)),
        ]);
        write_file(path, &json.to_pretty())?;
        eprintln!("wrote {path}");
    }
    if dirty > 0 {
        return Err(format!(
            "{dirty} of {} file(s) failed analysis at --deny {deny}",
            opts.positional.len()
        ));
    }
    Ok(())
}

/// Serves a deterministic synthetic benchmark over the
/// [`cirlearn_oracle::ProcessOracle`] line protocol (one line of 0/1
/// input bits in, one line of output bits out), so `learn-bb` — and
/// the kill/resume chaos harness — have a real external black box to
/// talk to without any extra tooling.
///
/// `--support K` picks the per-output cone size for the `neq`/`eco`
/// generators (the FBDT difficulty knob); `--flake-every N` answers
/// every Nth query with a deliberately malformed line, exercising the
/// resilient transport's retry path deterministically.
fn cmd_blackbox(args: &[String]) -> Result<(), String> {
    use std::io::{BufRead, Write};

    let opts = Opts::parse(args, &["seed", "support", "flake-every"])?;
    let [category, pi, po] = opts.positional.as_slice() else {
        return Err("blackbox expects: <category> <#PI> <#PO>".to_owned());
    };
    let pi: usize = pi.parse().map_err(|_| format!("bad #PI {pi}"))?;
    let po: usize = po.parse().map_err(|_| format!("bad #PO {po}"))?;
    let seed = opts.number("seed", 1u64)?;
    let flake_every: u64 = opts.number("flake-every", 0u64)?;
    let mut oracle = match (
        category.to_ascii_lowercase().as_str(),
        opts.value("support"),
    ) {
        ("neq", Some(_)) => {
            generate::neq_case_with_support(pi, po, opts.number("support", 0usize)?, seed)
        }
        ("eco", Some(_)) => {
            generate::eco_case_with_support(pi, po, opts.number("support", 0usize)?, seed)
        }
        (_, Some(_)) => {
            return Err("--support only applies to the neq|eco categories".to_owned());
        }
        ("neq", None) => generate::case(generate::Category::Neq, pi, po, seed),
        ("eco", None) => generate::case(generate::Category::Eco, pi, po, seed),
        ("diag", None) => generate::case(generate::Category::Diag, pi, po, seed),
        ("data", None) => generate::case(generate::Category::Data, pi, po, seed),
        (other, None) => return Err(format!("unknown category {other} (neq|eco|diag|data)")),
    };
    let stdin = std::io::stdin().lock();
    let mut stdout = std::io::stdout().lock();
    let mut served = 0u64;
    for line in stdin.lines() {
        let line = line.map_err(|e| format!("reading query: {e}"))?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.len() != pi || !line.bytes().all(|b| b == b'0' || b == b'1') {
            return Err(format!("malformed query (want {pi} bits of 0/1): {line}"));
        }
        served += 1;
        let answer = if flake_every > 0 && served.is_multiple_of(flake_every) {
            // A deliberately bad answer: wrong width, non-binary.
            "?".to_owned()
        } else {
            let assignment = cirlearn_logic::Assignment::from_bits(line.bytes().map(|b| b == b'1'));
            oracle
                .query(&assignment)
                .into_iter()
                .map(|b| if b { '1' } else { '0' })
                .collect()
        };
        writeln!(stdout, "{answer}").map_err(|e| format!("writing answer: {e}"))?;
        stdout
            .flush()
            .map_err(|e| format!("flushing answer: {e}"))?;
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &[])?;
    let [input] = opts.positional.as_slice() else {
        return Err("stats expects exactly one input file".to_owned());
    };
    let aig = read_aig(input)?;
    println!(
        "inputs={} outputs={} gates={} mapped={} depth={} nodes={}",
        aig.num_inputs(),
        aig.num_outputs(),
        aig.gate_count(),
        cirlearn_synth::map::map_gates(&aig).gate_count(),
        aig.depth(),
        aig.node_count()
    );
    for (k, (_, name)) in aig.outputs().iter().enumerate() {
        let sup = aig.output_support(k);
        println!("  output {k} ({name}): structural support {}", sup.len());
    }
    Ok(())
}
