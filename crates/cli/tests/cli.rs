//! End-user integration: drive the `cirlearn` binary through a full
//! generate → inspect → learn → evaluate round trip.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cirlearn"))
}

fn tempdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cirlearn-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn gen_learn_eval_roundtrip() {
    let dir = tempdir();
    let hidden = dir.join("hidden.aag");
    let learned = dir.join("learned.aag");
    let verilog = dir.join("learned.v");

    // gen
    let out = bin()
        .args(["gen", "diag", "24", "2", "--seed", "11", "-o"])
        .arg(&hidden)
        .output()
        .expect("run gen");
    assert!(
        out.status.success(),
        "gen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(hidden.exists());

    // stats
    let out = bin().arg("stats").arg(&hidden).output().expect("run stats");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("inputs=24"), "{stdout}");
    assert!(stdout.contains("outputs=2"), "{stdout}");

    // learn
    let out = bin()
        .args(["learn"])
        .arg(&hidden)
        .args(["--budget", "20", "-o"])
        .arg(&learned)
        .arg("--verilog")
        .arg(&verilog)
        .output()
        .expect("run learn");
    assert!(
        out.status.success(),
        "learn failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("accuracy=100.000%"), "{stdout}");
    assert!(learned.exists() && verilog.exists());
    let v = std::fs::read_to_string(&verilog).expect("read verilog");
    assert!(v.starts_with("module learned ("));

    // eval
    let out = bin()
        .arg("eval")
        .arg(&hidden)
        .arg(&learned)
        .args(["--patterns", "5000"])
        .output()
        .expect("run eval");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("meets_bar=true"), "{stdout}");

    // opt is a no-op-or-better on the learned circuit
    let out = bin()
        .arg("opt")
        .arg(&learned)
        .args(["--budget", "5"])
        .output()
        .expect("run opt");
    assert!(out.status.success());

    // Both export paths (gen and learn -o) are analyze-clean at the
    // default severity gate.
    let out = bin()
        .arg("analyze")
        .arg(&hidden)
        .arg(&learned)
        .output()
        .expect("run analyze");
    assert!(
        out.status.success(),
        "exported circuits failed analyze: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn learn_report_stage_queries_sum_to_stdout_total() {
    use cirlearn_telemetry::{counters, json::Json, RunReport};

    // Own directory: gen_learn_eval_roundtrip removes the shared one.
    let dir = std::env::temp_dir().join(format!("cirlearn-cli-report-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let hidden = dir.join("hidden.aag");
    let report = dir.join("report.json");

    let out = bin()
        .args(["gen", "eco", "16", "2", "--seed", "31", "-o"])
        .arg(&hidden)
        .output()
        .expect("run gen");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["learn"])
        .arg(&hidden)
        .args(["--budget", "30", "--report"])
        .arg(&report)
        .output()
        .expect("run learn");
    assert!(
        out.status.success(),
        "learn failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let queries: u64 = stdout
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("queries="))
        .expect("stdout reports queries=")
        .parse()
        .expect("queries= is a number");

    let text = std::fs::read_to_string(&report).expect("report file written");
    let json = Json::parse(&text).expect("report is valid JSON");
    let run = RunReport::from_json(&json).expect("report matches the schema");
    assert_eq!(
        run.top_level_counter_sum(counters::ORACLE_QUERIES),
        queries,
        "per-stage queries in {report:?} must sum to the stdout total"
    );
    assert_eq!(run.counter(counters::ORACLE_QUERIES), queries);
    assert!(!run.outputs.is_empty(), "report carries per-output stats");
    assert_eq!(run.meta.get("command").map(String::as_str), Some("learn"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn learn_with_sat_checking_stays_clean_and_reports_counters() {
    use cirlearn_telemetry::{counters, json::Json, RunReport};

    let dir = std::env::temp_dir().join(format!("cirlearn-cli-check-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let hidden = dir.join("hidden.aag");
    let report = dir.join("report.json");

    let out = bin()
        .args(["gen", "diag", "16", "2", "--seed", "7", "-o"])
        .arg(&hidden)
        .output()
        .expect("run gen");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["learn"])
        .arg(&hidden)
        .args(["--budget", "30", "--check", "sat", "--report"])
        .arg(&report)
        .output()
        .expect("run learn");
    assert!(
        out.status.success(),
        "learn --check sat failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&report).expect("report file written");
    let json = Json::parse(&text).expect("report is valid JSON");
    let run = RunReport::from_json(&json).expect("report matches the schema");
    assert!(
        run.counter(counters::VERIFY_CHECKS) > 0,
        "SAT checking must verify at least one optimization pass"
    );
    assert_eq!(
        run.counter(counters::VERIFY_REJECTED_PASSES),
        0,
        "no bundled pass may be rejected by the checker"
    );
    assert_eq!(run.counter(counters::VERIFY_LINT_VIOLATIONS), 0);
    assert_eq!(run.counter(counters::VERIFY_WITNESSES), 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lint_accepts_clean_files_and_rejects_dangling_nodes() {
    let dir = std::env::temp_dir().join(format!("cirlearn-cli-lint-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let clean = dir.join("clean.aag");
    let dangling = dir.join("dangling.aag");

    let out = bin()
        .args(["gen", "neq", "12", "2", "--seed", "3", "-o"])
        .arg(&clean)
        .output()
        .expect("run gen");
    assert!(out.status.success());

    let out = bin().arg("lint").arg(&clean).output().expect("run lint");
    assert!(
        out.status.success(),
        "lint rejected a generated circuit: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("clean"));

    // Hand-written file whose single AND never feeds an output: parses
    // fine, but the strict linter must flag it.
    std::fs::write(&dangling, "aag 3 2 0 1 1\n2\n4\n2\n6 2 4\n").expect("write aag");
    let out = bin().arg("lint").arg(&dangling).output().expect("run lint");
    assert!(!out.status.success(), "dangling AND must fail lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("unreachable from every output"), "{stdout}");

    // The escape hatch tolerates exactly that class of violation.
    let out = bin()
        .args(["lint", "--allow-dangling"])
        .arg(&dangling)
        .output()
        .expect("run lint");
    assert!(
        out.status.success(),
        "--allow-dangling must accept the file: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_gates_on_severity_and_writes_a_report() {
    use cirlearn_telemetry::json::Json;

    let dir = std::env::temp_dir().join(format!("cirlearn-cli-analyze-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let clean = dir.join("clean.aag");
    let dangling = dir.join("dangling.aag");
    let report = dir.join("analysis.json");

    let out = bin()
        .args(["gen", "data", "12", "2", "--seed", "5", "-o"])
        .arg(&clean)
        .output()
        .expect("run gen");
    assert!(out.status.success());

    // A generated circuit is clean at the default (warning) gate.
    let out = bin()
        .arg("analyze")
        .arg(&clean)
        .output()
        .expect("run analyze");
    assert!(
        out.status.success(),
        "analyze rejected a generated circuit: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("clean"));

    // Hand-written file with a dead AND: the parser accepts it, the
    // dead analysis must flag it, and the default gate must trip.
    std::fs::write(&dangling, "aag 3 2 0 1 1\n2\n4\n2\n6 2 4\n").expect("write aag");
    let out = bin()
        .arg("analyze")
        .arg(&dangling)
        .arg("--report")
        .arg(&report)
        .output()
        .expect("run analyze");
    assert!(!out.status.success(), "dead AND must fail the default gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("unreachable from every output"), "{stdout}");

    // The JSON report names the file, the finding and the metrics.
    let text = std::fs::read_to_string(&report).expect("report written");
    let json = Json::parse(&text).expect("report is valid JSON");
    let files = json
        .get("files")
        .and_then(Json::as_array)
        .expect("files array");
    assert_eq!(files.len(), 1);
    let findings = files[0]
        .get("findings")
        .and_then(Json::as_array)
        .expect("findings array");
    assert!(!findings.is_empty());
    assert_eq!(
        findings[0].get("analysis").and_then(Json::as_str),
        Some("dead")
    );
    assert!(files[0].get("metrics").is_some(), "{text}");

    // Raising the gate to `error` tolerates the waste.
    let out = bin()
        .args(["analyze", "--deny", "error"])
        .arg(&dangling)
        .output()
        .expect("run analyze");
    assert!(
        out.status.success(),
        "--deny error must tolerate warnings: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// Chaos test: `learn-bb` against a scripted flaky black box that
/// answers garbage once, hangs once and crashes once — the run must
/// complete, recover through retries and respawns, and still emit a
/// lint-clean circuit.
#[test]
fn learn_bb_survives_a_flaky_black_box() {
    use cirlearn_telemetry::{json::Json, RunReport};

    let dir = std::env::temp_dir().join(format!("cirlearn-cli-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let state = dir.join("state");
    std::fs::create_dir_all(&state).expect("create state dir");
    let script = dir.join("flaky.sh");
    let learned = dir.join("learned.aag");
    let report = dir.join("report.json");

    // y = a XOR b. The query counter persists in the state dir across
    // incarnations; each fault is marker-guarded so it fires exactly
    // once in the whole run: a malformed answer at query 5, a hang at
    // query 9 (the 1 s watchdog must fire long before the 5 s sleep
    // ends), a crash at query 13.
    std::fs::write(
        &script,
        r#"state=$1
n=0
[ -f "$state/count" ] && read n < "$state/count"
while read line; do
  n=$((n+1))
  echo "$n" > "$state/count"
  if [ "$n" -eq 5 ] && [ ! -e "$state/malformed" ]; then : > "$state/malformed"; echo zz; continue; fi
  if [ "$n" -eq 9 ] && [ ! -e "$state/hang" ]; then : > "$state/hang"; sleep 5; fi
  if [ "$n" -eq 13 ] && [ ! -e "$state/crash" ]; then : > "$state/crash"; exit 7; fi
  case "$line" in
    00*|11*) echo 0 ;;
    *) echo 1 ;;
  esac
done
"#,
    )
    .expect("write flaky black box");

    let out = bin()
        .args(["learn-bb", "--cmd", "sh", "--args"])
        .arg(format!("{} {}", script.display(), state.display()))
        .args([
            "--inputs",
            "a,b,n0,n1",
            "--outputs",
            "y",
            "--budget",
            "60",
            "--oracle-timeout",
            "1",
            "--oracle-retries",
            "4",
            "--oracle-backoff",
            "0.01",
            "--report",
        ])
        .arg(&report)
        .arg("-o")
        .arg(&learned)
        .output()
        .expect("run learn-bb");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "learn-bb failed: {stderr}");

    // Every scripted fault actually fired.
    for marker in ["malformed", "hang", "crash"] {
        assert!(
            state.join(marker).exists(),
            "fault {marker} never fired; the chaos run tested nothing"
        );
    }

    // The run report records the recovery.
    let text = std::fs::read_to_string(&report).expect("report file written");
    let json = Json::parse(&text).expect("report is valid JSON");
    let run = RunReport::from_json(&json).expect("report matches the schema");
    assert!(run.faults.retries > 0, "retries must be recorded: {text}");
    assert!(run.faults.respawns > 0, "respawns must be recorded: {text}");
    assert!(run.faults.timeouts > 0, "the hang must register: {text}");
    assert_eq!(
        run.faults.degraded_outputs, 0,
        "transient faults must be absorbed, not degraded: {text}"
    );

    // The learned circuit is still strict-lint clean.
    let out = bin().arg("lint").arg(&learned).output().expect("run lint");
    assert!(
        out.status.success(),
        "chaos-learned circuit failed lint: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_flag_rejects_unknown_levels() {
    let out = bin()
        .args(["learn", "whatever.aag", "--check", "paranoid"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--check"), "{stderr}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = bin()
        .args(["stats", "/nonexistent/file.aag"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error: reading"), "{stderr}");
}

#[test]
fn status_channel_feeds_the_top_subcommand() {
    use cirlearn_telemetry::{json::Json, StatusSnapshot};

    // A learn run with --status leaves a finalized snapshot behind;
    // `top --once` renders it (the live-follow loop exercises exactly
    // the same read path, then waits — --once is the scriptable mode).
    let dir = std::env::temp_dir().join(format!("cirlearn-cli-status-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let hidden = dir.join("hidden.aag");
    let status = dir.join("status.json");

    let out = bin()
        .args(["gen", "eco", "16", "2", "--seed", "31", "-o"])
        .arg(&hidden)
        .output()
        .expect("run gen");
    assert!(out.status.success());

    let out = bin()
        .arg("learn")
        .arg(&hidden)
        .args(["--budget", "20"])
        .arg("--status")
        .arg(&status)
        .output()
        .expect("run learn");
    assert!(
        out.status.success(),
        "learn failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(status.exists(), "--status wrote a snapshot");

    // The snapshot parses through the public API and is finalized.
    let text = std::fs::read_to_string(&status).expect("read status");
    let snap = StatusSnapshot::parse(&text).expect("status parses");
    assert!(snap.done, "finished runs leave a done snapshot");
    assert_eq!(snap.outputs_done, snap.outputs_total);
    assert!(snap.queries > 0, "query gauge advanced");
    assert!(
        Json::parse(&text).is_ok(),
        "snapshot stays plain JSON for other tooling"
    );

    // `top --once` renders it without error.
    let out = bin()
        .args(["top"])
        .arg(&status)
        .arg("--once")
        .output()
        .expect("run top");
    assert!(
        out.status.success(),
        "top failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("done"), "{stdout}");
    assert!(stdout.contains("outputs"), "{stdout}");
    assert!(stdout.contains("queries"), "{stdout}");

    // A missing file is a clean error in --once mode.
    let out = bin()
        .args(["top", "/nonexistent/status.json", "--once"])
        .output()
        .expect("run top");
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
#[cfg(unix)]
fn faulted_run_leaves_a_flight_dump_black_box() {
    use cirlearn_telemetry::json::Json;

    // The oracle fault-dump hook: a black box that dies mid-run and
    // refuses to respawn latches a terminal failure, and the latch
    // dumps the flight recorder — the events leading up to the fault
    // are exactly what a post-mortem needs. The wrapper script serves
    // 200 queries on its first life, then refuses every respawn (the
    // marker file), so the resilient layer's respawn + replay probe
    // path runs and still ends in a terminal fault.
    let dir = std::env::temp_dir().join(format!("cirlearn-cli-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let flight = dir.join("dead.flight.jsonl");
    let marker = dir.join("spawned-once");
    let script = dir.join("mortal-oracle.sh");
    // The relay must forward line by line (`head` would block-buffer
    // into the pipe and stall the query/answer lockstep), and it must
    // cut the feed after 200 queries so the blackbox sees EOF and
    // dies mid-run.
    std::fs::write(
        &script,
        format!(
            concat!(
                "#!/bin/sh\n",
                "if [ -e \"{m}\" ]; then exit 1; fi\n",
                "touch \"{m}\"\n",
                "n=0\n",
                "while [ $n -lt 200 ] && read -r line; do\n",
                "  echo \"$line\"\n",
                "  n=$((n+1))\n",
                "done | \"{bin}\" blackbox neq 16 2 --seed 9\n",
            ),
            m = marker.display(),
            bin = env!("CARGO_BIN_EXE_cirlearn"),
        ),
    )
    .expect("write wrapper script");
    use std::os::unix::fs::PermissionsExt as _;
    std::fs::set_permissions(&script, std::fs::Permissions::from_mode(0o755))
        .expect("chmod wrapper");

    let out = bin()
        .arg("learn-bb")
        .args(["--cmd"])
        .arg(&script)
        .args([
            "--inputs",
            &(0..16)
                .map(|k| format!("i{k}"))
                .collect::<Vec<_>>()
                .join(","),
            "--outputs",
            "y0,y1",
        ])
        .args(["--seed", "5", "--budget", "60", "--check", "off"])
        .args(["--oracle-timeout", "5"])
        .arg("--flight")
        .arg(&flight)
        .arg("-o")
        .arg(dir.join("dead.aag"))
        .output()
        .expect("run learn-bb");
    // The run degrades and finishes (whatever the exit code policy for
    // faulted runs is); what matters here is the black box it left.
    assert!(
        flight.exists(),
        "the terminal fault left a flight dump (stderr: {})",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&flight).expect("read dump");
    let mut reasons = Vec::new();
    for line in text.lines() {
        let parsed = Json::parse(line).expect("dump lines are valid JSON");
        if parsed.get("kind").and_then(Json::as_str) == Some("flight") {
            if let Some(r) = parsed.get("reason").and_then(Json::as_str) {
                reasons.push(r.to_owned());
            }
        }
    }
    assert!(
        reasons.iter().any(|r| r == "fault"),
        "dump marker names the fault trigger, got {reasons:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
