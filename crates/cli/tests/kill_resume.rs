//! Kill/resume chaos drill for the checkpoint state machine, end to
//! end through the real binary.
//!
//! A `learn-bb` process learns a deterministic external black box (the
//! `cirlearn blackbox` subcommand) while writing a checkpoint at every
//! safe point. The test SIGKILLs it at randomized times — no graceful
//! handler runs, exactly like a crash or OOM kill — resumes from
//! whatever checkpoint survived, and repeats until a segment finishes.
//! The stitched-together run must then be *equivalent* to an
//! uninterrupted reference run: same final query count (the budget
//! ledger carries across segments) and a SAT-proven identical circuit
//! function.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use cirlearn_aig::Aig;
use cirlearn_sat::check_equivalence;

const BIN: &str = env!("CARGO_BIN_EXE_cirlearn");
const NUM_INPUTS: usize = 26;
const BLACKBOX_ARGS: &str = "blackbox neq 26 2 --seed 131 --support 22";

/// xorshift64* — a tiny deterministic PRNG for the kill schedule, so a
/// failing schedule can be replayed from the seed.
struct KillRng(u64);

impl KillRng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn input_names() -> String {
    (0..NUM_INPUTS)
        .map(|k| format!("i{k}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Spawns `learn-bb` against the synthetic black box. `resume_from`
/// continues from a checkpoint; `checkpoint` (interval 0 = every safe
/// point) arms crash recovery.
fn spawn_learn(out: &Path, checkpoint: Option<&Path>, resume_from: Option<&Path>) -> Child {
    let mut cmd = Command::new(BIN);
    cmd.arg("learn-bb")
        .args(["--cmd", BIN, "--args", BLACKBOX_ARGS])
        .args(["--inputs", &input_names(), "--outputs", "y0,y1"])
        .args(["--seed", "7", "--budget", "600", "--max-queries", "60000"])
        .args(["--check", "off"])
        .arg("-o")
        .arg(out)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(ck) = checkpoint {
        cmd.arg("--checkpoint").arg(ck);
        cmd.args(["--checkpoint-interval", "0"]);
    }
    if let Some(ck) = resume_from {
        cmd.arg("--resume").arg(ck);
    }
    cmd.spawn().expect("spawn learn-bb")
}

/// Runs a learn to completion, returning its stdout summary line.
fn run_to_completion(out: &Path, checkpoint: Option<&Path>, resume_from: Option<&Path>) -> String {
    let child = spawn_learn(out, checkpoint, resume_from);
    let output = child.wait_with_output().expect("wait learn-bb");
    assert!(
        output.status.success(),
        "learn-bb failed: {:?}",
        output.status
    );
    String::from_utf8(output.stdout).expect("utf8 stdout")
}

/// Extracts `queries=N` from the CLI's stdout summary line.
fn queries_of(stdout: &str) -> u64 {
    stdout
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("queries=")?.parse().ok())
        .expect("stdout carries queries=N")
}

fn read_aig(path: &Path) -> Aig {
    let text = std::fs::read_to_string(path).expect("read AIGER");
    Aig::from_aiger_ascii(&text).expect("parse AIGER")
}

#[test]
fn sigkilled_run_resumes_to_the_reference_circuit() {
    let dir = std::env::temp_dir().join(format!("cirlearn-kill-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ck: PathBuf = dir.join("run.clck");
    let ref_out = dir.join("reference.aag");
    let chaos_out = dir.join("chaos.aag");

    // Uninterrupted reference run (no checkpointing at all).
    let ref_stdout = run_to_completion(&ref_out, None, None);
    let ref_queries = queries_of(&ref_stdout);

    // Chaos loop: SIGKILL at randomized points, then resume from the
    // surviving checkpoint. Kill delays sweep the whole run length so
    // kills land in support sampling, FBDT expansion and the tail.
    let mut rng = KillRng(0x5EED_CAFE);
    let mut segments = 0u32;
    let mut kills = 0u32;
    let final_stdout = loop {
        segments += 1;
        assert!(segments <= 60, "chaos run failed to converge");
        let resume_from = ck.exists().then_some(ck.as_path());
        let mut child = spawn_learn(&chaos_out, Some(&ck), resume_from);
        let delay = Duration::from_millis(20 + rng.next() % 700);
        let deadline = std::time::Instant::now() + delay;
        let finished = loop {
            if let Some(status) = child.try_wait().expect("try_wait") {
                break Some(status);
            }
            if std::time::Instant::now() >= deadline {
                break None;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        match finished {
            Some(status) => {
                assert!(status.success(), "learn-bb segment failed: {status:?}");
                let mut stdout = String::new();
                use std::io::Read as _;
                child
                    .stdout
                    .take()
                    .expect("stdout piped")
                    .read_to_string(&mut stdout)
                    .expect("read stdout");
                break stdout;
            }
            None => {
                // SIGKILL: no handler, no atexit — a genuine crash.
                child.kill().expect("kill");
                child.wait().expect("reap");
                kills += 1;
            }
        }
    };

    assert!(
        kills >= 1,
        "kill delays never landed mid-run; lower the delay range"
    );
    assert_eq!(
        queries_of(&final_stdout),
        ref_queries,
        "cumulative query ledger must match the uninterrupted run"
    );

    // SAT-CEC: the stitched-together circuit computes the reference
    // function on every input.
    let reference = read_aig(&ref_out);
    let chaos = read_aig(&chaos_out);
    assert!(
        check_equivalence(&reference, &chaos).is_equivalent(),
        "resumed circuit diverged from the uninterrupted reference"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigusr1_mid_run_dumps_a_parseable_flight_recording() {
    use cirlearn_telemetry::json::Json;

    // SIGUSR1 is observability, not suspension: the run must dump the
    // flight recorder at the next safe point and then finish normally,
    // and the dump must be readable by the offline trace tooling.
    let dir = std::env::temp_dir().join(format!("cirlearn-usr1-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let out = dir.join("usr1.aag");
    let flight = dir.join("usr1.flight.jsonl");

    let mut child = Command::new(BIN)
        .arg("learn-bb")
        .args(["--cmd", BIN, "--args", BLACKBOX_ARGS])
        .args(["--inputs", &input_names(), "--outputs", "y0,y1"])
        .args(["--seed", "7", "--budget", "600", "--max-queries", "60000"])
        .args(["--check", "off"])
        .arg("--flight")
        .arg(&flight)
        .arg("-o")
        .arg(&out)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn learn-bb");

    // Let the run get going, then poke it until a dump lands (the
    // signal is re-sent on a short cadence so the test is robust to
    // machine speed; each dump atomically replaces the file).
    std::thread::sleep(Duration::from_millis(100));
    let mut signalled = false;
    for _ in 0..100 {
        if child.try_wait().expect("try_wait").is_some() {
            break;
        }
        let sent = Command::new("kill")
            .args(["-USR1", &child.id().to_string()])
            .status()
            .expect("send SIGUSR1");
        signalled |= sent.success();
        if flight.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        signalled,
        "never managed to signal the run; it exited too fast"
    );
    let status = child.wait().expect("wait learn-bb");
    assert!(
        status.success(),
        "SIGUSR1 must not disturb the run: {status:?}"
    );
    assert!(flight.exists(), "signal dump was written");

    // The dump is well-formed JSONL in the trace envelope: every line
    // parses, t_us is monotone per tid, and the flight marker names
    // the trigger.
    let text = std::fs::read_to_string(&flight).expect("read dump");
    let mut last_by_tid: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let mut kinds = std::collections::BTreeSet::new();
    let mut reason = None;
    for line in text.lines() {
        let parsed = Json::parse(line).expect("dump lines are valid JSON");
        let tid = parsed.get("tid").and_then(Json::as_u64).expect("tid");
        let t_us = parsed.get("t_us").and_then(Json::as_u64).expect("t_us");
        let last = last_by_tid.entry(tid).or_insert(0);
        assert!(*last <= t_us, "t_us went backwards within tid {tid}");
        *last = t_us;
        let kind = parsed.get("kind").and_then(Json::as_str).expect("kind");
        kinds.insert(kind.to_owned());
        if kind == "flight" {
            reason = parsed
                .get("reason")
                .and_then(Json::as_str)
                .map(str::to_owned);
        }
    }
    assert!(kinds.contains("flight"), "dump carries the flight marker");
    assert_eq!(
        reason.as_deref(),
        Some("signal"),
        "marker names the trigger"
    );
    assert!(kinds.contains("metrics"), "dump carries a metrics trailer");

    // The offline tooling accepts the dump unchanged.
    let summary = Command::new(BIN)
        .args(["trace", "summary"])
        .arg(&flight)
        .output()
        .expect("run trace summary");
    assert!(
        summary.status.success(),
        "trace summary rejected the dump: {}",
        String::from_utf8_lossy(&summary.stderr)
    );
    let export = Command::new(BIN)
        .args(["trace", "export", "--chrome"])
        .arg(&flight)
        .output()
        .expect("run trace export");
    assert!(
        export.status.success(),
        "trace export rejected the dump: {}",
        String::from_utf8_lossy(&export.stderr)
    );
    let chrome =
        Json::parse(&String::from_utf8(export.stdout).expect("utf-8")).expect("chrome JSON");
    assert!(
        chrome
            .get("traceEvents")
            .and_then(Json::as_array)
            .is_some_and(|evs| !evs.is_empty()),
        "chrome export carries events"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flaky_transport_and_checkpointing_compose() {
    // The retry path (malformed answers every 97th query) and the
    // checkpoint cadence running together must still converge and
    // stay deterministic enough to resume: suspend at a fixed safe
    // point, resume, and expect the run to complete cleanly.
    let dir = std::env::temp_dir().join(format!("cirlearn-flaky-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ck = dir.join("flaky.clck");
    let out = dir.join("flaky.aag");

    let status = Command::new(BIN)
        .arg("learn-bb")
        .args(["--cmd", BIN])
        .args(["--args", "blackbox neq 20 2 --seed 9 --flake-every 97"])
        .args([
            "--inputs",
            &(0..20)
                .map(|k| format!("i{k}"))
                .collect::<Vec<_>>()
                .join(","),
            "--outputs",
            "y0,y1",
        ])
        .args(["--seed", "5", "--budget", "600", "--max-queries", "20000"])
        .args(["--check", "off", "--stop-after-safe-points", "1"])
        .arg("--checkpoint")
        .arg(&ck)
        .arg("-o")
        .arg(&out)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run learn-bb");
    assert_eq!(status.code(), Some(130), "suspension exits 130");
    assert!(ck.exists(), "suspension wrote the checkpoint");

    let status = Command::new(BIN)
        .arg("learn-bb")
        .args(["--cmd", BIN])
        .args(["--args", "blackbox neq 20 2 --seed 9 --flake-every 97"])
        .args([
            "--inputs",
            &(0..20)
                .map(|k| format!("i{k}"))
                .collect::<Vec<_>>()
                .join(","),
            "--outputs",
            "y0,y1",
        ])
        .args(["--seed", "5", "--budget", "600", "--max-queries", "20000"])
        .args(["--check", "off"])
        .arg("--resume")
        .arg(&ck)
        .arg("-o")
        .arg(&out)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("resume learn-bb");
    assert!(status.success(), "resumed run completes");
    assert!(out.exists(), "resumed run wrote the circuit");

    let _ = std::fs::remove_dir_all(&dir);
}
