//! The BDD manager.

use std::collections::HashMap;
use std::fmt;

use cirlearn_logic::{Cube, Sop, TruthTable, Var};

/// A handle to a BDD node owned by a [`Bdd`] manager.
///
/// Handles are only meaningful with the manager that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant-false function.
    pub const FALSE: BddRef = BddRef(0);
    /// The constant-true function.
    pub const TRUE: BddRef = BddRef(1);

    /// Returns `true` if this handle is a constant.
    pub const fn is_const(self) -> bool {
        self.0 < 2
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BddRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Sentinel variable index of the two terminal nodes.
const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    low: BddRef,
    high: BddRef,
}

/// A reduced ordered BDD manager with a fixed variable order
/// `x0 < x1 < …` (index 0 closest to the root).
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, BddRef, BddRef), BddRef>,
    ite_cache: HashMap<(BddRef, BddRef, BddRef), BddRef>,
    num_vars: usize,
}

impl Bdd {
    /// Creates a manager over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Bdd {
            nodes: vec![
                Node {
                    var: TERMINAL_VAR,
                    low: BddRef::FALSE,
                    high: BddRef::FALSE,
                },
                Node {
                    var: TERMINAL_VAR,
                    low: BddRef::TRUE,
                    high: BddRef::TRUE,
                },
            ],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            num_vars,
        }
    }

    /// Returns the number of variables of this manager.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Returns the number of allocated nodes (including both terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns the number of nodes reachable from `f` (excluding
    /// terminals) — the conventional BDD size.
    pub fn size(&self, f: BddRef) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if n.is_const() || seen[n.index()] {
                continue;
            }
            seen[n.index()] = true;
            count += 1;
            stack.push(self.nodes[n.index()].low);
            stack.push(self.nodes[n.index()].high);
        }
        count
    }

    /// Returns the projection function of variable `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ num_vars`.
    pub fn var(&mut self, index: u32) -> BddRef {
        // panic-ok: documented `# Panics` contract guard.
        assert!((index as usize) < self.num_vars, "variable out of range");
        self.mk(index, BddRef::FALSE, BddRef::TRUE)
    }

    /// Returns the negated projection of variable `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ num_vars`.
    pub fn nvar(&mut self, index: u32) -> BddRef {
        assert!((index as usize) < self.num_vars, "variable out of range");
        self.mk(index, BddRef::TRUE, BddRef::FALSE)
    }

    fn mk(&mut self, var: u32, low: BddRef, high: BddRef) -> BddRef {
        if low == high {
            return low;
        }
        if let Some(&r) = self.unique.get(&(var, low, high)) {
            return r;
        }
        let r = BddRef(self.nodes.len() as u32);
        self.nodes.push(Node { var, low, high });
        self.unique.insert((var, low, high), r);
        r
    }

    fn var_of(&self, f: BddRef) -> u32 {
        self.nodes[f.index()].var
    }

    fn cofactors(&self, f: BddRef, var: u32) -> (BddRef, BddRef) {
        let n = self.nodes[f.index()];
        if n.var == var {
            (n.low, n.high)
        } else {
            (f, f)
        }
    }

    /// If-then-else: `ite(f, g, h) = f·g ∨ ¬f·h` — the universal BDD
    /// operation from which the Boolean connectives derive.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        // Terminal cases.
        if f == BddRef::TRUE {
            return g;
        }
        if f == BddRef::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == BddRef::TRUE && h == BddRef::FALSE {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let top = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let r = self.mk(top, low, high);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    /// Returns the complement of `f`.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        self.ite(f, BddRef::FALSE, BddRef::TRUE)
    }

    /// Returns the conjunction of `f` and `g`.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, g, BddRef::FALSE)
    }

    /// Returns the disjunction of `f` and `g`.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, BddRef::TRUE, g)
    }

    /// Returns the exclusive OR of `f` and `g`.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Restricts variable `var` of `f` to `value` (a cofactor).
    ///
    /// # Panics
    ///
    /// Panics if `var ≥ num_vars`.
    pub fn restrict(&mut self, f: BddRef, var: u32, value: bool) -> BddRef {
        assert!((var as usize) < self.num_vars, "variable out of range");
        if f.is_const() || self.var_of(f) > var {
            return f;
        }
        let n = self.nodes[f.index()];
        if n.var == var {
            return if value { n.high } else { n.low };
        }
        let low = self.restrict(n.low, var, value);
        let high = self.restrict(n.high, var, value);
        self.mk(n.var, low, high)
    }

    /// Existentially quantifies `var` out of `f`.
    pub fn exists(&mut self, f: BddRef, var: u32) -> BddRef {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        self.or(f0, f1)
    }

    /// Universally quantifies `var` out of `f`.
    pub fn forall(&mut self, f: BddRef, var: u32) -> BddRef {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        self.and(f0, f1)
    }

    /// Evaluates `f` under per-variable values.
    pub fn eval_with<F: FnMut(Var) -> bool>(&self, f: BddRef, mut value_of: F) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let n = self.nodes[cur.index()];
            cur = if value_of(Var::new(n.var)) {
                n.high
            } else {
                n.low
            };
        }
        cur == BddRef::TRUE
    }

    /// Returns the variables `f` depends on, sorted ascending.
    pub fn support(&self, f: BddRef) -> Vec<Var> {
        let mut seen = vec![false; self.nodes.len()];
        let mut vars = Vec::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_const() || seen[n.index()] {
                continue;
            }
            seen[n.index()] = true;
            let node = self.nodes[n.index()];
            vars.push(Var::new(node.var));
            stack.push(node.low);
            stack.push(node.high);
        }
        vars.sort();
        vars.dedup();
        vars
    }

    /// Counts the onset minterms of `f` over the manager's full variable
    /// set.
    pub fn sat_count(&self, f: BddRef) -> u64 {
        let mut cache: HashMap<BddRef, u64> = HashMap::new();
        self.sat_count_rec(f, &mut cache)
    }

    fn sat_count_rec(&self, f: BddRef, cache: &mut HashMap<BddRef, u64>) -> u64 {
        // Counts minterms over variables strictly below `var_of(f)`,
        // then scales at the call site; here we normalize to "minterms
        // over all num_vars variables" by tracking levels explicitly.
        fn rec(bdd: &Bdd, f: BddRef, cache: &mut HashMap<BddRef, u64>) -> u64 {
            // Returns count over variables var_of(f)..num_vars.
            if f == BddRef::FALSE {
                return 0;
            }
            if f == BddRef::TRUE {
                return 1;
            }
            if let Some(&c) = cache.get(&f) {
                return c;
            }
            let n = bdd.nodes[f.index()];
            let lo = rec(bdd, n.low, cache);
            let hi = rec(bdd, n.high, cache);
            let lo_gap = bdd.level_of(n.low) - n.var as u64 - 1;
            let hi_gap = bdd.level_of(n.high) - n.var as u64 - 1;
            let c = (lo << lo_gap) + (hi << hi_gap);
            cache.insert(f, c);
            c
        }
        let total = rec(self, f, cache);
        total << self.level_of(f)
    }

    /// The level of a node: its variable index, or `num_vars` for
    /// terminals.
    fn level_of(&self, f: BddRef) -> u64 {
        if f.is_const() {
            self.num_vars as u64
        } else {
            self.var_of(f) as u64
        }
    }

    /// Builds the BDD of a truth table.
    ///
    /// # Panics
    ///
    /// Panics if the table has more variables than the manager.
    // The manager is the node factory, so `from_*` takes `&mut self`
    // here like in other BDD packages.
    #[allow(clippy::wrong_self_convention)]
    pub fn from_truth_table(&mut self, tt: &TruthTable) -> BddRef {
        assert!(tt.num_vars() <= self.num_vars, "table wider than manager");
        self.build_tt_rec(tt, 0)
    }

    fn build_tt_rec(&mut self, tt: &TruthTable, var: u32) -> BddRef {
        if tt.is_zero() {
            return BddRef::FALSE;
        }
        if tt.is_one() {
            return BddRef::TRUE;
        }
        let v = Var::new(var);
        let low = {
            let t = tt.cofactor(v, false);
            self.build_tt_rec(&t, var + 1)
        };
        let high = {
            let t = tt.cofactor(v, true);
            self.build_tt_rec(&t, var + 1)
        };
        self.mk(var, low, high)
    }

    /// Converts `f` to a truth table over the manager's variables.
    ///
    /// # Errors
    ///
    /// Returns an error if the manager has more than
    /// [`TruthTable::MAX_VARS`] variables.
    pub fn to_truth_table(&self, f: BddRef) -> cirlearn_logic::Result<TruthTable> {
        let n = self.num_vars;
        TruthTable::zeros(n)?; // arity check
        Ok(TruthTable::from_fn(n, |m| {
            self.eval_with(f, |v| m >> v.index() & 1 == 1)
        }))
    }

    /// Extracts an irredundant SOP cover of `f` using the BDD form of
    /// the Minato–Morreale ISOP procedure.
    pub fn isop(&mut self, f: BddRef) -> Sop {
        let (sop, _) = self.isop_rec(f, f);
        sop
    }

    /// Like [`Bdd::isop`], but gives up once the cover exceeds
    /// `max_cubes` — arithmetic functions (adder middle bits) have
    /// exponential covers, and callers such as the `collapse` pass must
    /// bail out rather than materialize them.
    pub fn isop_bounded(&mut self, f: BddRef, max_cubes: usize) -> Option<Sop> {
        let mut remaining = max_cubes as isize;
        let sop = self.isop_bounded_rec(f, f, &mut remaining)?.0;
        Some(sop)
    }

    fn isop_bounded_rec(
        &mut self,
        lower: BddRef,
        upper: BddRef,
        remaining: &mut isize,
    ) -> Option<(Sop, BddRef)> {
        if *remaining < 0 {
            return None;
        }
        if lower == BddRef::FALSE {
            return Some((Sop::zero(), BddRef::FALSE));
        }
        if upper == BddRef::TRUE {
            *remaining -= 1;
            if *remaining < 0 {
                return None;
            }
            return Some((Sop::one(), BddRef::TRUE));
        }
        let top = self.var_of(lower).min(self.var_of(upper));
        let x = Var::new(top);
        let (l0, l1) = self.cofactors(lower, top);
        let (u0, u1) = self.cofactors(upper, top);

        let nu1 = self.not(u1);
        let l0_only = self.and(l0, nu1);
        let (s0, f0) = self.isop_bounded_rec(l0_only, u0, remaining)?;
        let nu0 = self.not(u0);
        let l1_only = self.and(l1, nu0);
        let (s1, f1) = self.isop_bounded_rec(l1_only, u1, remaining)?;
        let nf0 = self.not(f0);
        let nf1 = self.not(f1);
        let r0 = self.and(l0, nf0);
        let r1 = self.and(l1, nf1);
        let l_rest = self.or(r0, r1);
        let u_both = self.and(u0, u1);
        let (s2, f2) = self.isop_bounded_rec(l_rest, u_both, remaining)?;

        let mut sop = Sop::zero();
        for c in s0 {
            sop.push(c.and_literal(x.negative()).expect("fresh variable"));
        }
        for c in s1 {
            sop.push(c.and_literal(x.positive()).expect("fresh variable"));
        }
        sop.extend(s2);

        let xv = self.var(top);
        let nxv = self.nvar(top);
        let part0 = self.and(nxv, f0);
        let part1 = self.and(xv, f1);
        let cover = {
            let t = self.or(part0, part1);
            self.or(t, f2)
        };
        Some((sop, cover))
    }

    fn isop_rec(&mut self, lower: BddRef, upper: BddRef) -> (Sop, BddRef) {
        if lower == BddRef::FALSE {
            return (Sop::zero(), BddRef::FALSE);
        }
        if upper == BddRef::TRUE {
            return (Sop::one(), BddRef::TRUE);
        }
        let top = self.var_of(lower).min(self.var_of(upper));
        let x = Var::new(top);
        let (l0, l1) = self.cofactors(lower, top);
        let (u0, u1) = self.cofactors(upper, top);

        // Cubes forced to carry !x.
        let nu1 = self.not(u1);
        let l0_only = self.and(l0, nu1);
        let (s0, f0) = self.isop_rec(l0_only, u0);
        // Cubes forced to carry x.
        let nu0 = self.not(u0);
        let l1_only = self.and(l1, nu0);
        let (s1, f1) = self.isop_rec(l1_only, u1);
        // Remainder, covered without x.
        let nf0 = self.not(f0);
        let nf1 = self.not(f1);
        let r0 = self.and(l0, nf0);
        let r1 = self.and(l1, nf1);
        let l_rest = self.or(r0, r1);
        let u_both = self.and(u0, u1);
        let (s2, f2) = self.isop_rec(l_rest, u_both);

        let mut sop = Sop::zero();
        for c in s0 {
            sop.push(c.and_literal(x.negative()).expect("fresh variable"));
        }
        for c in s1 {
            sop.push(c.and_literal(x.positive()).expect("fresh variable"));
        }
        sop.extend(s2);

        let xv = self.var(top);
        let nxv = self.nvar(top);
        let part0 = self.and(nxv, f0);
        let part1 = self.and(xv, f1);
        let cover = {
            let t = self.or(part0, part1);
            self.or(t, f2)
        };
        (sop, cover)
    }

    /// Builds the BDD of a [`Cube`].
    pub fn cube(&mut self, cube: &Cube) -> BddRef {
        let mut acc = BddRef::TRUE;
        for lit in cube.literals().iter().rev() {
            let v = if lit.is_negated() {
                self.nvar(lit.var().index())
            } else {
                self.var(lit.var().index())
            };
            acc = self.and(v, acc);
        }
        acc
    }

    /// Builds the BDD of an [`Sop`].
    pub fn sop(&mut self, sop: &Sop) -> BddRef {
        let mut acc = BddRef::FALSE;
        for c in sop.cubes() {
            let cb = self.cube(c);
            acc = self.or(acc, cb);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_vars() {
        let mut b = Bdd::new(3);
        let x = b.var(0);
        assert!(!x.is_const());
        assert!(b.eval_with(x, |v| v.index() == 0));
        assert!(!b.eval_with(x, |_| false));
        let nx = b.nvar(0);
        let union = b.or(x, nx);
        assert_eq!(union, BddRef::TRUE);
        let inter = b.and(x, nx);
        assert_eq!(inter, BddRef::FALSE);
    }

    #[test]
    fn reduction_is_canonical() {
        let mut b = Bdd::new(2);
        let x0 = b.var(0);
        let x1 = b.var(1);
        // Two syntactically different constructions of the same function.
        let f1 = b.and(x0, x1);
        let nx0 = b.not(x0);
        let nx1 = b.not(x1);
        let g = b.or(nx0, nx1);
        let f2 = b.not(g);
        assert_eq!(f1, f2, "canonical forms must coincide");
    }

    #[test]
    fn ite_matches_semantics() {
        let mut b = Bdd::new(3);
        let f = b.var(0);
        let g = b.var(1);
        let h = b.var(2);
        let r = b.ite(f, g, h);
        for m in 0..8u64 {
            let expect = if m & 1 == 1 {
                m >> 1 & 1 == 1
            } else {
                m >> 2 & 1 == 1
            };
            assert_eq!(b.eval_with(r, |v| m >> v.index() & 1 == 1), expect, "m={m}");
        }
    }

    #[test]
    fn truth_table_roundtrip() {
        let tt = TruthTable::from_fn(5, |m| (m * 11 + 2) % 7 < 3);
        let mut b = Bdd::new(5);
        let f = b.from_truth_table(&tt);
        assert_eq!(b.to_truth_table(f).expect("small"), tt);
    }

    #[test]
    fn restrict_and_quantify() {
        let mut b = Bdd::new(3);
        let x0 = b.var(0);
        let x1 = b.var(1);
        let f = b.xor(x0, x1);
        let f0 = b.restrict(f, 0, false);
        assert_eq!(f0, x1);
        let f1 = b.restrict(f, 0, true);
        let nx1 = b.not(x1);
        assert_eq!(f1, nx1);
        assert_eq!(b.exists(f, 0), BddRef::TRUE);
        assert_eq!(b.forall(f, 0), BddRef::FALSE);
    }

    #[test]
    fn support_is_exact() {
        let mut b = Bdd::new(4);
        let x1 = b.var(1);
        let x3 = b.var(3);
        let f = b.and(x1, x3);
        let sup: Vec<u32> = b.support(f).iter().map(|v| v.index()).collect();
        assert_eq!(sup, vec![1, 3]);
    }

    #[test]
    fn sat_count_various() {
        let mut b = Bdd::new(3);
        assert_eq!(b.sat_count(BddRef::FALSE), 0);
        assert_eq!(b.sat_count(BddRef::TRUE), 8);
        let x0 = b.var(0);
        assert_eq!(b.sat_count(x0), 4);
        let x1 = b.var(1);
        let f = b.and(x0, x1);
        assert_eq!(b.sat_count(f), 2);
        let g = b.or(x0, x1);
        assert_eq!(b.sat_count(g), 6);
        let x2 = b.var(2);
        let parity = {
            let t = b.xor(x0, x1);
            b.xor(t, x2)
        };
        assert_eq!(b.sat_count(parity), 4);
    }

    #[test]
    fn isop_covers_exactly() {
        let tt = TruthTable::from_fn(6, |m| m.wrapping_mul(0x45d9_f3b3) >> 17 & 1 == 1);
        let mut b = Bdd::new(6);
        let f = b.from_truth_table(&tt);
        let sop = b.isop(f);
        assert_eq!(TruthTable::from_sop(6, &sop), tt);
    }

    #[test]
    fn isop_majority_is_minimal() {
        let maj = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let mut b = Bdd::new(3);
        let f = b.from_truth_table(&maj);
        let sop = b.isop(f);
        assert_eq!(sop.cubes().len(), 3);
    }

    #[test]
    fn cube_and_sop_builders() {
        use cirlearn_logic::Literal;
        let cube = Cube::from_literals([
            Literal::new(Var::new(0), false),
            Literal::new(Var::new(2), true),
        ])
        .expect("consistent");
        let mut b = Bdd::new(3);
        let cf = b.cube(&cube);
        assert_eq!(b.sat_count(cf), 2); // x0 & !x2 fixes 2 of 3 vars
        let sop = Sop::from_cubes([cube]);
        let sf = b.sop(&sop);
        assert_eq!(cf, sf);
        // Empty cube / empty SOP.
        let top = b.cube(&Cube::top());
        assert_eq!(top, BddRef::TRUE);
        let zero = b.sop(&Sop::zero());
        assert_eq!(zero, BddRef::FALSE);
    }

    #[test]
    fn size_counts_distinct_nodes() {
        let mut b = Bdd::new(3);
        let x0 = b.var(0);
        let x1 = b.var(1);
        let x2 = b.var(2);
        let parity = {
            let t = b.xor(x0, x1);
            b.xor(t, x2)
        };
        // Parity BDD: 2 nodes per level except the top = 1 + 2 + 2.
        assert_eq!(b.size(parity), 5);
        assert_eq!(b.size(BddRef::TRUE), 0);
    }
}
