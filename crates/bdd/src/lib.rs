//! A reduced ordered binary decision diagram (ROBDD) package.
//!
//! This is the substrate behind the `collapse` optimization pass (the
//! paper applies ABC's `collapse` once during circuit optimization):
//! a learned circuit cone is converted into a BDD, from which a compact
//! irredundant SOP is re-extracted with the BDD variant of the
//! Minato–Morreale ISOP procedure.
//!
//! The manager ([`Bdd`]) owns all nodes; functions are referenced by
//! [`BddRef`] handles. Variables are ordered by ascending index from the
//! root. Complement edges are deliberately omitted — the simplicity is
//! worth the ~2x node overhead at the cone sizes this workspace
//! collapses (<= 24 variables).
//!
//! # Examples
//!
//! ```
//! use cirlearn_bdd::Bdd;
//!
//! let mut bdd = Bdd::new(3);
//! let x0 = bdd.var(0);
//! let x1 = bdd.var(1);
//! let x2 = bdd.var(2);
//! let f = {
//!     let a = bdd.and(x0, x1);
//!     bdd.or(a, x2)
//! };
//! assert_eq!(bdd.sat_count(f), 5); // |x0 x1 + x2| over 3 vars
//! let sop = bdd.isop(f);
//! assert_eq!(sop.cubes().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod manager;

pub use manager::{Bdd, BddRef};
