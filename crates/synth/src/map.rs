//! Technology mapping to 2-input primitive gates.
//!
//! The contest counts circuit size in *2-input primitive gates* —
//! `and`, `or`, `xor` and their complements all cost 1. An AIG
//! represents an XOR as three AND nodes, so reporting raw AND counts
//! overstates XOR-rich circuits. This mapper covers the AIG with
//! primitive gates (detecting the standard XOR/XNOR and MUX shapes) and
//! yields a [`GateNetlist`] whose [`GateNetlist::gate_count`] is the
//! contest metric.
//!
//! Mapping is structural and greedy: every AND node whose fanins form
//! the two-product XOR/MUX pattern — and whose internal product nodes
//! have no other fanout — collapses into one gate.

use cirlearn_aig::{Aig, Edge, NodeId};

/// The primitive gate kinds of the mapped netlist.
///
/// Inverters are absorbed: each gate input and the gate output carry
/// their own polarity, as the contest's `not`-free costing implies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// 2-input AND (with per-input/output polarities: covers NAND, NOR,
    /// OR …).
    And,
    /// 2-input XOR (polarities fold into XNOR).
    Xor,
    /// 2-to-1 multiplexer `sel ? a : b` (3 pins).
    Mux,
}

impl std::fmt::Display for GateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GateKind::And => "and",
            GateKind::Xor => "xor",
            GateKind::Mux => "mux",
        };
        f.write_str(s)
    }
}

/// A signal in the mapped netlist: a gate output, a primary input, or a
/// constant, with a complement flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappedSignal {
    /// Constant false (complement for true).
    Const {
        /// Whether the constant is inverted (i.e. true).
        complement: bool,
    },
    /// Primary input by position.
    Input {
        /// Input position.
        position: usize,
        /// Inverted?
        complement: bool,
    },
    /// Output of mapped gate `index`.
    Gate {
        /// Index into [`GateNetlist::gates`].
        index: usize,
        /// Inverted?
        complement: bool,
    },
}

impl MappedSignal {
    fn complement_if(self, c: bool) -> Self {
        match self {
            MappedSignal::Const { complement } => MappedSignal::Const {
                complement: complement ^ c,
            },
            MappedSignal::Input {
                position,
                complement,
            } => MappedSignal::Input {
                position,
                complement: complement ^ c,
            },
            MappedSignal::Gate { index, complement } => MappedSignal::Gate {
                index,
                complement: complement ^ c,
            },
        }
    }
}

/// One mapped gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappedGate {
    /// The primitive kind.
    pub kind: GateKind,
    /// Input pins (2 for and/xor; 3 for mux as `[sel, then, else]`).
    pub inputs: Vec<MappedSignal>,
}

/// A netlist of 2-input primitive gates — the contest's cost model.
#[derive(Debug, Clone, Default)]
pub struct GateNetlist {
    /// Gates in topological order.
    pub gates: Vec<MappedGate>,
    /// Output signals, in circuit output order, with names.
    pub outputs: Vec<(MappedSignal, String)>,
}

impl GateNetlist {
    /// The contest size metric: number of primitive gates, with a MUX
    /// counted as its classic 3-gate realization.
    pub fn gate_count(&self) -> usize {
        self.gates
            .iter()
            .map(|g| match g.kind {
                GateKind::And | GateKind::Xor => 1,
                GateKind::Mux => 3,
            })
            .sum()
    }

    /// Number of mapped cells (a MUX counts once).
    pub fn cell_count(&self) -> usize {
        self.gates.len()
    }

    /// Evaluates the netlist on one input pattern.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is shorter than the largest referenced input.
    pub fn eval_bits(&self, bits: &[bool]) -> Vec<bool> {
        let mut values = Vec::with_capacity(self.gates.len());
        let read = |s: MappedSignal, values: &Vec<bool>| -> bool {
            match s {
                MappedSignal::Const { complement } => complement,
                MappedSignal::Input {
                    position,
                    complement,
                    // panic-ok: documented `# Panics` contract — callers
                    // pass a full input row.
                } => bits[position] ^ complement,
                // panic-ok: gate signals reference earlier gates only
                // (the netlist is emitted in topological order).
                MappedSignal::Gate { index, complement } => values[index] ^ complement,
            }
        };
        for g in &self.gates {
            let v = match g.kind {
                // panic-ok: And/Xor gates carry two pinned inputs.
                GateKind::And => read(g.inputs[0], &values) && read(g.inputs[1], &values),
                // panic-ok: And/Xor gates carry two pinned inputs.
                GateKind::Xor => read(g.inputs[0], &values) != read(g.inputs[1], &values),
                GateKind::Mux => {
                    // panic-ok: Mux gates carry three pinned inputs.
                    if read(g.inputs[0], &values) {
                        // panic-ok: Mux gates carry three pinned inputs.
                        read(g.inputs[1], &values)
                    } else {
                        // panic-ok: Mux gates carry three pinned inputs.
                        read(g.inputs[2], &values)
                    }
                }
            };
            values.push(v);
        }
        self.outputs
            .iter()
            .map(|(s, _)| read(*s, &values))
            .collect()
    }
}

/// Maps an AIG onto 2-input primitive gates with XOR/MUX detection.
///
/// # Examples
///
/// ```
/// use cirlearn_aig::Aig;
/// use cirlearn_synth::map::{map_gates, GateKind};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let y = aig.xor(a, b); // 3 AND nodes
/// aig.add_output(y, "y");
/// let netlist = map_gates(&aig);
/// assert_eq!(netlist.gate_count(), 1);
/// assert_eq!(netlist.gates[0].kind, GateKind::Xor);
/// ```
pub fn map_gates(aig: &Aig) -> GateNetlist {
    let aig = aig.cleanup();
    // Fanout counts decide whether internal product nodes are free to
    // be swallowed by an XOR/MUX pattern.
    let mut fanout = vec![0usize; aig.node_count()];
    for (_, a, b) in aig.ands() {
        fanout[a.node().index()] += 1;
        fanout[b.node().index()] += 1;
    }
    for (e, _) in aig.outputs() {
        fanout[e.node().index()] += 1;
    }

    let mut netlist = GateNetlist::default();
    let mut map: Vec<Option<MappedSignal>> = vec![None; aig.node_count()];
    map[NodeId::CONST.index()] = Some(MappedSignal::Const { complement: false });
    for pos in 0..aig.num_inputs() {
        map[aig.input_edge(pos).node().index()] = Some(MappedSignal::Input {
            position: pos,
            complement: false,
        });
    }

    let signal = |e: Edge, map: &Vec<Option<MappedSignal>>| -> Option<MappedSignal> {
        map[e.node().index()].map(|s| s.complement_if(e.is_complemented()))
    };

    // Phase 1 — pattern marking, parents before children (reverse
    // topological order), so a node swallowed by its parent never
    // swallows its own children in turn.
    let ands: Vec<(NodeId, Edge, Edge)> = aig.ands().collect();
    let mut swallowed = vec![false; aig.node_count()];
    let mut shape_of: Vec<Option<Shape>> = (0..aig.node_count()).map(|_| None).collect();
    for &(n, a, b) in ands.iter().rev() {
        if swallowed[n.index()] {
            continue;
        }
        let matched =
            detect_or_of_products(&aig, n, a, b, &fanout).and_then(|(p, q)| classify(p, q));
        if let Some(shape) = matched {
            shape_of[n.index()] = Some(shape);
            swallowed[a.node().index()] = true;
            swallowed[b.node().index()] = true;
        }
    }

    // Phase 2 — emission in topological order.
    for &(n, a, b) in &ands {
        if swallowed[n.index()] {
            continue;
        }
        if let Some(shape) = &shape_of[n.index()] {
            match *shape {
                Shape::Xor { x, y } => {
                    let sx = signal(x, &map).expect("topological order");
                    let sy = signal(y, &map).expect("topological order");
                    let index = netlist.gates.len();
                    netlist.gates.push(MappedGate {
                        kind: GateKind::Xor,
                        inputs: vec![sx, sy],
                    });
                    // n = NOR(x·y, !x·!y) = XOR(x, y).
                    map[n.index()] = Some(MappedSignal::Gate {
                        index,
                        complement: false,
                    });
                    continue;
                }
                Shape::Mux {
                    sel,
                    then_e,
                    else_e,
                } => {
                    let ss = signal(sel, &map).expect("topological order");
                    let st = signal(then_e, &map).expect("topological order");
                    let se = signal(else_e, &map).expect("topological order");
                    let index = netlist.gates.len();
                    netlist.gates.push(MappedGate {
                        kind: GateKind::Mux,
                        inputs: vec![ss, st, se],
                    });
                    // n = NOR(sel·t, !sel·e) = !MUX(sel, t, e).
                    map[n.index()] = Some(MappedSignal::Gate {
                        index,
                        complement: true,
                    });
                    continue;
                }
            }
        }
        // Default: a plain AND gate.
        let sa = signal(a, &map).expect("topological order");
        let sb = signal(b, &map).expect("topological order");
        let index = netlist.gates.len();
        netlist.gates.push(MappedGate {
            kind: GateKind::And,
            inputs: vec![sa, sb],
        });
        map[n.index()] = Some(MappedSignal::Gate {
            index,
            complement: false,
        });
    }

    for (e, name) in aig.outputs() {
        let s = signal(*e, &map).expect("outputs are mapped");
        netlist.outputs.push((s, name.clone()));
    }
    netlist
}

/// The two product terms of a detected OR-of-products node.
type Products = ((Edge, Edge), (Edge, Edge));

/// Checks whether `n = !(!P · !Q)` (i.e. `P ∨ Q`) for AND products
/// `P = x·y`, `Q = u·v` whose nodes have no external fanout.
fn detect_or_of_products(
    aig: &Aig,
    _n: NodeId,
    a: Edge,
    b: Edge,
    fanout: &[usize],
) -> Option<Products> {
    // n's fanins must both be complemented AND nodes with fanout 1.
    if !a.is_complemented() || !b.is_complemented() {
        return None;
    }
    if !aig.is_and(a.node()) || !aig.is_and(b.node()) {
        return None;
    }
    if fanout[a.node().index()] != 1 || fanout[b.node().index()] != 1 {
        return None;
    }
    let [x, y] = aig.fanins(a.node());
    let [u, v] = aig.fanins(b.node());
    Some(((x, y), (u, v)))
}

enum Shape {
    Xor {
        x: Edge,
        y: Edge,
    },
    Mux {
        sel: Edge,
        then_e: Edge,
        else_e: Edge,
    },
}

/// Classifies the OR of two products as XOR or MUX.
///
/// With `n = (x·y) ∨ (u·v)` — note `n` itself is the complement of the
/// stored AND node, handled by the caller mapping `n` positively:
///
/// * XOR: `{x, y} = {p, !q}`, `{u, v} = {!p, q}` gives `p ⊕ q`,
/// * MUX: products share one variable in opposite phases (the select).
fn classify(p: (Edge, Edge), q: (Edge, Edge)) -> Option<Shape> {
    let (x, y) = p;
    let (u, v) = q;
    // XOR check: products pair the same two variables with fully
    // opposite phases.
    let same_pair = (x.node() == u.node() && y.node() == v.node())
        || (x.node() == v.node() && y.node() == u.node());
    if same_pair {
        let (u2, v2) = if x.node() == u.node() { (u, v) } else { (v, u) };
        if x == !u2 && y == !v2 {
            // Products are (x·y) and (!x·!y); the caller's node is
            // their NOR, which is exactly XOR(x, y).
            return Some(Shape::Xor { x, y });
        }
        return None;
    }
    // MUX check: exactly one shared variable, in opposite phases.
    for (sel, then_e) in [(x, y), (y, x)] {
        for (osel, else_e) in [(u, v), (v, u)] {
            if sel == !osel {
                return Some(Shape::Mux {
                    sel,
                    then_e,
                    else_e,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_equiv(aig: &Aig, netlist: &GateNetlist) {
        let n = aig.num_inputs();
        assert!(n <= 12, "exhaustive check bound");
        for m in 0..1u64 << n {
            let bits: Vec<bool> = (0..n).map(|k| m >> k & 1 == 1).collect();
            assert_eq!(netlist.eval_bits(&bits), aig.eval_bits(&bits), "m={m}");
        }
    }

    #[test]
    fn xor_maps_to_one_gate() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y = g.xor(a, b);
        g.add_output(y, "y");
        let nl = map_gates(&g);
        assert_eq!(nl.gate_count(), 1);
        assert_eq!(nl.gates[0].kind, GateKind::Xor);
        check_equiv(&g, &nl);
    }

    #[test]
    fn xnor_maps_to_one_gate() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y = g.xnor(a, b);
        g.add_output(y, "y");
        let nl = map_gates(&g);
        assert_eq!(nl.gate_count(), 1);
        check_equiv(&g, &nl);
    }

    #[test]
    fn mux_maps_to_one_cell() {
        let mut g = Aig::new();
        let s = g.add_input("s");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y = g.mux(s, a, b);
        g.add_output(y, "y");
        let nl = map_gates(&g);
        assert_eq!(nl.cell_count(), 1);
        assert_eq!(nl.gates[0].kind, GateKind::Mux);
        check_equiv(&g, &nl);
    }

    #[test]
    fn plain_logic_stays_and_gates() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let ab = g.and(a, b);
        let y = g.or(ab, c);
        g.add_output(y, "y");
        let nl = map_gates(&g);
        assert_eq!(nl.gate_count(), 2);
        assert!(nl.gates.iter().all(|gate| gate.kind == GateKind::And));
        check_equiv(&g, &nl);
    }

    #[test]
    fn adder_maps_smaller_than_aig() {
        let mut g = Aig::new();
        let a = g.add_inputs("a", 4);
        let b = g.add_inputs("b", 4);
        let s = g.add_word(&a, &b);
        for (i, e) in s.iter().enumerate() {
            g.add_output(*e, format!("s{i}"));
        }
        let nl = map_gates(&g);
        assert!(
            nl.gate_count() < g.gate_count(),
            "mapped {} vs aig {}",
            nl.gate_count(),
            g.gate_count()
        );
        check_equiv(&g, &nl);
    }

    #[test]
    fn shared_products_are_not_swallowed() {
        // The internal product feeds a second output, so the XOR
        // pattern must NOT swallow it.
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let p = g.and(a, !b);
        let q = g.and(!a, b);
        let y = g.or(p, q); // xor shape
        g.add_output(y, "y");
        g.add_output(p, "p"); // extra fanout on the product
        let nl = map_gates(&g);
        check_equiv(&g, &nl);
        // All three nodes must survive as AND cells.
        assert_eq!(nl.gate_count(), 3);
    }

    #[test]
    fn random_circuits_map_equivalently() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        for round in 0..10 {
            let mut g = Aig::new();
            let mut pool: Vec<Edge> = (0..6).map(|i| g.add_input(format!("x{i}"))).collect();
            for _ in 0..25 {
                let a = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.5));
                let b = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.5));
                let n = if rng.gen_bool(0.3) {
                    g.xor(a, b)
                } else {
                    g.and(a, b)
                };
                pool.push(n);
            }
            for k in 0..2 {
                let e = pool[pool.len() - 1 - k];
                g.add_output(e, format!("y{k}"));
            }
            let nl = map_gates(&g);
            check_equiv(&g, &nl);
            assert!(nl.gate_count() <= g.gate_count(), "round {round}");
        }
    }
}
