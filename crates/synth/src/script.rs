//! Optimization script runner.

use std::time::{Duration, Instant};

use cirlearn_aig::Aig;
use cirlearn_telemetry::Telemetry;

use crate::{
    balance, collapse, fraig, redundancy_removal, refactor, rewrite, CollapseConfig, FraigConfig,
    RedundancyConfig, RefactorConfig,
};

/// Configuration for [`optimize`].
///
/// The defaults mirror the paper's postprocessing setup: a compression
/// script run repeatedly under a 60-second budget with one collapse
/// attempt.
#[derive(Debug, Clone)]
pub struct OptimizeConfig {
    /// Wall-clock budget for the whole script (the paper allots 60 s).
    pub time_budget: Duration,
    /// Maximum number of script rounds (each round = balance, rewrite,
    /// fraig).
    pub max_rounds: usize,
    /// Whether to run the (single) collapse attempt.
    pub enable_collapse: bool,
    /// Whether to run the (single) SAT redundancy-removal attempt.
    pub enable_redundancy_removal: bool,
    /// Guards for the collapse pass.
    pub collapse: CollapseConfig,
    /// Settings for the fraig pass.
    pub fraig: FraigConfig,
    /// Settings for the refactor pass.
    pub refactor: RefactorConfig,
    /// Guards for redundancy removal.
    pub redundancy: RedundancyConfig,
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        OptimizeConfig {
            time_budget: Duration::from_secs(60),
            max_rounds: 3,
            enable_collapse: true,
            enable_redundancy_removal: true,
            collapse: CollapseConfig::default(),
            fraig: FraigConfig::default(),
            refactor: RefactorConfig::default(),
            redundancy: RedundancyConfig::default(),
        }
    }
}

/// Runs the optimization script on a circuit and returns the smallest
/// equivalent circuit found.
///
/// The script alternates [`balance`], [`rewrite`] and [`fraig`] rounds
/// (the `compress2rs` spirit) and attempts one BDD [`collapse`] — like
/// the paper's single heavy `collapse` call. Every pass preserves the
/// functions; the best intermediate (by [`Aig::gate_count`]) is
/// returned.
///
/// # Examples
///
/// ```
/// use cirlearn_aig::Aig;
/// use cirlearn_synth::{optimize, OptimizeConfig};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let t = aig.and(a, b);
/// let u = aig.and(a, !b);
/// let y = aig.or(t, u); // == a
/// aig.add_output(y, "y");
/// let best = optimize(&aig, &OptimizeConfig::default());
/// assert_eq!(best.gate_count(), 0);
/// ```
pub fn optimize(aig: &Aig, config: &OptimizeConfig) -> Aig {
    optimize_with(aig, config, &Telemetry::disabled())
}

/// Like [`optimize`], but records every applied pass (gate and level
/// deltas, wall clock) into the given [`Telemetry`] handle.
pub fn optimize_with(aig: &Aig, config: &OptimizeConfig, telemetry: &Telemetry) -> Aig {
    let deadline = Instant::now() + config.time_budget;
    let mut current = aig.cleanup();
    let mut best = current.clone();

    let mut collapsed = false;
    let mut swept = false;
    for round in 0..config.max_rounds {
        let start_count = best.gate_count();

        for pass in [
            PassKind::Balance,
            PassKind::Rewrite,
            PassKind::Refactor,
            PassKind::Fraig,
            PassKind::Collapse,
            PassKind::Redundancy,
        ] {
            if Instant::now() >= deadline {
                return best;
            }
            if pass == PassKind::Collapse && (collapsed || !config.enable_collapse) {
                continue;
            }
            if pass == PassKind::Redundancy && (swept || !config.enable_redundancy_removal) {
                continue;
            }
            let gates_before = current.gate_count();
            let levels_before = current.depth();
            let pass_start = Instant::now();
            let next = match pass {
                PassKind::Balance => balance(&current),
                PassKind::Rewrite => rewrite(&current),
                PassKind::Refactor => refactor(&current, &config.refactor),
                PassKind::Fraig => fraig(&current, &config.fraig),
                PassKind::Collapse => {
                    collapsed = true;
                    collapse(&current, &config.collapse)
                }
                PassKind::Redundancy => {
                    swept = true;
                    redundancy_removal(&current, &config.redundancy)
                }
            };
            if next.gate_count() <= current.gate_count() {
                current = next;
            }
            if telemetry.is_enabled() {
                telemetry.record_pass(
                    pass.name(),
                    round as u64 + 1,
                    gates_before as u64,
                    current.gate_count() as u64,
                    levels_before as u64,
                    current.depth() as u64,
                    pass_start.elapsed(),
                );
            }
            if current.gate_count() < best.gate_count() {
                best = current.clone();
            }
        }

        if best.gate_count() >= start_count {
            break; // converged
        }
    }
    best
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PassKind {
    Balance,
    Rewrite,
    Refactor,
    Fraig,
    Collapse,
    Redundancy,
}

impl PassKind {
    fn name(self) -> &'static str {
        match self {
            PassKind::Balance => "balance",
            PassKind::Rewrite => "rewrite",
            PassKind::Refactor => "refactor",
            PassKind::Fraig => "fraig",
            PassKind::Collapse => "collapse",
            PassKind::Redundancy => "redundancy",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_aig::Edge;
    use cirlearn_sat::check_equivalence;

    #[test]
    fn optimizes_redundant_sop() {
        // Flat minterm cover of a 4-var function with heavy sharing.
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 4);
        let mut cubes = Vec::new();
        for m in 0..16u32 {
            if m & 1 == 1 {
                let lits: Vec<Edge> = (0..4)
                    .map(|k| inputs[k].complement_if(m >> k & 1 == 0))
                    .collect();
                cubes.push(g.and_many(&lits));
            }
        }
        let y = g.or_many(&cubes);
        g.add_output(y, "y"); // == x0
        let best = optimize(&g, &OptimizeConfig::default());
        assert!(check_equivalence(&g, &best).is_equivalent());
        assert_eq!(best.gate_count(), 0);
    }

    #[test]
    fn respects_zero_budget() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y = g.and(a, b);
        g.add_output(y, "y");
        let cfg = OptimizeConfig {
            time_budget: Duration::from_secs(0),
            ..OptimizeConfig::default()
        };
        let best = optimize(&g, &cfg);
        assert!(check_equivalence(&g, &best).is_equivalent());
    }

    #[test]
    fn never_increases_gate_count() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for round in 0..5 {
            let mut g = Aig::new();
            let mut pool: Vec<Edge> = (0..6).map(|i| g.add_input(format!("x{i}"))).collect();
            for _ in 0..50 {
                let a = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.4));
                let b = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.4));
                let n = g.and(a, b);
                pool.push(n);
            }
            for k in 0..2 {
                let e = pool[pool.len() - 1 - k];
                g.add_output(e, format!("y{k}"));
            }
            let best = optimize(&g, &OptimizeConfig::default());
            assert!(best.gate_count() <= g.gate_count(), "round {round}");
            assert!(
                check_equivalence(&g, &best).is_equivalent(),
                "round {round}: optimization changed the function"
            );
        }
    }

    #[test]
    fn telemetry_records_applied_passes() {
        use cirlearn_telemetry::{counters, Telemetry};
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 4);
        let a = g.and(inputs[0], inputs[1]);
        let b = g.and(inputs[1], inputs[0]);
        let y = g.or(a, b);
        g.add_output(y, "y");
        let telemetry = Telemetry::recording();
        let best = optimize_with(&g, &OptimizeConfig::default(), &telemetry);
        assert!(check_equivalence(&g, &best).is_equivalent());
        let report = telemetry.report();
        assert!(!report.passes.is_empty());
        assert_eq!(
            report.counter(counters::OPT_PASSES),
            report.passes.len() as u64
        );
        for p in &report.passes {
            assert!(
                p.gates_after <= p.gates_before,
                "pass {} grew the circuit",
                p.pass
            );
        }
        let saved: u64 = report
            .passes
            .iter()
            .map(|p| p.gates_before - p.gates_after)
            .sum();
        assert_eq!(report.counter(counters::OPT_GATES_SAVED), saved);
    }

    #[test]
    fn disabled_collapse_is_honored() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y = g.xor(a, b);
        g.add_output(y, "y");
        let cfg = OptimizeConfig {
            enable_collapse: false,
            ..OptimizeConfig::default()
        };
        let best = optimize(&g, &cfg);
        assert!(check_equivalence(&g, &best).is_equivalent());
    }
}
