//! Optimization script runner with checked-pass verification.

use std::time::{Duration, Instant};

use cirlearn_aig::Aig;
use cirlearn_analyze::audit_pass;
use cirlearn_telemetry::{counters, histograms, Level, Telemetry};
use cirlearn_verify::{verify_pass, VerifyConfig, VerifyLevel, Violation};

use crate::{
    balance, collapse, fraig, redundancy_removal, refactor, rewrite, CollapseConfig, FraigConfig,
    RedundancyConfig, RefactorConfig,
};

/// Configuration for [`optimize`].
///
/// The defaults mirror the paper's postprocessing setup: a compression
/// script run repeatedly under a 60-second budget with one collapse
/// attempt.
#[derive(Debug, Clone)]
pub struct OptimizeConfig {
    /// Wall-clock budget for the whole script (the paper allots 60 s).
    pub time_budget: Duration,
    /// Maximum number of script rounds (each round = balance, rewrite,
    /// fraig).
    pub max_rounds: usize,
    /// Whether to run the (single) collapse attempt.
    pub enable_collapse: bool,
    /// Whether to run the (single) SAT redundancy-removal attempt.
    pub enable_redundancy_removal: bool,
    /// Guards for the collapse pass.
    pub collapse: CollapseConfig,
    /// Settings for the fraig pass.
    pub fraig: FraigConfig,
    /// Settings for the refactor pass.
    pub refactor: RefactorConfig,
    /// Guards for redundancy removal.
    pub redundancy: RedundancyConfig,
    /// Per-pass verification (off by default, matching the historical
    /// unguarded behavior).
    pub verify: VerifyConfig,
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        OptimizeConfig {
            time_budget: Duration::from_secs(60),
            max_rounds: 3,
            enable_collapse: true,
            enable_redundancy_removal: true,
            collapse: CollapseConfig::default(),
            fraig: FraigConfig::default(),
            refactor: RefactorConfig::default(),
            redundancy: RedundancyConfig::default(),
            verify: VerifyConfig::default(),
        }
    }
}

/// A verification wrapper around one optimization pass.
///
/// `CheckedPass::run` applies the pass, then validates the result
/// against the input at the configured [`VerifyLevel`]. A result that
/// fails verification is **rejected**: the input circuit is returned
/// unchanged, the violation (with its counterexample witness, when
/// functional) is reported as an error event, and the
/// `verify.rejected_passes` counter is bumped — so one unsound rewrite
/// degrades the run instead of silently corrupting it.
///
/// # Examples
///
/// ```
/// use cirlearn_aig::Aig;
/// use cirlearn_synth::CheckedPass;
/// use cirlearn_telemetry::Telemetry;
/// use cirlearn_verify::{VerifyConfig, VerifyLevel};
///
/// let mut g = Aig::new();
/// let a = g.add_input("a");
/// let b = g.add_input("b");
/// let y = g.xor(a, b);
/// g.add_output(y, "y");
///
/// let cfg = VerifyConfig::at_level(VerifyLevel::Sat);
/// let telemetry = Telemetry::disabled();
/// let checked = CheckedPass::new("broken", &cfg, &telemetry);
/// // A "pass" that replaces the circuit with constant 0 is rejected.
/// let outcome = checked.run(&g, |before| {
///     let mut out = Aig::with_inputs_like(before);
///     out.add_output(cirlearn_aig::Edge::FALSE, "y");
///     out
/// });
/// assert!(outcome.violation.is_some());
/// assert_eq!(outcome.circuit.gate_count(), g.gate_count());
/// ```
#[derive(Debug)]
pub struct CheckedPass<'a> {
    name: &'a str,
    verify: &'a VerifyConfig,
    telemetry: &'a Telemetry,
}

/// What [`CheckedPass::run`] produced.
#[derive(Debug)]
pub struct CheckedOutcome {
    /// The accepted circuit: the pass result when it verified, the
    /// untouched input when it was rejected.
    pub circuit: Aig,
    /// Wall clock spent verifying (zero at [`VerifyLevel::Off`]).
    pub verify_elapsed: Duration,
    /// The violation that caused a rejection, if any.
    pub violation: Option<Violation>,
}

impl<'a> CheckedPass<'a> {
    /// Wraps the pass named `name` (used in reports and events).
    pub fn new(name: &'a str, verify: &'a VerifyConfig, telemetry: &'a Telemetry) -> Self {
        CheckedPass {
            name,
            verify,
            telemetry,
        }
    }

    /// Applies `pass` to `before` and verifies the result.
    pub fn run(&self, before: &Aig, pass: impl FnOnce(&Aig) -> Aig) -> CheckedOutcome {
        let after = pass(before);
        self.audit(before, &after);
        if self.verify.level == VerifyLevel::Off {
            return CheckedOutcome {
                circuit: after,
                verify_elapsed: Duration::ZERO,
                violation: None,
            };
        }
        let verify_start = Instant::now();
        let verdict = verify_pass(before, &after, self.verify);
        let verify_elapsed = verify_start.elapsed();
        self.telemetry.incr(counters::VERIFY_CHECKS);
        match verdict {
            Ok(()) => CheckedOutcome {
                circuit: after,
                verify_elapsed,
                violation: None,
            },
            Err(violation) => {
                match &violation {
                    Violation::Lint(violations) => self
                        .telemetry
                        .add(counters::VERIFY_LINT_VIOLATIONS, violations.len() as u64),
                    Violation::Functional(_) => self.telemetry.incr(counters::VERIFY_WITNESSES),
                    Violation::Interface { .. } => {}
                }
                self.telemetry.incr(counters::VERIFY_REJECTED_PASSES);
                self.telemetry.event(
                    Level::Error,
                    &format!("pass {} rejected: {violation}", self.name),
                );
                CheckedOutcome {
                    circuit: before.clone(),
                    verify_elapsed,
                    violation: Some(violation),
                }
            }
        }
    }

    /// The pre-SAT static-analysis gate: an O(n) [`audit_pass`] run on
    /// every pass result when telemetry is on. It never changes the
    /// accept/reject decision — verification owns soundness — but a
    /// pass that introduces dead, duplicate or constant-provable nodes
    /// (or outputs a structurally broken graph) is counted under the
    /// `analyze.*` counters and reported as a debug event, so sloppy
    /// rewrites surface in run reports long before they cost SAT time.
    fn audit(&self, before: &Aig, after: &Aig) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let audit_start = Instant::now();
        let delta = audit_pass(before, after);
        self.telemetry
            .record_time(histograms::ANALYZE_AUDIT_NS, audit_start.elapsed());
        self.telemetry.incr(counters::ANALYZE_PASS_AUDITS);
        if delta.is_clean() {
            return;
        }
        self.telemetry
            .add(counters::ANALYZE_DEAD_INTRODUCED, delta.dead_introduced);
        self.telemetry.add(
            counters::ANALYZE_DUPLICATES_INTRODUCED,
            delta.duplicates_introduced,
        );
        self.telemetry.add(
            counters::ANALYZE_CONSTANTS_INTRODUCED,
            delta.constants_introduced,
        );
        self.telemetry
            .add(counters::ANALYZE_STRUCTURAL_ERRORS, delta.structural_errors);
        self.telemetry.event(
            Level::Debug,
            &format!("pass {} introduced detectable waste: {delta}", self.name),
        );
    }
}

/// Runs the optimization script on a circuit and returns the smallest
/// equivalent circuit found.
///
/// The script alternates [`balance`], [`rewrite`] and [`fraig`] rounds
/// (the `compress2rs` spirit) and attempts one BDD [`collapse`] — like
/// the paper's single heavy `collapse` call. Every pass preserves the
/// functions; the best intermediate (by [`Aig::gate_count`]) is
/// returned.
///
/// # Examples
///
/// ```
/// use cirlearn_aig::Aig;
/// use cirlearn_synth::{optimize, OptimizeConfig};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let t = aig.and(a, b);
/// let u = aig.and(a, !b);
/// let y = aig.or(t, u); // == a
/// aig.add_output(y, "y");
/// let best = optimize(&aig, &OptimizeConfig::default());
/// assert_eq!(best.gate_count(), 0);
/// ```
pub fn optimize(aig: &Aig, config: &OptimizeConfig) -> Aig {
    optimize_with(aig, config, &Telemetry::disabled())
}

/// Like [`optimize`], but records every applied pass (gate and level
/// deltas, wall clock) into the given [`Telemetry`] handle.
pub fn optimize_with(aig: &Aig, config: &OptimizeConfig, telemetry: &Telemetry) -> Aig {
    let deadline = Instant::now() + config.time_budget;
    let mut current = aig.cleanup();
    let mut best = current.clone();

    let mut collapsed = false;
    let mut swept = false;
    for round in 0..config.max_rounds {
        let start_count = best.gate_count();

        for pass in [
            PassKind::Balance,
            PassKind::Rewrite,
            PassKind::Refactor,
            PassKind::Fraig,
            PassKind::Collapse,
            PassKind::Redundancy,
        ] {
            if Instant::now() >= deadline {
                return best;
            }
            if pass == PassKind::Collapse && (collapsed || !config.enable_collapse) {
                continue;
            }
            if pass == PassKind::Redundancy && (swept || !config.enable_redundancy_removal) {
                continue;
            }
            let gates_before = current.gate_count();
            let levels_before = current.depth();
            let pass_start = Instant::now();
            let checked = CheckedPass::new(pass.name(), &config.verify, telemetry);
            let outcome = checked.run(&current, |before| match pass {
                PassKind::Balance => balance(before),
                PassKind::Rewrite => rewrite(before),
                PassKind::Refactor => refactor(before, &config.refactor),
                PassKind::Fraig => fraig(before, &config.fraig),
                PassKind::Collapse => {
                    collapsed = true;
                    collapse(before, &config.collapse)
                }
                PassKind::Redundancy => {
                    swept = true;
                    redundancy_removal(before, &config.redundancy)
                }
            });
            let next = outcome.circuit;
            if next.gate_count() <= current.gate_count() {
                current = next;
            }
            if telemetry.is_enabled() {
                telemetry.record_pass(
                    pass.name(),
                    round as u64 + 1,
                    gates_before as u64,
                    current.gate_count() as u64,
                    levels_before as u64,
                    current.depth() as u64,
                    pass_start.elapsed(),
                    outcome.verify_elapsed,
                );
            }
            if current.gate_count() < best.gate_count() {
                best = current.clone();
            }
        }

        if best.gate_count() >= start_count {
            break; // converged
        }
    }
    best
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PassKind {
    Balance,
    Rewrite,
    Refactor,
    Fraig,
    Collapse,
    Redundancy,
}

impl PassKind {
    fn name(self) -> &'static str {
        match self {
            PassKind::Balance => "balance",
            PassKind::Rewrite => "rewrite",
            PassKind::Refactor => "refactor",
            PassKind::Fraig => "fraig",
            PassKind::Collapse => "collapse",
            PassKind::Redundancy => "redundancy",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_aig::Edge;
    use cirlearn_sat::check_equivalence;

    #[test]
    fn optimizes_redundant_sop() {
        // Flat minterm cover of a 4-var function with heavy sharing.
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 4);
        let mut cubes = Vec::new();
        for m in 0..16u32 {
            if m & 1 == 1 {
                let lits: Vec<Edge> = (0..4)
                    .map(|k| inputs[k].complement_if(m >> k & 1 == 0))
                    .collect();
                cubes.push(g.and_many(&lits));
            }
        }
        let y = g.or_many(&cubes);
        g.add_output(y, "y"); // == x0
        let best = optimize(&g, &OptimizeConfig::default());
        assert!(check_equivalence(&g, &best).is_equivalent());
        assert_eq!(best.gate_count(), 0);
    }

    #[test]
    fn respects_zero_budget() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y = g.and(a, b);
        g.add_output(y, "y");
        let cfg = OptimizeConfig {
            time_budget: Duration::from_secs(0),
            ..OptimizeConfig::default()
        };
        let best = optimize(&g, &cfg);
        assert!(check_equivalence(&g, &best).is_equivalent());
    }

    #[test]
    fn never_increases_gate_count() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for round in 0..5 {
            let mut g = Aig::new();
            let mut pool: Vec<Edge> = (0..6).map(|i| g.add_input(format!("x{i}"))).collect();
            for _ in 0..50 {
                let a = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.4));
                let b = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.4));
                let n = g.and(a, b);
                pool.push(n);
            }
            for k in 0..2 {
                let e = pool[pool.len() - 1 - k];
                g.add_output(e, format!("y{k}"));
            }
            let best = optimize(&g, &OptimizeConfig::default());
            assert!(best.gate_count() <= g.gate_count(), "round {round}");
            assert!(
                check_equivalence(&g, &best).is_equivalent(),
                "round {round}: optimization changed the function"
            );
        }
    }

    #[test]
    fn telemetry_records_applied_passes() {
        use cirlearn_telemetry::{counters, Telemetry};
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 4);
        let a = g.and(inputs[0], inputs[1]);
        let b = g.and(inputs[1], inputs[0]);
        let y = g.or(a, b);
        g.add_output(y, "y");
        let telemetry = Telemetry::recording();
        let best = optimize_with(&g, &OptimizeConfig::default(), &telemetry);
        assert!(check_equivalence(&g, &best).is_equivalent());
        let report = telemetry.report();
        assert!(!report.passes.is_empty());
        assert_eq!(
            report.counter(counters::OPT_PASSES),
            report.passes.len() as u64
        );
        for p in &report.passes {
            assert!(
                p.gates_after <= p.gates_before,
                "pass {} grew the circuit",
                p.pass
            );
        }
        let saved: u64 = report
            .passes
            .iter()
            .map(|p| p.gates_before - p.gates_after)
            .sum();
        assert_eq!(report.counter(counters::OPT_GATES_SAVED), saved);
    }

    #[test]
    fn optimize_under_sat_verification_stays_clean() {
        use cirlearn_telemetry::{counters, Telemetry};
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 4);
        let mut cubes = Vec::new();
        for m in 0..16u32 {
            if (m & 1 == 1) != (m >> 3 & 1 == 1) {
                let lits: Vec<Edge> = (0..4)
                    .map(|k| inputs[k].complement_if(m >> k & 1 == 0))
                    .collect();
                cubes.push(g.and_many(&lits));
            }
        }
        let y = g.or_many(&cubes);
        g.add_output(y, "y");
        let telemetry = Telemetry::recording();
        let cfg = OptimizeConfig {
            verify: VerifyConfig::at_level(VerifyLevel::Sat),
            ..OptimizeConfig::default()
        };
        let best = optimize_with(&g, &cfg, &telemetry);
        assert!(check_equivalence(&g, &best).is_equivalent());
        let report = telemetry.report();
        // Every recorded pass was verified, none was rejected, and
        // verification time was accounted per pass.
        assert_eq!(
            report.counter(counters::VERIFY_CHECKS),
            report.passes.len() as u64
        );
        assert_eq!(report.counter(counters::VERIFY_REJECTED_PASSES), 0);
        assert_eq!(report.counter(counters::VERIFY_WITNESSES), 0);
        assert!(report
            .passes
            .iter()
            .all(|p| p.verify_elapsed > Duration::ZERO));
    }

    #[test]
    fn checked_pass_accepts_sound_pass_and_rejects_broken_one() {
        use cirlearn_telemetry::{counters, Telemetry};
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y = g.xor(a, b);
        g.add_output(y, "y");
        let cfg = VerifyConfig::at_level(VerifyLevel::Sat);
        let telemetry = Telemetry::recording();

        let sound = CheckedPass::new("balance", &cfg, &telemetry);
        let outcome = sound.run(&g, balance);
        assert!(outcome.violation.is_none());
        assert!(check_equivalence(&g, &outcome.circuit).is_equivalent());

        let broken = CheckedPass::new("bad-rewrite", &cfg, &telemetry);
        let outcome = broken.run(&g, |before| {
            // Rebuild with the output complemented: structurally clean,
            // functionally wrong — only sim/sat can catch it.
            let mut out = before.clone();
            let e = out.output_edge(0);
            out.set_output_unchecked(0, !e);
            out
        });
        let violation = outcome.violation.expect("broken pass must be rejected");
        match violation {
            Violation::Functional(w) => {
                assert_eq!(w.output, 0, "the broken output is reported");
            }
            other => panic!("expected functional violation, got {other:?}"),
        }
        // The rejected result was rolled back to the input circuit.
        assert!(check_equivalence(&g, &outcome.circuit).is_equivalent());
        assert_eq!(telemetry.counter(counters::VERIFY_CHECKS), 2);
        assert_eq!(telemetry.counter(counters::VERIFY_REJECTED_PASSES), 1);
        assert_eq!(telemetry.counter(counters::VERIFY_WITNESSES), 1);
    }

    #[test]
    fn checked_pass_off_level_skips_verification() {
        use cirlearn_telemetry::{counters, Telemetry};
        let mut g = Aig::new();
        let a = g.add_input("a");
        g.add_output(a, "y");
        let cfg = VerifyConfig::default(); // level off
        let telemetry = Telemetry::recording();
        let checked = CheckedPass::new("noop", &cfg, &telemetry);
        let outcome = checked.run(&g, |before| before.clone());
        assert!(outcome.violation.is_none());
        assert_eq!(outcome.verify_elapsed, Duration::ZERO);
        assert_eq!(telemetry.counter(counters::VERIFY_CHECKS), 0);
    }

    #[test]
    fn every_pass_attempt_is_audited() {
        use cirlearn_telemetry::{counters, Telemetry};
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 4);
        let a = g.and(inputs[0], inputs[1]);
        let b = g.and(inputs[2], inputs[3]);
        let y = g.or(a, b);
        g.add_output(y, "y");
        let telemetry = Telemetry::recording();
        let best = optimize_with(&g, &OptimizeConfig::default(), &telemetry);
        assert!(check_equivalence(&g, &best).is_equivalent());
        let report = telemetry.report();
        assert_eq!(
            report.counter(counters::ANALYZE_PASS_AUDITS),
            report.counter(counters::OPT_PASSES),
            "the pre-SAT gate must audit exactly the attempted passes"
        );
        // The shipped passes emit cleaned-up graphs: nothing introduced.
        assert_eq!(report.counter(counters::ANALYZE_DEAD_INTRODUCED), 0);
        assert_eq!(report.counter(counters::ANALYZE_DUPLICATES_INTRODUCED), 0);
        assert_eq!(report.counter(counters::ANALYZE_STRUCTURAL_ERRORS), 0);
    }

    #[test]
    fn sloppy_pass_trips_the_analyze_gate_without_being_rejected() {
        use cirlearn_telemetry::{counters, Telemetry};
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 3);
        let x = g.and(inputs[0], inputs[1]);
        let y = g.and(x, inputs[2]);
        g.add_output(y, "y");
        let cfg = VerifyConfig::at_level(VerifyLevel::Sat);
        let telemetry = Telemetry::recording();
        let checked = CheckedPass::new("sloppy", &cfg, &telemetry);
        // Equivalent output (SAT accepts it) that drags a dead cone
        // along — only the static gate can see the waste.
        let outcome = checked.run(&g, |before| {
            let mut out = before.clone();
            let a = out.input_edge(0);
            let b = out.input_edge(2);
            let _stranded = out.and(!a, !b);
            out
        });
        assert!(outcome.violation.is_none(), "the gate must not reject");
        assert_eq!(outcome.circuit.and_count(), g.and_count() + 1);
        assert_eq!(telemetry.counter(counters::ANALYZE_PASS_AUDITS), 1);
        assert_eq!(telemetry.counter(counters::ANALYZE_DEAD_INTRODUCED), 1);
        assert_eq!(telemetry.counter(counters::ANALYZE_STRUCTURAL_ERRORS), 0);
    }

    #[test]
    fn disabled_collapse_is_honored() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y = g.xor(a, b);
        g.add_output(y, "y");
        let cfg = OptimizeConfig {
            enable_collapse: false,
            ..OptimizeConfig::default()
        };
        let best = optimize(&g, &cfg);
        assert!(check_equivalence(&g, &best).is_equivalent());
    }
}
