//! BDD collapse: global two-level re-extraction of output cones.
//!
//! ABC's `collapse` (which the paper runs once during optimization)
//! rebuilds each output from its *global* function, wiping out any
//! structural bias left by the learner. We reproduce it by converting
//! each output cone to a BDD, extracting an irredundant SOP with the
//! BDD ISOP procedure, factoring it, and rebuilding. Cones whose
//! support or BDD size exceeds the configured guards keep their original
//! structure — mirroring how collapse is only applied where BDDs stay
//! tractable.

use cirlearn_aig::{Aig, Edge};
use cirlearn_bdd::{Bdd, BddRef};

use crate::factor;

/// Configuration for [`collapse`].
#[derive(Debug, Clone)]
pub struct CollapseConfig {
    /// Maximum structural support of a cone to attempt collapsing.
    pub max_support: usize,
    /// Abort threshold on BDD manager nodes per cone.
    pub max_bdd_nodes: usize,
    /// Abort threshold on extracted cover cubes per cone — arithmetic
    /// cones have exponential covers and must keep their structure.
    pub max_cubes: usize,
}

impl Default for CollapseConfig {
    fn default() -> Self {
        CollapseConfig {
            max_support: 24,
            max_bdd_nodes: 200_000,
            max_cubes: 2_000,
        }
    }
}

/// Collapses every tractable output cone through a BDD and rebuilds it
/// from a factored irredundant SOP. Returns the smaller of the original
/// and the collapsed circuit.
///
/// # Examples
///
/// ```
/// use cirlearn_aig::Aig;
/// use cirlearn_synth::{collapse, CollapseConfig};
///
/// // A redundantly built function: x0 & x1 | x0 & !x1  ==  x0.
/// let mut aig = Aig::new();
/// let x0 = aig.add_input("x0");
/// let x1 = aig.add_input("x1");
/// let a = aig.and(x0, x1);
/// let b = aig.and(x0, !x1);
/// let y = aig.or(a, b);
/// aig.add_output(y, "y");
/// let c = collapse(&aig, &CollapseConfig::default());
/// assert_eq!(c.gate_count(), 0); // collapses to the input itself
/// ```
pub fn collapse(aig: &Aig, config: &CollapseConfig) -> Aig {
    let mut out = Aig::with_inputs_like(aig);
    // Map from old nodes to new edges for outputs that are *not*
    // collapsed (they are copied structurally).
    let mut copy_map: Vec<Option<Edge>> = vec![None; aig.node_count()];
    copy_map[0] = Some(Edge::FALSE);
    for (i, m) in copy_map
        .iter_mut()
        .enumerate()
        .take(aig.num_inputs() + 1)
        .skip(1)
    {
        *m = Some(Edge::from_code(i as u32 * 2));
    }

    for (e, name) in aig.outputs() {
        let support = aig.structural_support(*e);
        let collapsed = if support.len() <= config.max_support {
            build_bdd_cone(aig, *e, &support, config.max_bdd_nodes).and_then(|(mut bdd, f)| {
                let sop = bdd.isop_bounded(f, config.max_cubes)?;
                let expr = factor::factor(&sop);
                let var_map: Vec<Edge> = support.iter().map(|&pos| out.input_edge(pos)).collect();
                Some(expr.to_aig(&mut out, &var_map))
            })
        } else {
            None
        };
        let new_edge = match collapsed {
            Some(edge) => edge,
            None => copy_cone(aig, *e, &mut out, &mut copy_map),
        };
        out.add_output(new_edge, name.clone());
    }
    let out = out.cleanup();
    if out.gate_count() < aig.gate_count() {
        out
    } else {
        aig.cleanup()
    }
}

/// Builds the BDD of a cone over variables indexed by position within
/// `support`. Returns `None` if the manager exceeds the node budget.
fn build_bdd_cone(
    aig: &Aig,
    root: Edge,
    support: &[usize],
    max_nodes: usize,
) -> Option<(Bdd, BddRef)> {
    let mut bdd = Bdd::new(support.len());
    let mut values: Vec<Option<BddRef>> = vec![None; aig.node_count()];
    values[0] = Some(BddRef::FALSE);
    for (k, &pos) in support.iter().enumerate() {
        let node = aig.input_edge(pos).node();
        values[node.index()] = Some(bdd.var(k as u32));
    }
    for (n, a, b) in aig.ands() {
        let (Some(va), Some(vb)) = (values[a.node().index()], values[b.node().index()]) else {
            continue;
        };
        let fa = if a.is_complemented() { bdd.not(va) } else { va };
        let fb = if b.is_complemented() { bdd.not(vb) } else { vb };
        values[n.index()] = Some(bdd.and(fa, fb));
        if bdd.node_count() > max_nodes {
            return None;
        }
    }
    let v = values[root.node().index()]?;
    let f = if root.is_complemented() {
        bdd.not(v)
    } else {
        v
    };
    Some((bdd, f))
}

/// Structurally copies the cone of `root` into `out`, reusing the map.
fn copy_cone(aig: &Aig, root: Edge, out: &mut Aig, map: &mut [Option<Edge>]) -> Edge {
    for (n, a, b) in aig.ands() {
        if map[n.index()].is_some() {
            continue;
        }
        let (Some(ma), Some(mb)) = (map[a.node().index()], map[b.node().index()]) else {
            continue;
        };
        let na = ma.complement_if(a.is_complemented());
        let nb = mb.complement_if(b.is_complemented());
        map[n.index()] = Some(out.and(na, nb));
    }
    map[root.node().index()]
        .expect("cone nodes are mapped in topological order")
        .complement_if(root.is_complemented())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_sat::check_equivalence;

    #[test]
    fn collapses_redundant_cover() {
        // Minterm-style construction of x0 | x1 over 3 vars: 4 cubes.
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 3);
        let mut cubes = Vec::new();
        for m in 0..8u32 {
            if m & 1 == 1 || m >> 1 & 1 == 1 {
                let lits: Vec<Edge> = (0..3)
                    .map(|k| inputs[k].complement_if(m >> k & 1 == 0))
                    .collect();
                cubes.push(g.and_many(&lits));
            }
        }
        let y = g.or_many(&cubes);
        g.add_output(y, "y");
        let c = collapse(&g, &CollapseConfig::default());
        assert!(check_equivalence(&g, &c).is_equivalent());
        assert_eq!(c.gate_count(), 1, "x0 | x1 is a single gate");
    }

    #[test]
    fn preserves_multi_output_functions() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let s = g.xor(a, b);
        let s2 = g.xor(s, c);
        let ab = g.and(a, b);
        let sc = g.and(s, c);
        let carry = g.or(ab, sc);
        g.add_output(s2, "sum");
        g.add_output(carry, "carry");
        let col = collapse(&g, &CollapseConfig::default());
        assert!(check_equivalence(&g, &col).is_equivalent());
        assert!(col.gate_count() <= g.gate_count());
    }

    #[test]
    fn wide_cones_are_left_alone() {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 30);
        let y = g.and_many(&inputs);
        g.add_output(y, "y");
        let cfg = CollapseConfig {
            max_support: 24,
            ..CollapseConfig::default()
        };
        let c = collapse(&g, &cfg);
        assert!(check_equivalence(&g, &c).is_equivalent());
        assert_eq!(c.gate_count(), g.gate_count());
    }

    #[test]
    fn node_budget_guard_falls_back_to_copy() {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 8);
        // A multiplier-like structure with an intentionally tiny budget.
        let a = g.mul_const_word(&inputs[..4], 5, 6);
        let b = g.mul_const_word(&inputs[4..], 3, 6);
        let lt = g.cmp_ult(&a, &b);
        g.add_output(lt, "lt");
        let cfg = CollapseConfig {
            max_support: 24,
            max_bdd_nodes: 8,
            ..CollapseConfig::default()
        };
        let c = collapse(&g, &cfg);
        assert!(check_equivalence(&g, &c).is_equivalent());
    }

    #[test]
    fn mixed_collapsed_and_copied_outputs() {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 26);
        // Output 0: small cone (collapsible). Output 1: wide cone.
        let small = {
            let t = g.and(inputs[0], inputs[1]);
            let u = g.and(inputs[0], !inputs[1]);
            g.or(t, u)
        };
        let wide = g.or_many(&inputs);
        g.add_output(small, "small");
        g.add_output(wide, "wide");
        let cfg = CollapseConfig {
            max_support: 10,
            ..CollapseConfig::default()
        };
        let c = collapse(&g, &cfg);
        assert!(check_equivalence(&g, &c).is_equivalent());
    }
}
