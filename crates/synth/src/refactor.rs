//! Large-cone refactoring.
//!
//! Where [`rewrite`](crate::rewrite) works on 4-input cuts, `refactor`
//! (ABC's pass of the same name) takes one *large* cut per node — grown
//! from the node's fanins until a leaf bound is hit — computes its
//! global function with a BDD, and resynthesizes it from a factored
//! irredundant cover. Replacements are accepted when they add fewer
//! nodes than the cone's reclaimable volume.

use std::collections::HashSet;

use cirlearn_aig::{Aig, Edge, NodeId};
use cirlearn_bdd::Bdd;

use crate::factor;

/// Configuration for [`refactor`].
#[derive(Debug, Clone)]
pub struct RefactorConfig {
    /// Maximum leaves of the refactoring cut.
    pub max_leaves: usize,
    /// Cube bound for the extracted cover (arithmetic cones explode).
    pub max_cubes: usize,
}

impl Default for RefactorConfig {
    fn default() -> Self {
        RefactorConfig {
            max_leaves: 10,
            max_cubes: 64,
        }
    }
}

/// Refactors every node's large cut; the result computes the same
/// functions and never has more gates than the input.
///
/// # Examples
///
/// ```
/// use cirlearn_aig::Aig;
/// use cirlearn_synth::{refactor, RefactorConfig};
///
/// // A 5-input AND built in a skewed, duplicated way.
/// let mut aig = Aig::new();
/// let x = aig.add_inputs("x", 5);
/// let t1 = aig.and(x[0], x[1]);
/// let t2 = aig.and(t1, x[2]);
/// let t1b = aig.and(x[1], x[0]); // shares with t1 via hashing
/// let t3 = aig.and(t1b, x[3]);
/// let t4 = aig.and(t2, t3);
/// let y = aig.and(t4, x[4]);
/// aig.add_output(y, "y");
/// let r = refactor(&aig, &RefactorConfig::default());
/// assert_eq!(r.gate_count(), 4); // plain 5-input AND tree
/// ```
pub fn refactor(aig: &Aig, config: &RefactorConfig) -> Aig {
    let mut out = Aig::with_inputs_like(aig);
    let mut map: Vec<Edge> = vec![Edge::FALSE; aig.node_count()];
    for (i, m) in map.iter_mut().enumerate().take(aig.num_inputs() + 1) {
        *m = Edge::from_code(i as u32 * 2);
    }
    // Fanout counts for MFFC-style reclaim estimation.
    let mut fanout = vec![0usize; aig.node_count()];
    for (_, a, b) in aig.ands() {
        fanout[a.node().index()] += 1;
        fanout[b.node().index()] += 1;
    }
    for (e, _) in aig.outputs() {
        fanout[e.node().index()] += 1;
    }

    for (n, a, b) in aig.ands() {
        let before = out.node_count();
        let na = map[a.node().index()].complement_if(a.is_complemented());
        let nb = map[b.node().index()].complement_if(b.is_complemented());
        let copy_edge = out.and(na, nb);
        let copy_delta = (out.node_count() - before) as isize;

        let mut best_edge = copy_edge;

        if let Some((leaves, volume)) = grow_cut(aig, n, config.max_leaves, &fanout) {
            if leaves.len() >= 3 {
                if let Some(sop) = cone_cover(aig, n, &leaves, config.max_cubes) {
                    let expr = factor::factor(&sop);
                    let leaf_edges: Vec<Edge> = leaves.iter().map(|l| map[l.index()]).collect();
                    let before = out.node_count();
                    let cand = expr.to_aig(&mut out, &leaf_edges);
                    let delta = (out.node_count() - before) as isize;
                    if delta - (volume as isize) < copy_delta {
                        best_edge = cand;
                    }
                }
            }
        }
        map[n.index()] = best_edge;
    }
    for (e, name) in aig.outputs() {
        let ne = map[e.node().index()].complement_if(e.is_complemented());
        out.add_output(ne, name.clone());
    }
    let out = out.cleanup();
    if out.gate_count() < aig.gate_count() {
        out
    } else {
        aig.cleanup()
    }
}

/// Grows a cut from `root`'s fanins, expanding the single-fanout node
/// with the largest id (deepest) first, until `max_leaves` would be
/// exceeded. Returns the sorted leaves and the number of single-fanout
/// AND nodes inside the cone (the reclaimable volume).
fn grow_cut(
    aig: &Aig,
    root: NodeId,
    max_leaves: usize,
    fanout: &[usize],
) -> Option<(Vec<NodeId>, usize)> {
    let mut leaves: HashSet<NodeId> = HashSet::new();
    let [a, b] = aig.fanins(root);
    leaves.insert(a.node());
    leaves.insert(b.node());
    let mut volume = 1usize;
    loop {
        // Expand the deepest expandable leaf whose expansion keeps the
        // cut within bounds. Prefer single-fanout nodes (their logic is
        // reclaimable) but allow shared ones when the bound permits.
        let mut candidates: Vec<NodeId> =
            leaves.iter().copied().filter(|&l| aig.is_and(l)).collect();
        candidates.sort_by_key(|l| std::cmp::Reverse(l.index()));
        let mut expanded = false;
        for l in candidates {
            let [fa, fb] = aig.fanins(l);
            let mut next = leaves.clone();
            next.remove(&l);
            next.insert(fa.node());
            next.insert(fb.node());
            if next.len() <= max_leaves {
                if fanout[l.index()] == 1 {
                    volume += 1;
                }
                leaves = next;
                expanded = true;
                break;
            }
        }
        if !expanded {
            break;
        }
    }
    let mut sorted: Vec<NodeId> = leaves.into_iter().collect();
    sorted.sort_unstable();
    Some((sorted, volume))
}

/// Computes the cover of `root` over the cut leaves via a BDD and a
/// bounded ISOP; `None` when the cover exceeds `max_cubes`.
fn cone_cover(
    aig: &Aig,
    root: NodeId,
    leaves: &[NodeId],
    max_cubes: usize,
) -> Option<cirlearn_logic::Sop> {
    let mut bdd = Bdd::new(leaves.len());
    let mut values: Vec<Option<cirlearn_bdd::BddRef>> = vec![None; aig.node_count()];
    values[NodeId::CONST.index()] = Some(cirlearn_bdd::BddRef::FALSE);
    for (k, &l) in leaves.iter().enumerate() {
        values[l.index()] = Some(bdd.var(k as u32));
    }
    // Evaluate the cone between leaves and root in topological order.
    for (n, a, b) in aig.ands() {
        if values[n.index()].is_some() || n.index() > root.index() {
            continue;
        }
        let (Some(va), Some(vb)) = (values[a.node().index()], values[b.node().index()]) else {
            continue;
        };
        let fa = if a.is_complemented() { bdd.not(va) } else { va };
        let fb = if b.is_complemented() { bdd.not(vb) } else { vb };
        values[n.index()] = Some(bdd.and(fa, fb));
    }
    let f = values[root.index()]?;
    bdd.isop_bounded(f, max_cubes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_sat::check_equivalence;

    #[test]
    fn refactors_duplicated_logic() {
        let mut g = Aig::new();
        let x = g.add_inputs("x", 4);
        // (x0 & x1) | (x0 & x1 & x2) | x3, built without sharing hints.
        let t1 = g.and(x[0], x[1]);
        let t2 = {
            let a = g.and(x[1], x[2]);
            g.and(x[0], a)
        };
        let o1 = g.or(t1, t2);
        let y = g.or(o1, x[3]);
        g.add_output(y, "y");
        let r = refactor(&g, &RefactorConfig::default());
        assert!(check_equivalence(&g, &r).is_equivalent());
        // x0 x1 + x3 : 2 gates.
        assert!(r.gate_count() <= 2, "got {}", r.gate_count());
    }

    #[test]
    fn never_grows_random_circuits() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        for round in 0..6 {
            let mut g = Aig::new();
            let mut pool: Vec<Edge> = (0..6).map(|i| g.add_input(format!("x{i}"))).collect();
            for _ in 0..30 {
                let a = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.4));
                let b = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.4));
                let n = g.and(a, b);
                pool.push(n);
            }
            let out_edge = *pool.last().expect("nonempty");
            g.add_output(out_edge, "y");
            let r = refactor(&g, &RefactorConfig::default());
            assert!(r.gate_count() <= g.gate_count(), "round {round}");
            assert!(
                check_equivalence(&g, &r).is_equivalent(),
                "round {round}: refactor changed the function"
            );
        }
    }

    #[test]
    fn handles_multi_output_word_circuits() {
        let mut g = Aig::new();
        let a = g.add_inputs("a", 4);
        let b = g.add_inputs("b", 4);
        let s = g.add_word(&a, &b);
        for (i, e) in s.iter().enumerate() {
            g.add_output(*e, format!("s{i}"));
        }
        let r = refactor(&g, &RefactorConfig::default());
        assert!(check_equivalence(&g, &r).is_equivalent());
    }
}
