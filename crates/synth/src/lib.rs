//! Logic optimization for learned circuits.
//!
//! The paper postprocesses its learned SOPs with ABC (`dc2`, `rewrite`,
//! `resyn3`, `compress2rs`, one `collapse`, fraiging). This crate
//! provides the same algorithmic families, implemented from scratch on
//! the workspace's [`Aig`](cirlearn_aig::Aig):
//!
//! * [`espresso`] — heuristic two-level (SOP) minimization with
//!   recursive tautology checking: `expand` + `irredundant`,
//! * [`factor`] — algebraic factoring of an SOP into a multi-level
//!   form, the main lever for turning flat learned covers into small
//!   circuits,
//! * [`balance`] — depth-reducing reconstruction of AND trees,
//! * [`fraig`] — functional reduction: random-simulation candidate
//!   classes refined by SAT equivalence proofs,
//! * [`collapse`] — per-output BDD collapse and ISOP re-extraction,
//!   guarded by support size like ABC's practice,
//! * [`rewrite`] — DAG-aware cut rewriting with NPN-canonical library
//!   lookup,
//! * [`refactor`] — large-cone resynthesis through BDD covers,
//! * [`redundancy_removal`] — SAT-proven removal of unobservable
//!   connections (the don't-care-based `dc2`/`mfs` role),
//! * [`optimize`] — a `compress2rs`-style script combining the above
//!   under a time budget,
//! * [`map`] — technology mapping onto 2-input primitive gates with
//!   XOR/MUX detection (the contest's exact size metric).
//!
//! Every pass is semantics-preserving; the test-suite checks this with
//! exhaustive simulation and SAT equivalence.
//!
//! # Examples
//!
//! ```
//! use cirlearn_aig::Aig;
//! use cirlearn_synth::{optimize, OptimizeConfig};
//!
//! let mut aig = Aig::new();
//! let inputs = aig.add_inputs("x", 4);
//! // A deliberately redundant construction.
//! let a = aig.and(inputs[0], inputs[1]);
//! let b = aig.and(inputs[1], inputs[0]);
//! let c = aig.or(a, b);
//! aig.add_output(c, "y");
//! let opt = optimize(&aig, &OptimizeConfig::default());
//! assert!(opt.gate_count() <= aig.gate_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balance;
mod collapse;
pub mod espresso;
pub mod factor;
mod fraig;
pub mod map;
mod redundancy;
mod refactor;
mod rewrite;
mod script;

pub use balance::balance;
pub use cirlearn_verify::{VerifyConfig, VerifyLevel, Violation};
pub use collapse::{collapse, CollapseConfig};
pub use fraig::{fraig, FraigConfig};
pub use redundancy::{redundancy_removal, RedundancyConfig};
pub use refactor::{refactor, RefactorConfig};
pub use rewrite::rewrite;
pub use script::{optimize, optimize_with, CheckedOutcome, CheckedPass, OptimizeConfig};
