//! DAG-aware cut rewriting.
//!
//! For every AND node the pass enumerates 4-feasible cuts, computes the
//! cut function (a ≤ 4-variable truth table), and resynthesizes it from
//! an irredundant SOP, accepting the replacement when it adds fewer
//! nodes to the rebuilt graph than copying the node would — counting
//! the node's maximum fanout-free cone (MFFC) as reclaimable. This is
//! the rewriting discipline of ABC's `rewrite`, with the precomputed
//! NPN subgraph library replaced by on-the-fly ISOP + factoring (the
//! deviation is recorded in DESIGN.md).
//!
//! The pass is conservative: the rebuilt graph is compared against the
//! input and the smaller one is returned, so `rewrite` never increases
//! gate count.

use std::collections::HashMap;

use cirlearn_aig::{Aig, Edge, NodeId};
use cirlearn_logic::{TruthTable, Var};

use crate::factor;

/// Maximum cut width.
const CUT_SIZE: usize = 4;
/// Maximum cuts stored per node.
const CUTS_PER_NODE: usize = 8;

/// Rewrites the AIG with 4-input cut resynthesis. The result computes
/// the same functions and never has more gates than the input.
///
/// # Examples
///
/// ```
/// use cirlearn_aig::Aig;
/// use cirlearn_synth::rewrite;
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// // mux(a, b, b) is just b.
/// let m = aig.mux(a, b, b);
/// aig.add_output(m, "y");
/// let r = rewrite(&aig);
/// assert_eq!(r.gate_count(), 0);
/// ```
pub fn rewrite(aig: &Aig) -> Aig {
    let cuts = enumerate_cuts(aig);
    let fanouts = fanout_lists(aig);
    // One resynthesis per NPN class: the factored expression of the
    // canonical representative serves every equivalent cut function.
    let mut library: HashMap<(usize, Vec<u64>), factor::Expr> = HashMap::new();

    let mut out = Aig::with_inputs_like(aig);
    let mut map: Vec<Edge> = vec![Edge::FALSE; aig.node_count()];
    for (i, m) in map.iter_mut().enumerate().take(aig.num_inputs() + 1) {
        *m = Edge::from_code(i as u32 * 2);
    }

    for (n, a, b) in aig.ands() {
        // Candidate 0: plain copy.
        let before = out.node_count();
        let na = map[a.node().index()].complement_if(a.is_complemented());
        let nb = map[b.node().index()].complement_if(b.is_complemented());
        let copy_edge = out.and(na, nb);
        let copy_delta = out.node_count() - before;

        let mut best_edge = copy_edge;
        let mut best_score = copy_delta as isize;

        for cut in &cuts[n.index()] {
            if cut.len() < 2 || (cut.len() == 1 && cut[0] == n) {
                continue;
            }
            if cut.contains(&n) {
                continue; // trivial cut
            }
            let tt = cut_function(aig, n, cut);
            let reclaim = mffc_size(aig, n, cut, &fanouts) as isize;
            let before = out.node_count();
            let leaf_edges: Vec<Edge> = cut.iter().map(|l| map[l.index()]).collect();
            let cand = build_from_tt(&tt, &mut out, &leaf_edges, &mut library);
            let delta = (out.node_count() - before) as isize;
            let score = delta - reclaim;
            if score < best_score {
                best_score = score;
                best_edge = cand;
            }
        }
        map[n.index()] = best_edge;
    }
    for (e, name) in aig.outputs() {
        let ne = map[e.node().index()].complement_if(e.is_complemented());
        out.add_output(ne, name.clone());
    }
    let out = out.cleanup();
    if out.gate_count() < aig.gate_count() {
        out
    } else {
        aig.cleanup()
    }
}

/// Enumerates up to [`CUTS_PER_NODE`] cuts of width ≤ [`CUT_SIZE`] per
/// node, bottom-up. Each cut is a sorted list of leaf nodes; the
/// trivial cut `{n}` is always included.
fn enumerate_cuts(aig: &Aig) -> Vec<Vec<Vec<NodeId>>> {
    let mut cuts: Vec<Vec<Vec<NodeId>>> = vec![Vec::new(); aig.node_count()];
    cuts[NodeId::CONST.index()] = vec![vec![NodeId::CONST]];
    for pos in 0..aig.num_inputs() {
        let node = aig.input_edge(pos).node();
        cuts[node.index()] = vec![vec![node]];
    }
    for (n, a, b) in aig.ands() {
        let mut set: Vec<Vec<NodeId>> = vec![vec![n]];
        for ca in &cuts[a.node().index()] {
            for cb in &cuts[b.node().index()] {
                let mut merged: Vec<NodeId> = ca.iter().chain(cb).copied().collect();
                merged.sort_unstable();
                merged.dedup();
                if merged.len() <= CUT_SIZE && !set.contains(&merged) {
                    set.push(merged);
                }
            }
        }
        set.sort_by_key(Vec::len);
        set.truncate(CUTS_PER_NODE);
        cuts[n.index()] = set;
    }
    cuts
}

/// Computes the function of node `root` over the cut leaves
/// (leaf `k` ↦ variable `x_k`).
fn cut_function(aig: &Aig, root: NodeId, leaves: &[NodeId]) -> TruthTable {
    let mut memo: HashMap<NodeId, TruthTable> = HashMap::new();
    for (k, &l) in leaves.iter().enumerate() {
        memo.insert(
            l,
            TruthTable::var(leaves.len(), Var::new(k as u32)).expect("cut is small"),
        );
    }
    eval_tt(aig, root, leaves.len(), &mut memo)
}

fn eval_tt(
    aig: &Aig,
    node: NodeId,
    num_vars: usize,
    memo: &mut HashMap<NodeId, TruthTable>,
) -> TruthTable {
    if let Some(t) = memo.get(&node) {
        return t.clone();
    }
    if node == NodeId::CONST {
        return TruthTable::zeros(num_vars).expect("cut is small");
    }
    debug_assert!(aig.is_and(node), "cut leaves must cover all inputs");
    let [a, b] = aig.fanins(node);
    let ta = {
        let t = eval_tt(aig, a.node(), num_vars, memo);
        if a.is_complemented() {
            !t
        } else {
            t
        }
    };
    let tb = {
        let t = eval_tt(aig, b.node(), num_vars, memo);
        if b.is_complemented() {
            !t
        } else {
            t
        }
    };
    let t = ta & tb;
    memo.insert(node, t.clone());
    t
}

/// Number of AND nodes in the cone of `root` above `leaves` whose every
/// fanout stays inside that cone (the reclaimable MFFC volume).
fn mffc_size(aig: &Aig, root: NodeId, leaves: &[NodeId], fanouts: &[Vec<NodeId>]) -> usize {
    // Collect the cone.
    let mut cone: Vec<NodeId> = Vec::new();
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        if cone.contains(&n) || leaves.contains(&n) || !aig.is_and(n) {
            continue;
        }
        cone.push(n);
        let [a, b] = aig.fanins(n);
        stack.push(a.node());
        stack.push(b.node());
    }
    // Internal nodes (≠ root) count only when all fanouts are in-cone.
    cone.iter()
        .filter(|&&n| n == root || fanouts[n.index()].iter().all(|f| cone.contains(f)))
        .count()
}

fn fanout_lists(aig: &Aig) -> Vec<Vec<NodeId>> {
    let mut lists: Vec<Vec<NodeId>> = vec![Vec::new(); aig.node_count()];
    for (n, a, b) in aig.ands() {
        lists[a.node().index()].push(n);
        lists[b.node().index()].push(n);
    }
    lists
}

/// Builds a ≤4-variable function over the given leaf edges, reusing one
/// factored resynthesis per NPN class.
///
/// The cut function is canonized; the library maps the canonical truth
/// table to a factored expression of the *canonical* function. The
/// instance is then recovered through the transform: with
/// `canon(x) = oneg ⊕ f(y)`, `y[perm[i]] = x[i] ⊕ ineg[i]`, building
/// `canon` over the remapped/complemented leaf edges and complementing
/// the result yields exactly `f` over the original leaves.
fn build_from_tt(
    tt: &TruthTable,
    out: &mut Aig,
    leaf_edges: &[Edge],
    library: &mut HashMap<(usize, Vec<u64>), factor::Expr>,
) -> Edge {
    let (canon, t) = tt.npn_canonical().expect("cut width is within NPN limits");
    let expr = library
        .entry((canon.num_vars(), canon.words().to_vec()))
        .or_insert_with(|| factor::factor(&canon.isop()))
        .clone();
    // canon's variable i reads leaf perm[i], complemented per ineg.
    let var_map: Vec<Edge> = t
        .perm
        .iter()
        .enumerate()
        .map(|(i, &p)| leaf_edges[p as usize].complement_if(t.input_neg >> i & 1 == 1))
        .collect();
    expr.to_aig(out, &var_map).complement_if(t.output_neg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_sat::check_equivalence;

    #[test]
    fn removes_redundant_mux() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let m = g.mux(a, b, b);
        g.add_output(m, "y");
        let r = rewrite(&g);
        assert!(check_equivalence(&g, &r).is_equivalent());
        assert_eq!(r.gate_count(), 0);
    }

    #[test]
    fn compacts_sum_of_minterms() {
        // All four minterms of (a, b) with output 1 except a=b=1: = !(a&b).
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let m0 = g.and(!a, !b);
        let m1 = g.and(a, !b);
        let m2 = g.and(!a, b);
        let t = g.or(m0, m1);
        let y = g.or(t, m2);
        g.add_output(y, "y");
        let r = rewrite(&g);
        assert!(check_equivalence(&g, &r).is_equivalent());
        assert!(r.gate_count() <= 1, "got {}", r.gate_count());
    }

    #[test]
    fn never_grows() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for round in 0..8 {
            let mut g = Aig::new();
            let mut pool: Vec<Edge> = (0..6).map(|i| g.add_input(format!("x{i}"))).collect();
            for _ in 0..40 {
                let a = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.4));
                let b = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.4));
                let n = g.and(a, b);
                pool.push(n);
            }
            let out_edge = *pool.last().expect("nonempty");
            g.add_output(out_edge, "y");
            let r = rewrite(&g);
            assert!(r.gate_count() <= g.gate_count(), "round {round}");
            assert!(
                check_equivalence(&g, &r).is_equivalent(),
                "round {round}: rewrite changed the function"
            );
        }
    }

    #[test]
    fn preserves_multi_output() {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 4);
        let s = g.add_word(&inputs[..2], &inputs[2..]);
        for (i, e) in s.iter().enumerate() {
            g.add_output(*e, format!("s{i}"));
        }
        let r = rewrite(&g);
        assert!(check_equivalence(&g, &r).is_equivalent());
    }
}

#[cfg(test)]
mod npn_build_tests {
    use super::*;
    use cirlearn_aig::Aig;

    #[test]
    fn npn_library_build_matches_function() {
        let mut state = 12345u64;
        for trial in 0..50 {
            let tt = TruthTable::from_fn(4, |m| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(m + trial);
                state >> 33 & 1 == 1
            });
            let mut g = Aig::new();
            let leaves = g.add_inputs("x", 4);
            let mut lib = HashMap::new();
            let e = build_from_tt(&tt, &mut g, &leaves, &mut lib);
            g.add_output(e, "y");
            for m in 0..16u64 {
                let bits: Vec<bool> = (0..4).map(|k| m >> k & 1 == 1).collect();
                assert_eq!(g.eval_bits(&bits)[0], tt.get(m), "trial {trial} m={m}");
            }
        }
    }
}
