//! AND-tree balancing.

use cirlearn_aig::{Aig, Edge};

/// Rebuilds the AIG with every maximal AND tree reconstructed as a
/// balanced tree (ABC's `balance`).
///
/// Balancing reduces logic depth and, thanks to structural hashing
/// during the rebuild, often removes duplicated partial products. OR
/// trees are covered implicitly: an OR tree is an AND tree in the
/// complemented domain of the AIG.
///
/// The result computes the same functions; if balancing happens to grow
/// the node count (possible when a shared subtree is split), the caller
/// can compare [`Aig::gate_count`]s and keep the original — as
/// [`optimize`](crate::optimize) does.
pub fn balance(aig: &Aig) -> Aig {
    let mut out = Aig::with_inputs_like(aig);
    let mut map: Vec<Edge> = vec![Edge::FALSE; aig.node_count()];
    for (i, m) in map.iter_mut().enumerate().take(aig.num_inputs() + 1) {
        *m = Edge::from_code(i as u32 * 2);
    }
    // Fanout counts decide where trees are cut: a node with multiple
    // fanouts stays a tree boundary so its logic is shared, not
    // duplicated.
    let mut fanout = vec![0usize; aig.node_count()];
    for (_, a, b) in aig.ands() {
        fanout[a.node().index()] += 1;
        fanout[b.node().index()] += 1;
    }
    for (e, _) in aig.outputs() {
        fanout[e.node().index()] += 1;
    }

    for (n, _, _) in aig.ands() {
        // Collect the leaves of the maximal single-fanout AND tree
        // rooted here.
        let mut leaves: Vec<Edge> = Vec::new();
        collect_and_leaves(aig, Edge::new(n, false), &fanout, true, &mut leaves);
        let mapped: Vec<Edge> = leaves
            .iter()
            .map(|l| map[l.node().index()].complement_if(l.is_complemented()))
            .collect();
        map[n.index()] = out.and_many(&mapped);
    }
    for (e, name) in aig.outputs() {
        let ne = map[e.node().index()].complement_if(e.is_complemented());
        out.add_output(ne, name.clone());
    }
    out.cleanup()
}

/// Descends through non-complemented AND fanins whose only fanout is
/// this tree, gathering the tree's leaf edges.
fn collect_and_leaves(aig: &Aig, e: Edge, fanout: &[usize], is_root: bool, leaves: &mut Vec<Edge>) {
    let n = e.node();
    let expandable = aig.is_and(n) && !e.is_complemented() && (is_root || fanout[n.index()] == 1);
    if expandable {
        let [a, b] = aig.fanins(n);
        collect_and_leaves(aig, a, fanout, false, leaves);
        collect_and_leaves(aig, b, fanout, false, leaves);
    } else {
        leaves.push(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a long AND chain a0 & a1 & … & a(n-1) left to right.
    fn chain(n: usize) -> Aig {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", n);
        let mut acc = inputs[0];
        for &i in &inputs[1..] {
            acc = g.and(acc, i);
        }
        g.add_output(acc, "y");
        g
    }

    fn depth(aig: &Aig) -> usize {
        let mut d = vec![0usize; aig.node_count()];
        for (n, a, b) in aig.ands() {
            d[n.index()] = 1 + d[a.node().index()].max(d[b.node().index()]);
        }
        aig.outputs()
            .iter()
            .map(|(e, _)| d[e.node().index()])
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn chain_becomes_logarithmic() {
        let g = chain(16);
        assert_eq!(depth(&g), 15);
        let b = balance(&g);
        assert_eq!(depth(&b), 4);
        assert_eq!(b.gate_count(), 15);
        for m in [0u32, 0xffff, 0x1234, 0x8001] {
            let bits: Vec<bool> = (0..16).map(|k| m >> k & 1 == 1).collect();
            assert_eq!(b.eval_bits(&bits), g.eval_bits(&bits));
        }
    }

    #[test]
    fn or_chain_balances_too() {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 8);
        let mut acc = inputs[0];
        for &i in &inputs[1..] {
            acc = g.or(acc, i);
        }
        g.add_output(acc, "y");
        let b = balance(&g);
        assert!(depth(&b) <= 3 + 1, "depth {}", depth(&b));
        for m in 0..256u32 {
            let bits: Vec<bool> = (0..8).map(|k| m >> k & 1 == 1).collect();
            assert_eq!(b.eval_bits(&bits), g.eval_bits(&bits), "m={m}");
        }
    }

    #[test]
    fn shared_nodes_are_not_duplicated() {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 4);
        let shared = g.and(inputs[0], inputs[1]);
        let f1 = g.and(shared, inputs[2]);
        let f2 = g.and(shared, inputs[3]);
        g.add_output(f1, "f1");
        g.add_output(f2, "f2");
        let b = balance(&g);
        assert_eq!(b.gate_count(), 3, "shared AND must stay shared");
        for m in 0..16u32 {
            let bits: Vec<bool> = (0..4).map(|k| m >> k & 1 == 1).collect();
            assert_eq!(b.eval_bits(&bits), g.eval_bits(&bits));
        }
    }

    #[test]
    fn balance_preserves_random_functions() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for round in 0..10 {
            let mut g = Aig::new();
            let mut pool: Vec<Edge> = (0..6).map(|i| g.add_input(format!("x{i}"))).collect();
            for _ in 0..25 {
                let a = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.3));
                let b = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.3));
                let n = g.and(a, b);
                pool.push(n);
            }
            let out = *pool.last().expect("nonempty");
            g.add_output(out, "y");
            let bal = balance(&g);
            for m in 0..64u32 {
                let bits: Vec<bool> = (0..6).map(|k| m >> k & 1 == 1).collect();
                assert_eq!(
                    bal.eval_bits(&bits),
                    g.eval_bits(&bits),
                    "round {round} m={m}"
                );
            }
        }
    }
}
