//! SAT-based redundancy removal.
//!
//! The paper's optimization script includes ABC's don't-care-based
//! passes (`dc2`, `mfs` family): a connection is *redundant* when
//! replacing it by a constant cannot be observed at any output — the
//! circuit's satisfiability/observability don't cares hide it. This
//! pass tests, for every AND fanin, whether tying it to constant 1
//! (which turns the AND into a wire) changes any output; the test is a
//! SAT miter, so accepted removals are exact.

use std::time::{Duration, Instant};

use cirlearn_aig::{Aig, Edge, NodeId};
use cirlearn_sat::{check_equivalence, Equivalence};

/// Configuration for [`redundancy_removal`].
#[derive(Debug, Clone)]
pub struct RedundancyConfig {
    /// Skip the pass entirely above this many AND nodes (each candidate
    /// costs one SAT miter).
    pub max_nodes: usize,
    /// Upper bound on accepted removals per call (each acceptance
    /// rebuilds the working circuit).
    pub max_removals: usize,
    /// Internal wall-clock budget; the scan stops cleanly when it runs
    /// out (each candidate costs a SAT miter).
    pub time_budget: Duration,
}

impl Default for RedundancyConfig {
    fn default() -> Self {
        RedundancyConfig {
            max_nodes: 1_500,
            max_removals: 64,
            time_budget: Duration::from_secs(10),
        }
    }
}

/// Removes SAT-provably redundant AND fanins. The result is always
/// functionally equivalent and never larger.
///
/// # Examples
///
/// ```
/// use cirlearn_aig::Aig;
/// use cirlearn_synth::{redundancy_removal, RedundancyConfig};
///
/// // y = a & (a | b): the (a | b) branch is redundant.
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let or = aig.or(a, b);
/// let y = aig.and(a, or);
/// aig.add_output(y, "y");
/// let r = redundancy_removal(&aig, &RedundancyConfig::default());
/// assert_eq!(r.gate_count(), 0); // y == a
/// ```
pub fn redundancy_removal(aig: &Aig, config: &RedundancyConfig) -> Aig {
    let mut current = aig.cleanup();
    if current.and_count() > config.max_nodes {
        return current;
    }
    let deadline = Instant::now() + config.time_budget;
    let mut removals = 0;
    'restart: while removals < config.max_removals {
        let ands: Vec<(NodeId, Edge, Edge)> = current.ands().collect();
        for (n, a, b) in ands {
            if Instant::now() >= deadline {
                return current;
            }
            for (victim, keep) in [(a, b), (b, a)] {
                let _ = victim;
                let candidate = rebuild_with_wire(&current, n, keep);
                if candidate.gate_count() >= current.gate_count() {
                    continue;
                }
                if check_equivalence(&current, &candidate) == Equivalence::Equivalent {
                    current = candidate;
                    removals += 1;
                    // Node ids shifted; restart the scan.
                    continue 'restart;
                }
            }
        }
        break;
    }
    current
}

/// Rebuilds the AIG with node `n` replaced by the edge `keep` (i.e.
/// the other fanin treated as constant 1).
fn rebuild_with_wire(aig: &Aig, target: NodeId, keep: Edge) -> Aig {
    let mut out = Aig::with_inputs_like(aig);
    let mut map: Vec<Edge> = vec![Edge::FALSE; aig.node_count()];
    for (i, m) in map.iter_mut().enumerate().take(aig.num_inputs() + 1) {
        *m = Edge::from_code(i as u32 * 2);
    }
    for (n, a, b) in aig.ands() {
        let na = map[a.node().index()].complement_if(a.is_complemented());
        let nb = map[b.node().index()].complement_if(b.is_complemented());
        map[n.index()] = if n == target {
            map[keep.node().index()].complement_if(keep.is_complemented())
        } else {
            out.and(na, nb)
        };
    }
    for (e, name) in aig.outputs() {
        let ne = map[e.node().index()].complement_if(e.is_complemented());
        out.add_output(ne, name.clone());
    }
    out.cleanup()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_classic_redundancy() {
        // y = (a & b) | (a & !b & c) — the !b literal is NOT redundant,
        // but y = a & (b | (b | c)) has one: b | (b | c) == b | c.
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let inner = g.or(b, c);
        let outer = g.or(b, inner);
        let y = g.and(a, outer);
        g.add_output(y, "y");
        let r = redundancy_removal(&g, &RedundancyConfig::default());
        assert!(check_equivalence(&g, &r).is_equivalent());
        assert!(r.gate_count() <= 2, "got {}", r.gate_count());
    }

    #[test]
    fn keeps_irredundant_circuits() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y = g.xor(a, b);
        g.add_output(y, "y");
        let r = redundancy_removal(&g, &RedundancyConfig::default());
        assert!(check_equivalence(&g, &r).is_equivalent());
        assert_eq!(r.gate_count(), 3);
    }

    #[test]
    fn respects_node_guard() {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 4);
        let y = g.and_many(&inputs);
        g.add_output(y, "y");
        let cfg = RedundancyConfig {
            max_nodes: 0,
            ..RedundancyConfig::default()
        };
        let r = redundancy_removal(&g, &cfg);
        assert_eq!(r.gate_count(), g.gate_count());
    }

    #[test]
    fn random_circuits_stay_equivalent() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for round in 0..6 {
            let mut g = Aig::new();
            let mut pool: Vec<Edge> = (0..5).map(|i| g.add_input(format!("x{i}"))).collect();
            for _ in 0..20 {
                let a = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.4));
                let b = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.4));
                let n = g.and(a, b);
                pool.push(n);
            }
            let out = *pool.last().expect("nonempty");
            g.add_output(out, "y");
            let r = redundancy_removal(&g, &RedundancyConfig::default());
            assert!(
                check_equivalence(&g, &r).is_equivalent(),
                "round {round}: redundancy removal changed the function"
            );
            assert!(r.gate_count() <= g.gate_count());
        }
    }
}
