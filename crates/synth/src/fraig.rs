//! Functional reduction of AIGs (fraiging).
//!
//! The fraig transformation [Mishchenko et al., 2005] merges nodes that
//! compute the same function (up to complement). Candidate equivalences
//! are discovered by random bit-parallel simulation; every merge is then
//! *proved* by a SAT equivalence query, so the transformation is exact.
//!
//! The paper relies on ABC's fraiging to remove the isomorphic subtrees
//! an FBDT necessarily duplicates (a tree shares nothing); this pass is
//! what makes the tree-shaped learner output competitive in gate count.

use std::collections::HashMap;

use cirlearn_aig::{Aig, Edge, NodeId};
use cirlearn_logic::SimVector;
use cirlearn_sat::{AigCnf, SolveResult};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for [`fraig`].
#[derive(Debug, Clone)]
pub struct FraigConfig {
    /// Number of random simulation patterns used to form candidate
    /// equivalence classes.
    pub patterns: usize,
    /// Seed for the simulation patterns.
    pub seed: u64,
    /// Upper bound on SAT equivalence queries (guards runtime on huge
    /// graphs); candidates beyond the budget are left unmerged.
    pub max_sat_queries: usize,
}

impl Default for FraigConfig {
    fn default() -> Self {
        FraigConfig {
            patterns: 2048,
            seed: 0xF4A16,
            max_sat_queries: 50_000,
        }
    }
}

/// Merges functionally equivalent nodes, returning the reduced AIG.
///
/// Nodes whose simulation signatures coincide (up to complement) become
/// merge candidates; a candidate is merged only after a SAT proof of
/// equivalence, so the output is always functionally identical to the
/// input. Constant nodes are detected the same way (signature compared
/// against the constant-false node).
///
/// # Examples
///
/// ```
/// use cirlearn_aig::Aig;
/// use cirlearn_synth::{fraig, FraigConfig};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// // Two structurally different XOR implementations.
/// let x1 = aig.xor(a, b);
/// let or = aig.or(a, b);
/// let nand = !aig.and(a, b);
/// let x2 = aig.and(or, nand);
/// let y = aig.and(x1, x2); // = x1 = x2
/// aig.add_output(y, "y");
/// let reduced = fraig(&aig, &FraigConfig::default());
/// assert!(reduced.gate_count() < aig.gate_count());
/// ```
pub fn fraig(aig: &Aig, config: &FraigConfig) -> Aig {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let patterns = config.patterns.max(64);
    let inputs: Vec<SimVector> = (0..aig.num_inputs())
        .map(|_| SimVector::random(patterns, &mut rng))
        .collect();
    let signatures = aig.simulate_nodes(&inputs);

    // Group nodes by canonical signature (complement-normalized so a
    // node and its inverse land in the same class).
    let mut classes: HashMap<Vec<u64>, Vec<(NodeId, bool)>> = HashMap::new();
    let all_nodes = std::iter::once(NodeId::CONST).chain(aig.ands().map(|(n, _, _)| n));
    for n in all_nodes {
        let sig = &signatures[n.index()];
        let (key, phase) = canonical_signature(sig);
        classes.entry(key).or_default().push((n, phase));
    }

    // Prove candidates with SAT, collecting node -> (representative
    // edge in the old AIG).
    let mut cnf = AigCnf::new(aig);
    let mut merged: HashMap<NodeId, Edge> = HashMap::new();
    let mut queries = 0usize;
    for members in classes.values() {
        if members.len() < 2 {
            continue;
        }
        // Lowest id is the representative (it precedes the others in
        // topological order).
        let (rep, rep_phase) = *members
            .iter()
            .min_by_key(|(n, _)| n.index())
            .expect("nonempty class");
        let rep_edge = Edge::new(rep, false);
        for &(n, phase) in members {
            if n == rep || queries >= config.max_sat_queries {
                continue;
            }
            queries += 1;
            // Same canonical phase means candidate-equal; different
            // means candidate-complement.
            let target = rep_edge.complement_if(phase != rep_phase);
            let sel = cnf.add_difference_selector(Edge::new(n, false), target);
            if cnf.solve_with_assumptions(&[sel]) == SolveResult::Unsat {
                merged.insert(n, target);
            }
        }
    }

    // Rebuild with substitutions.
    let mut out = Aig::with_inputs_like(aig);
    let mut map: Vec<Edge> = vec![Edge::FALSE; aig.node_count()];
    for (i, m) in map.iter_mut().enumerate().take(aig.num_inputs() + 1) {
        *m = Edge::from_code(i as u32 * 2);
    }
    for (n, a, b) in aig.ands() {
        let new_edge = if let Some(target) = merged.get(&n) {
            map[target.node().index()].complement_if(target.is_complemented())
        } else {
            let na = map[a.node().index()].complement_if(a.is_complemented());
            let nb = map[b.node().index()].complement_if(b.is_complemented());
            out.and(na, nb)
        };
        map[n.index()] = new_edge;
    }
    for (e, name) in aig.outputs() {
        let ne = map[e.node().index()].complement_if(e.is_complemented());
        out.add_output(ne, name.clone());
    }
    out.cleanup()
}

/// Normalizes a signature so complementary signatures share a key.
/// Returns the key and whether the signature was complemented.
fn canonical_signature(sig: &SimVector) -> (Vec<u64>, bool) {
    let words = sig.words();
    let complement = words.first().is_some_and(|w| w & 1 == 1);
    if complement {
        let mut c = sig.clone();
        c.not_assign();
        (c.words().to_vec(), true)
    } else {
        (words.to_vec(), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_sat::check_equivalence;

    #[test]
    fn merges_duplicate_xor_structures() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let x1 = g.xor(a, b);
        let or = g.or(a, b);
        let nand = !g.and(a, b);
        let x2 = g.and(or, nand);
        let y = g.or(x1, x2);
        g.add_output(y, "y");
        let r = fraig(&g, &FraigConfig::default());
        assert!(check_equivalence(&g, &r).is_equivalent());
        // y == xor(a, b): 3 AND nodes suffice.
        assert!(r.gate_count() <= 3, "gate_count = {}", r.gate_count());
    }

    #[test]
    fn detects_constant_nodes() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        // (a & b) & (!a | !b) == 0, built without the trivial rule firing.
        let ab = g.and(a, b);
        let n = g.or(!a, !b);
        let zero = g.and(ab, n);
        let y = g.or(zero, b); // == b
        g.add_output(y, "y");
        let r = fraig(&g, &FraigConfig::default());
        assert!(check_equivalence(&g, &r).is_equivalent());
        assert_eq!(r.gate_count(), 0, "y should collapse to input b");
    }

    #[test]
    fn merges_complement_pairs() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let xor = g.xor(a, b);
        // xnor built separately (not as !xor).
        let ab = g.and(a, b);
        let nanb = g.and(!a, !b);
        let xnor = g.or(ab, nanb);
        let f = g.and(xor, xnor); // constant 0
        g.add_output(f, "y");
        let r = fraig(&g, &FraigConfig::default());
        assert!(check_equivalence(&g, &r).is_equivalent());
        assert_eq!(r.gate_count(), 0);
    }

    #[test]
    fn preserves_random_circuits() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(99);
        for round in 0..8 {
            let mut g = Aig::new();
            let mut pool: Vec<Edge> = (0..5).map(|i| g.add_input(format!("x{i}"))).collect();
            for _ in 0..30 {
                let a = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.4));
                let b = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.4));
                let n = g.and(a, b);
                pool.push(n);
            }
            for k in 0..3 {
                let e = pool[pool.len() - 1 - k];
                g.add_output(e, format!("y{k}"));
            }
            let r = fraig(
                &g,
                &FraigConfig {
                    patterns: 256,
                    seed: round,
                    max_sat_queries: 10_000,
                },
            );
            assert!(
                check_equivalence(&g, &r).is_equivalent(),
                "round {round}: fraig changed the function"
            );
            assert!(r.gate_count() <= g.gate_count());
        }
    }

    #[test]
    fn idempotent_on_reduced_graphs() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y = g.xor(a, b);
        g.add_output(y, "y");
        let r1 = fraig(&g, &FraigConfig::default());
        let r2 = fraig(&r1, &FraigConfig::default());
        assert_eq!(r1.gate_count(), r2.gate_count());
    }
}
