//! Heuristic two-level minimization in the espresso style.
//!
//! The minimizer works on cube covers without ever materializing truth
//! tables, so it scales to the wide supports produced by the FBDT
//! learner. Its core is a recursive *tautology check* (Shannon splitting
//! on the most binate variable with the unate-cover leaf rule), on top
//! of which sit the classic loop phases:
//!
//! * **expand** — raise each cube (drop literals) while it stays
//!   contained in the original function,
//! * **irredundant** — drop cubes covered by the rest of the cover,
//! * **reduce** — shrink each cube to the smallest cube still covering
//!   its essential minterms (those no other cube covers), so the next
//!   expand can escape the current local optimum.
//!
//! Reduce relies on [`complement`], the recursive unate-style cover
//! complementation.

use cirlearn_logic::{Cube, Literal, Sop, Var};

/// Returns `true` if the cover is a tautology (covers every minterm).
///
/// Uses Shannon splitting on the most binate variable; a unate cover is
/// a tautology exactly when it contains the universal cube.
///
/// # Examples
///
/// ```
/// use cirlearn_logic::{Cube, Sop, Var};
/// use cirlearn_synth::espresso::tautology;
///
/// let x = Var::new(0);
/// let cover = Sop::from_cubes([
///     Cube::from_literals([x.positive()]).expect("consistent"),
///     Cube::from_literals([x.negative()]).expect("consistent"),
/// ]);
/// assert!(tautology(&cover));
/// ```
pub fn tautology(cover: &Sop) -> bool {
    if cover.is_one() {
        return true;
    }
    if cover.is_zero() {
        return false;
    }
    match most_binate_var(cover) {
        // Unate, no universal cube: not a tautology.
        None => false,
        Some(v) => {
            let pos = cofactor_cover(cover, v.positive());
            if !tautology(&pos) {
                return false;
            }
            let neg = cofactor_cover(cover, v.negative());
            tautology(&neg)
        }
    }
}

/// Returns `true` if every minterm of `cube` is covered by `cover`.
pub fn cube_covered(cube: &Cube, cover: &Sop) -> bool {
    let mut reduced = cover.clone();
    for lit in cube.literals() {
        reduced = cofactor_cover(&reduced, *lit);
    }
    tautology(&reduced)
}

/// Cofactors a cover on a single literal: cubes containing the opposite
/// literal are dropped, the literal itself is removed from the rest.
fn cofactor_cover(cover: &Sop, lit: Literal) -> Sop {
    cover
        .cubes()
        .iter()
        .filter(|c| c.phase_of(lit.var()) != Some(!lit.polarity()))
        .map(|c| c.without_var(lit.var()))
        .collect()
}

/// Picks the variable appearing in the most cubes counting both phases,
/// provided it is binate (appears in both phases); `None` for a unate
/// cover.
fn most_binate_var(cover: &Sop) -> Option<Var> {
    use std::collections::HashMap;
    let mut pos_count: HashMap<Var, usize> = HashMap::new();
    let mut neg_count: HashMap<Var, usize> = HashMap::new();
    for cube in cover.cubes() {
        for lit in cube.literals() {
            if lit.is_negated() {
                *neg_count.entry(lit.var()).or_default() += 1;
            } else {
                *pos_count.entry(lit.var()).or_default() += 1;
            }
        }
    }
    pos_count
        .iter()
        .filter_map(|(v, &p)| {
            let n = *neg_count.get(v)?;
            Some((*v, p + n, p.min(n)))
        })
        // Highest total occurrences; tie-break toward balance, then
        // lowest index for determinism.
        .max_by_key(|&(v, total, balanced)| (total, balanced, std::cmp::Reverse(v)))
        .map(|(v, _, _)| v)
}

/// The expand phase: tries to drop literals from every cube, keeping
/// the cube inside the original function `reference`.
///
/// Literals are attempted in descending frequency over the cover, so
/// commonly shared literals are kept and rare ones dropped first.
fn expand(cover: &Sop, reference: &Sop) -> Sop {
    // Literal frequency across the cover (for the heuristic order).
    use std::collections::HashMap;
    let mut freq: HashMap<Literal, usize> = HashMap::new();
    for cube in cover.cubes() {
        for lit in cube.literals() {
            *freq.entry(*lit).or_default() += 1;
        }
    }
    let mut out = Sop::zero();
    for cube in cover.cubes() {
        let mut current = cube.clone();
        // Try dropping the rarest literals first.
        let mut lits: Vec<Literal> = current.literals().to_vec();
        lits.sort_by_key(|l| freq.get(l).copied().unwrap_or(0));
        for lit in lits {
            let candidate = current.without_var(lit.var());
            if cube_covered(&candidate, reference) {
                current = candidate;
            }
        }
        out.push(current);
    }
    out
}

/// Complements a cover by recursive Shannon expansion on the most
/// binate variable (falling back to any variable of a unate cover).
///
/// The result covers exactly the minterms the input does not. Both the
/// input and the output are covers over the same (implicit) variable
/// universe; variables absent from both are unconstrained.
///
/// # Examples
///
/// ```
/// use cirlearn_logic::{Cube, Sop, Var};
/// use cirlearn_synth::espresso::complement;
///
/// let x = Var::new(0);
/// let cover = Sop::from_cubes([Cube::from_literals([x.positive()]).expect("ok")]);
/// let comp = complement(&cover);
/// assert_eq!(comp.cubes().len(), 1);
/// assert_eq!(comp.cubes()[0].literals(), &[x.negative()]);
/// ```
pub fn complement(cover: &Sop) -> Sop {
    if cover.is_one() {
        return Sop::zero();
    }
    if cover.is_zero() {
        return Sop::one();
    }
    // Splitting variable: most binate, else any occurring variable.
    let var = most_binate_var(cover).unwrap_or_else(|| {
        cover.cubes()[0]
            .literals()
            .first()
            .expect("non-constant cover has literals")
            .var()
    });
    // ¬f = x·¬(f|x) ∨ ¬x·¬(f|¬x)
    let f1c = complement(&cofactor_cover(cover, var.positive()));
    let f0c = complement(&cofactor_cover(cover, var.negative()));
    let mut out = Sop::zero();
    // Cubes present in both branch complements need no literal.
    for c in f1c.cubes() {
        if f0c.cubes().contains(c) {
            out.push(c.clone());
        } else {
            out.push(
                c.and_literal(var.positive())
                    .expect("var eliminated by cofactor"),
            );
        }
    }
    for c in f0c.cubes() {
        if !f1c.cubes().contains(c) {
            out.push(
                c.and_literal(var.negative())
                    .expect("var eliminated by cofactor"),
            );
        }
    }
    out.make_single_cube_minimal();
    out
}

/// The reduce phase: shrinks each cube to the smallest cube containing
/// its *essential* minterms (those the rest of the cover misses), so a
/// following expand can move to a different prime. The function is
/// preserved.
fn reduce(cover: &Sop) -> Sop {
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    // Espresso order: biggest cubes (fewest literals) first.
    cubes.sort_by_key(Cube::len);
    for i in 0..cubes.len() {
        // Rest of the (current) cover, cofactored into cube i's
        // subspace.
        let rest: Sop = cubes
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, c)| c.clone())
            .collect();
        let mut rest_in_cube = rest;
        for lit in cubes[i].literals() {
            rest_in_cube = cofactor_cover(&rest_in_cube, *lit);
        }
        if tautology(&rest_in_cube) {
            // Fully covered by the others (irredundant will drop it).
            continue;
        }
        let essential = complement(&rest_in_cube);
        if essential.is_zero() {
            continue;
        }
        // Bounding cube of the essential part, then re-anchored inside
        // cube i.
        let bound = essential
            .cubes()
            .iter()
            .skip(1)
            .fold(essential.cubes()[0].clone(), |acc, c| acc.supercube(c));
        if let Some(reduced) = cubes[i].intersect(&bound) {
            cubes[i] = reduced;
        }
    }
    Sop::from_cubes(cubes)
}

/// The irredundant phase: drops every cube covered by the others.
fn irredundant(cover: &Sop) -> Sop {
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    // Try to drop bigger cubes first (more literals = more specific).
    cubes.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let mut keep: Vec<bool> = vec![true; cubes.len()];
    for i in 0..cubes.len() {
        let rest: Sop = cubes
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i && keep[j])
            .map(|(_, c)| c.clone())
            .collect();
        if cube_covered(&cubes[i], &rest) {
            keep[i] = false;
        }
    }
    cubes
        .into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(c, _)| c)
        .collect()
}

/// Minimizes a cover with the expand/irredundant loop.
///
/// The result represents the same Boolean function with at most as many
/// cubes and usually far fewer literals.
///
/// # Examples
///
/// ```
/// use cirlearn_logic::{Sop, TruthTable};
/// use cirlearn_synth::espresso::minimize;
///
/// // The minterm cover of x0 (4 minterms over 3 vars).
/// let tt = TruthTable::from_fn(3, |m| m & 1 == 1);
/// let minterms: Sop = (0..8u64)
///     .filter(|&m| tt.get(m))
///     .map(|m| {
///         use cirlearn_logic::{Cube, Var};
///         Cube::from_literals((0..3).map(|k| Var::new(k).literal(m >> k & 1 == 1)))
///             .expect("consistent")
///     })
///     .collect();
/// let min = minimize(&minterms);
/// assert_eq!(min.cubes().len(), 1);
/// assert_eq!(min.literal_count(), 1);
/// assert_eq!(TruthTable::from_sop(3, &min), tt);
/// ```
pub fn minimize(cover: &Sop) -> Sop {
    if cover.is_zero() {
        return Sop::zero();
    }
    if cover.is_one() || tautology(cover) {
        return Sop::one();
    }
    let reference = cover.clone();
    let mut current = cover.clone();
    current.make_single_cube_minimal();

    // Initial expand + irredundant.
    let mut current = {
        let mut irr = irredundant(&expand(&current, &reference));
        irr.make_single_cube_minimal();
        if cost(&irr) < cost(&current) {
            irr
        } else {
            current
        }
    };
    let mut best_cost = cost(&current);

    // Classic loop: reduce → expand → irredundant, until no gain.
    // Cover complementation can blow up on large covers; reduce is
    // skipped beyond this guard (expand + irredundant alone remain).
    const REDUCE_CUBE_LIMIT: usize = 96;
    for _ in 0..8 {
        if current.cubes().len() > REDUCE_CUBE_LIMIT {
            break;
        }
        let reduced = reduce(&current);
        let mut candidate = irredundant(&expand(&reduced, &reference));
        candidate.make_single_cube_minimal();
        let c = cost(&candidate);
        if c < best_cost {
            best_cost = c;
            current = candidate;
        } else {
            break;
        }
    }
    current
}

/// Cover cost: cubes weighted above literals, matching the gate cost of
/// a two-level implementation.
fn cost(cover: &Sop) -> usize {
    cover.cubes().len() * 1000 + cover.literal_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_logic::TruthTable;

    fn lit(v: u32, neg: bool) -> Literal {
        Literal::new(Var::new(v), neg)
    }

    fn cube(lits: &[(u32, bool)]) -> Cube {
        Cube::from_literals(lits.iter().map(|&(v, n)| lit(v, n))).expect("consistent")
    }

    fn minterm_cover(tt: &TruthTable) -> Sop {
        (0..1u64 << tt.num_vars())
            .filter(|&m| tt.get(m))
            .map(|m| {
                Cube::from_literals(
                    (0..tt.num_vars() as u32).map(|k| Var::new(k).literal(m >> k & 1 == 1)),
                )
                .expect("consistent")
            })
            .collect()
    }

    #[test]
    fn tautology_base_cases() {
        assert!(tautology(&Sop::one()));
        assert!(!tautology(&Sop::zero()));
        assert!(!tautology(&Sop::from_cubes([cube(&[(0, false)])])));
    }

    #[test]
    fn tautology_split_cases() {
        // x | !x
        let t = Sop::from_cubes([cube(&[(0, false)]), cube(&[(0, true)])]);
        assert!(tautology(&t));
        // x | !x&y is not a tautology
        let nt = Sop::from_cubes([cube(&[(0, false)]), cube(&[(0, true), (1, false)])]);
        assert!(!tautology(&nt));
        // x&y | x&!y | !x = 1
        let t2 = Sop::from_cubes([
            cube(&[(0, false), (1, false)]),
            cube(&[(0, false), (1, true)]),
            cube(&[(0, true)]),
        ]);
        assert!(tautology(&t2));
    }

    #[test]
    fn tautology_agrees_with_truth_tables_randomly() {
        let mut state = 7u64;
        for trial in 0..40 {
            // Random cover over 5 vars with up to 8 cubes.
            let mut cubes = Vec::new();
            state = state.wrapping_mul(6364136223846793005).wrapping_add(trial);
            let ncubes = (state >> 13) % 8 + 1;
            for i in 0..ncubes {
                let mut lits = Vec::new();
                for v in 0..5u32 {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(i + v as u64);
                    match (state >> 33) % 3 {
                        0 => lits.push(lit(v, false)),
                        1 => lits.push(lit(v, true)),
                        _ => {}
                    }
                }
                if let Some(c) = Cube::from_literals(lits) {
                    cubes.push(c);
                }
            }
            let cover = Sop::from_cubes(cubes);
            let tt = TruthTable::from_sop(5, &cover);
            assert_eq!(tautology(&cover), tt.is_one(), "trial {trial}: {cover}");
        }
    }

    #[test]
    fn cube_covered_simple() {
        let cover = Sop::from_cubes([cube(&[(0, false)]), cube(&[(1, false)])]); // x0 | x1
        assert!(cube_covered(&cube(&[(0, false), (1, true)]), &cover));
        assert!(cube_covered(&cube(&[(0, false)]), &cover));
        assert!(!cube_covered(&cube(&[(2, false)]), &cover));
        assert!(!cube_covered(&Cube::top(), &cover));
    }

    #[test]
    fn minimize_minterms_of_single_literal() {
        let tt = TruthTable::from_fn(4, |m| m >> 2 & 1 == 0); // !x2
        let min = minimize(&minterm_cover(&tt));
        assert_eq!(TruthTable::from_sop(4, &min), tt);
        assert_eq!(min.cubes().len(), 1);
        assert_eq!(min.literal_count(), 1);
    }

    #[test]
    fn minimize_majority_from_minterms() {
        let tt = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let min = minimize(&minterm_cover(&tt));
        assert_eq!(TruthTable::from_sop(3, &min), tt);
        assert_eq!(min.cubes().len(), 3);
        assert_eq!(min.literal_count(), 6);
    }

    #[test]
    fn minimize_constant_covers() {
        assert!(minimize(&Sop::zero()).is_zero());
        assert!(minimize(&Sop::one()).is_one());
        // A cover that is secretly a tautology.
        let t = Sop::from_cubes([cube(&[(0, false)]), cube(&[(0, true)])]);
        assert!(minimize(&t).is_one());
    }

    #[test]
    fn minimize_preserves_function_randomly() {
        let mut state = 99u64;
        for trial in 0..25 {
            let tt = TruthTable::from_fn(6, |m| {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(m + trial);
                state >> 43 & 1 == 1
            });
            let cover = minterm_cover(&tt);
            let min = minimize(&cover);
            assert_eq!(TruthTable::from_sop(6, &min), tt, "trial {trial}");
            assert!(min.cubes().len() <= cover.cubes().len());
        }
    }

    #[test]
    fn minimize_never_worse_than_isop() {
        // Feeding an already-irredundant ISOP through espresso must not
        // increase cost.
        let tt = TruthTable::from_fn(5, |m| (m * 13 + 1) % 11 < 4);
        let isop = tt.isop();
        let min = minimize(&isop);
        assert_eq!(TruthTable::from_sop(5, &min), tt);
        assert!(min.cubes().len() <= isop.cubes().len());
        assert!(min.literal_count() <= isop.literal_count());
    }

    #[test]
    fn complement_is_exact() {
        let mut state = 5u64;
        for trial in 0..30 {
            let mut cubes = Vec::new();
            state = state.wrapping_mul(6364136223846793005).wrapping_add(trial);
            let ncubes = (state >> 17) % 6 + 1;
            for i in 0..ncubes {
                let mut lits = Vec::new();
                for v in 0..5u32 {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(i + v as u64);
                    match (state >> 29) % 3 {
                        0 => lits.push(lit(v, false)),
                        1 => lits.push(lit(v, true)),
                        _ => {}
                    }
                }
                if let Some(c) = Cube::from_literals(lits) {
                    cubes.push(c);
                }
            }
            let cover = Sop::from_cubes(cubes);
            let comp = complement(&cover);
            let tt = TruthTable::from_sop(5, &cover);
            assert_eq!(
                TruthTable::from_sop(5, &comp),
                !tt,
                "trial {trial}: {cover}"
            );
        }
    }

    #[test]
    fn complement_constants() {
        assert!(complement(&Sop::zero()).is_one());
        assert!(complement(&Sop::one()).is_zero());
    }

    #[test]
    fn reduce_expand_escapes_local_minimum() {
        // A cover of primes that is not minimum: reduce must allow the
        // loop to reshuffle. Function: x0 x1 + !x0 x2 + x1 x2 (the
        // consensus term x1 x2 is redundant).
        let cover = Sop::from_cubes([
            cube(&[(0, false), (1, false)]),
            cube(&[(0, true), (2, false)]),
            cube(&[(1, false), (2, false)]),
        ]);
        let min = minimize(&cover);
        let tt = TruthTable::from_sop(3, &cover);
        assert_eq!(TruthTable::from_sop(3, &min), tt);
        assert_eq!(min.cubes().len(), 2, "consensus cube must be dropped");
    }

    #[test]
    fn reduce_preserves_function_randomly() {
        let mut state = 77u64;
        for trial in 0..15 {
            let tt = TruthTable::from_fn(5, |m| {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(m * 5 + trial);
                state >> 41 & 1 == 1
            });
            let sop = tt.isop();
            let reduced = reduce(&sop);
            assert_eq!(TruthTable::from_sop(5, &reduced), tt, "trial {trial}");
        }
    }

    #[test]
    fn redundant_cube_removed() {
        // x0&x1 | x0&!x1 | x0  ->  x0
        let cover = Sop::from_cubes([
            cube(&[(0, false), (1, false)]),
            cube(&[(0, false), (1, true)]),
            cube(&[(0, false)]),
        ]);
        let min = minimize(&cover);
        assert_eq!(min.cubes().len(), 1);
        assert_eq!(min.cubes()[0], cube(&[(0, false)]));
    }
}
