//! Algebraic factoring of sum-of-products covers.
//!
//! A flat SOP such as `ab + ac + ad` costs one AND per cube plus the OR
//! tree; its factored form `a(b + c + d)` shares the common literal.
//! This module implements quick factoring by recursive weak division on
//! the most frequent literal — the core of the classic SIS
//! `quick_factor` — and converts the resulting expression tree into an
//! AIG.
//!
//! Factoring is what turns the learner's two-level covers into genuinely
//! small multi-level circuits; together with [`espresso`](crate::espresso)
//! it accounts for most of the size reductions the paper attributes to
//! ABC postprocessing.

use std::collections::HashMap;

use cirlearn_aig::{Aig, Edge};
use cirlearn_logic::{Cube, Literal, Sop};

/// A factored Boolean expression.
///
/// # Examples
///
/// ```
/// use cirlearn_logic::{Cube, Sop, Var};
/// use cirlearn_synth::factor::{factor, Expr};
///
/// let a = Var::new(0);
/// let b = Var::new(1);
/// let c = Var::new(2);
/// // ab + ac
/// let sop = Sop::from_cubes([
///     Cube::from_literals([a.positive(), b.positive()]).expect("consistent"),
///     Cube::from_literals([a.positive(), c.positive()]).expect("consistent"),
/// ]);
/// let e = factor(&sop);
/// assert_eq!(e.literal_count(), 3); // a(b + c)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A Boolean constant.
    Const(bool),
    /// A single literal.
    Lit(Literal),
    /// Conjunction of subexpressions.
    And(Vec<Expr>),
    /// Disjunction of subexpressions.
    Or(Vec<Expr>),
}

impl Expr {
    /// Counts literal occurrences in the expression — the classic cost
    /// measure of factored forms.
    pub fn literal_count(&self) -> usize {
        match self {
            Expr::Const(_) => 0,
            Expr::Lit(_) => 1,
            Expr::And(es) | Expr::Or(es) => es.iter().map(Expr::literal_count).sum(),
        }
    }

    /// Evaluates the expression under per-variable values.
    pub fn eval_with<F: FnMut(cirlearn_logic::Var) -> bool + Copy>(&self, value_of: F) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Lit(l) => {
                let mut f = value_of;
                l.eval(f(l.var()))
            }
            Expr::And(es) => es.iter().all(|e| e.eval_with(value_of)),
            Expr::Or(es) => es.iter().any(|e| e.eval_with(value_of)),
        }
    }

    /// Builds the expression in an AIG, mapping variable `x_k` to
    /// `var_map[k]`.
    ///
    /// # Panics
    ///
    /// Panics if a literal's variable has no entry in `var_map`.
    pub fn to_aig(&self, aig: &mut Aig, var_map: &[Edge]) -> Edge {
        match self {
            Expr::Const(false) => Edge::FALSE,
            Expr::Const(true) => Edge::TRUE,
            Expr::Lit(l) => var_map[l.var().index() as usize].complement_if(l.is_negated()),
            Expr::And(es) => {
                let edges: Vec<Edge> = es.iter().map(|e| e.to_aig(aig, var_map)).collect();
                aig.and_many(&edges)
            }
            Expr::Or(es) => {
                let edges: Vec<Edge> = es.iter().map(|e| e.to_aig(aig, var_map)).collect();
                aig.or_many(&edges)
            }
        }
    }
}

/// Factors a cover into a multi-level expression by recursive weak
/// division on the most frequent literal.
///
/// The returned expression computes exactly the same function as `sop`.
pub fn factor(sop: &Sop) -> Expr {
    if sop.is_zero() {
        return Expr::Const(false);
    }
    if sop.is_one() {
        return Expr::Const(true);
    }
    factor_cubes(sop.cubes())
}

fn factor_cubes(cubes: &[Cube]) -> Expr {
    if cubes.is_empty() {
        return Expr::Const(false);
    }
    if cubes.iter().any(Cube::is_empty) {
        return Expr::Const(true);
    }
    if cubes.len() == 1 {
        return cube_expr(&cubes[0]);
    }
    // Most frequent literal as the divisor.
    let mut freq: HashMap<Literal, usize> = HashMap::new();
    for c in cubes {
        for l in c.literals() {
            *freq.entry(*l).or_default() += 1;
        }
    }
    let (&best, &count) = freq
        .iter()
        .max_by_key(|&(l, &n)| (n, std::cmp::Reverse(*l)))
        .expect("nonempty cubes have literals");
    if count < 2 {
        // Nothing shared: flat OR of cube ANDs.
        return Expr::Or(cubes.iter().map(cube_expr).collect());
    }
    // Divide by `best`: quotient = cubes containing it (literal
    // removed), remainder = the other cubes.
    let mut quotient = Vec::new();
    let mut remainder = Vec::new();
    for c in cubes {
        if c.literals().contains(&best) {
            quotient.push(c.without_var(best.var()));
        } else {
            remainder.push(c.clone());
        }
    }
    let q = factor_cubes(&quotient);
    let divided = match q {
        Expr::Const(true) => Expr::Lit(best),
        q => Expr::And(vec![Expr::Lit(best), q]),
    };
    if remainder.is_empty() {
        divided
    } else {
        let r = factor_cubes(&remainder);
        match r {
            Expr::Or(mut es) => {
                es.insert(0, divided);
                Expr::Or(es)
            }
            r => Expr::Or(vec![divided, r]),
        }
    }
}

fn cube_expr(cube: &Cube) -> Expr {
    match cube.literals() {
        [] => Expr::Const(true),
        [l] => Expr::Lit(*l),
        lits => Expr::And(lits.iter().map(|&l| Expr::Lit(l)).collect()),
    }
}

/// Minimizes an SOP with [`espresso`](crate::espresso), factors it, and
/// builds the result in an AIG — the standard route from a learned
/// cover to a circuit.
///
/// Returns the root edge.
pub fn sop_to_circuit(sop: &Sop, aig: &mut Aig, var_map: &[Edge]) -> Edge {
    let minimized = crate::espresso::minimize(sop);
    let expr = factor(&minimized);
    expr.to_aig(aig, var_map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_logic::{TruthTable, Var};

    fn cube(lits: &[(u32, bool)]) -> Cube {
        Cube::from_literals(lits.iter().map(|&(v, n)| Literal::new(Var::new(v), n)))
            .expect("consistent")
    }

    #[test]
    fn constants() {
        assert_eq!(factor(&Sop::zero()), Expr::Const(false));
        assert_eq!(factor(&Sop::one()), Expr::Const(true));
    }

    #[test]
    fn single_cube() {
        let s = Sop::from_cubes([cube(&[(0, false), (1, true)])]);
        let e = factor(&s);
        assert_eq!(e.literal_count(), 2);
        let tt = TruthTable::from_sop(2, &s);
        for m in 0..4u64 {
            assert_eq!(e.eval_with(|v| m >> v.index() & 1 == 1), tt.get(m));
        }
    }

    #[test]
    fn common_literal_is_shared() {
        // ab + ac + ad -> a(b+c+d): 4 literals instead of 6.
        let s = Sop::from_cubes([
            cube(&[(0, false), (1, false)]),
            cube(&[(0, false), (2, false)]),
            cube(&[(0, false), (3, false)]),
        ]);
        let e = factor(&s);
        assert_eq!(e.literal_count(), 4);
        let tt = TruthTable::from_sop(4, &s);
        for m in 0..16u64 {
            assert_eq!(e.eval_with(|v| m >> v.index() & 1 == 1), tt.get(m), "m={m}");
        }
    }

    #[test]
    fn nested_factoring() {
        // abc + abd + e -> ab(c+d) + e: 5 literals instead of 7.
        let s = Sop::from_cubes([
            cube(&[(0, false), (1, false), (2, false)]),
            cube(&[(0, false), (1, false), (3, false)]),
            cube(&[(4, false)]),
        ]);
        let e = factor(&s);
        assert_eq!(e.literal_count(), 5);
    }

    #[test]
    fn factoring_preserves_function_randomly() {
        let mut state = 3u64;
        for trial in 0..30 {
            let tt = TruthTable::from_fn(6, |m| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(m * 3 + trial);
                state >> 38 & 1 == 1
            });
            let sop = tt.isop();
            let e = factor(&sop);
            for m in 0..64u64 {
                assert_eq!(
                    e.eval_with(|v| m >> v.index() & 1 == 1),
                    tt.get(m),
                    "trial {trial} m={m}"
                );
            }
            assert!(e.literal_count() <= sop.literal_count());
        }
    }

    #[test]
    fn to_aig_matches_expression() {
        let s = Sop::from_cubes([
            cube(&[(0, false), (1, false)]),
            cube(&[(0, false), (2, true)]),
            cube(&[(1, true), (2, false)]),
        ]);
        let e = factor(&s);
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 3);
        let root = e.to_aig(&mut g, &inputs);
        g.add_output(root, "f");
        for m in 0..8u64 {
            let bits: Vec<bool> = (0..3).map(|k| m >> k & 1 == 1).collect();
            assert_eq!(
                g.eval_bits(&bits)[0],
                e.eval_with(|v| m >> v.index() & 1 == 1),
                "m={m}"
            );
        }
    }

    #[test]
    fn sop_to_circuit_is_smaller_than_flat() {
        // Minterm cover of a function with lots of sharing.
        let tt = TruthTable::from_fn(5, |m| m & 1 == 1 && m.count_ones() >= 2);
        let minterms: Sop = (0..32u64)
            .filter(|&m| tt.get(m))
            .map(|m| {
                Cube::from_literals((0..5).map(|k| Var::new(k).literal(m >> k & 1 == 1)))
                    .expect("consistent")
            })
            .collect();
        let mut flat = Aig::new();
        let inputs = flat.add_inputs("x", 5);
        let f = flat.add_sop(&minterms, &inputs);
        flat.add_output(f, "f");

        let mut fac = Aig::new();
        let inputs2 = fac.add_inputs("x", 5);
        let f2 = sop_to_circuit(&minterms, &mut fac, &inputs2);
        fac.add_output(f2, "f");

        assert!(fac.gate_count() < flat.gate_count());
        for m in 0..32u64 {
            let bits: Vec<bool> = (0..5).map(|k| m >> k & 1 == 1).collect();
            assert_eq!(fac.eval_bits(&bits)[0], tt.get(m), "m={m}");
        }
    }
}
