//! Packed full assignments to a set of Boolean variables.

use std::fmt;

use rand::Rng;

use crate::{Cube, Var};

/// A full assignment `α : X → B` to a contiguous set of variables
/// `x0 .. x(n-1)`, packed 64 variables per word.
///
/// Assignments are the only thing a black-box IO generator accepts, so
/// this type is optimized for fast random generation (optionally biased
/// toward 0s or 1s, as the paper's uneven-ratio sampling requires) and for
/// being constrained to satisfy a [`Cube`].
///
/// # Examples
///
/// ```
/// use cirlearn_logic::{Assignment, Var};
///
/// let mut a = Assignment::zeros(8);
/// a.set(Var::new(3), true);
/// assert!(a.get(Var::new(3)));
/// assert_eq!(a.count_ones(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Assignment {
    words: Vec<u64>,
    len: usize,
}

impl Assignment {
    /// Creates an all-zero assignment over `len` variables.
    pub fn zeros(len: usize) -> Self {
        Assignment {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an all-one assignment over `len` variables.
    pub fn ones(len: usize) -> Self {
        let mut a = Assignment {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        a.mask_tail();
        a
    }

    /// Creates an assignment from an iterator of bits, least variable first.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut words = Vec::new();
        let mut len = 0;
        for bit in bits {
            if len % 64 == 0 {
                words.push(0);
            }
            if bit {
                *words.last_mut().expect("just pushed") |= 1u64 << (len % 64);
            }
            len += 1;
        }
        Assignment { words, len }
    }

    /// Creates a uniformly random assignment over `len` variables.
    pub fn random<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Self {
        let mut a = Assignment {
            words: (0..len.div_ceil(64)).map(|_| rng.gen()).collect(),
            len,
        };
        a.mask_tail();
        a
    }

    /// Creates a random assignment where each variable is 1 independently
    /// with probability `ratio`.
    ///
    /// This implements the paper's *uneven-ratio* sampling: some outputs
    /// only reveal their input dependencies under skewed input
    /// distributions, so support identification mixes even and uneven
    /// ratios.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not in `[0, 1]`.
    pub fn random_biased<R: Rng + ?Sized>(len: usize, ratio: f64, rng: &mut R) -> Self {
        // panic-ok: documented `# Panics` contract guard, once per
        // assignment draw.
        assert!(
            (0.0..=1.0).contains(&ratio),
            "bias ratio {ratio} outside [0, 1]"
        );
        let mut a = Assignment::zeros(len);
        for i in 0..len {
            if rng.gen_bool(ratio) {
                a.set(Var::new(i as u32), true);
            }
        }
        a
    }

    /// Returns the number of variables in this assignment.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the assignment covers no variables.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the value assigned to `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn get(&self, var: Var) -> bool {
        let i = var.index() as usize;
        // panic-ok: documented `# Panics` contract guard.
        assert!(
            i < self.len,
            "variable {var} out of range ({} vars)",
            self.len
        );
        // panic-ok: `i < len` above implies `i / 64 < words.len()`
        // (words holds ceil(len / 64) limbs).
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets the value assigned to `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set(&mut self, var: Var, value: bool) {
        let i = var.index() as usize;
        // panic-ok: documented `# Panics` contract guard.
        assert!(
            i < self.len,
            "variable {var} out of range ({} vars)",
            self.len
        );
        let mask = 1u64 << (i % 64);
        if value {
            // panic-ok: `i < len` implies `i / 64 < words.len()`.
            self.words[i / 64] |= mask;
        } else {
            // panic-ok: `i < len` implies `i / 64 < words.len()`.
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips the value assigned to `var`.
    ///
    /// Together with [`Assignment::get`], this implements the paper's
    /// `α_i` / `α_{¬i}` pair: querying an oracle before and after a flip
    /// reveals whether the output depends on `var` at this point.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn flip(&mut self, var: Var) {
        let i = var.index() as usize;
        // panic-ok: documented `# Panics` contract guard.
        assert!(
            i < self.len,
            "variable {var} out of range ({} vars)",
            self.len
        );
        // panic-ok: `i < len` implies `i / 64 < words.len()`.
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Returns a copy of this assignment with `var` set to `value`
    /// (the paper's `α_v` / `α_{¬v}` notation).
    #[must_use]
    pub fn with(&self, var: Var, value: bool) -> Self {
        let mut a = self.clone();
        a.set(var, value);
        a
    }

    /// Returns the number of variables assigned 1.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if this assignment satisfies every literal of `cube`.
    ///
    /// # Panics
    ///
    /// Panics if the cube mentions a variable out of range.
    pub fn satisfies(&self, cube: &Cube) -> bool {
        cube.literals().iter().all(|l| l.eval(self.get(l.var())))
    }

    /// Forces this assignment to satisfy `cube` by overwriting the
    /// variables the cube constrains.
    ///
    /// This is how the FBDT learner draws samples `α ⊨ c` for a tree node
    /// with path cube `c`: draw any random assignment, then constrain it.
    ///
    /// # Panics
    ///
    /// Panics if the cube mentions a variable out of range.
    pub fn constrain(&mut self, cube: &Cube) {
        for l in cube.literals() {
            self.set(l.var(), l.polarity());
        }
    }

    /// Reads the unsigned integer encoded by the given variables,
    /// most significant bit first (the paper's `N_v̄` notation).
    ///
    /// # Panics
    ///
    /// Panics if more than 64 variables are given or any is out of range.
    pub fn read_vector(&self, msb_first: &[Var]) -> u64 {
        assert!(msb_first.len() <= 64, "vector wider than 64 bits");
        let mut value = 0u64;
        for &v in msb_first {
            value = value << 1 | self.get(v) as u64;
        }
        value
    }

    /// Writes the unsigned integer `value` into the given variables,
    /// most significant bit first.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 variables are given or any is out of range.
    pub fn write_vector(&mut self, msb_first: &[Var], value: u64) {
        // panic-ok: documented `# Panics` contract guard, once per
        // vector write.
        assert!(msb_first.len() <= 64, "vector wider than 64 bits");
        for (k, &v) in msb_first.iter().rev().enumerate() {
            self.set(v, value >> k & 1 == 1);
        }
    }

    /// Iterates over the assigned values, least variable first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(Var::new(i as u32)))
    }

    /// Returns the variables assigned 1.
    pub fn one_vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.len)
            .map(|i| Var::new(i as u32))
            .filter(move |&v| self.get(v))
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl fmt::Display for Assignment {
    /// Formats the assignment as a bitstring, least variable first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for bit in self.iter() {
            f.write_str(if bit { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for Assignment {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Assignment::from_bits(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Literal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_ones() {
        let z = Assignment::zeros(70);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.len(), 70);
        let o = Assignment::ones(70);
        assert_eq!(o.count_ones(), 70);
    }

    #[test]
    fn set_get_flip() {
        let mut a = Assignment::zeros(130);
        let v = Var::new(127);
        a.set(v, true);
        assert!(a.get(v));
        a.flip(v);
        assert!(!a.get(v));
        a.flip(v);
        assert!(a.get(v));
        assert_eq!(a.count_ones(), 1);
    }

    #[test]
    fn with_does_not_mutate_original() {
        let a = Assignment::zeros(4);
        let b = a.with(Var::new(2), true);
        assert!(!a.get(Var::new(2)));
        assert!(b.get(Var::new(2)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Assignment::zeros(3).get(Var::new(3));
    }

    #[test]
    fn from_bits_roundtrip() {
        let bits = [true, false, true, true, false];
        let a: Assignment = bits.iter().copied().collect();
        assert_eq!(a.len(), 5);
        let back: Vec<bool> = a.iter().collect();
        assert_eq!(back, bits);
        assert_eq!(a.to_string(), "10110");
    }

    #[test]
    fn random_is_reproducible_and_masked() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = Assignment::random(100, &mut r1);
        let b = Assignment::random(100, &mut r2);
        assert_eq!(a, b);
        // count_ones must not count bits beyond len
        assert!(a.count_ones() <= 100);
    }

    #[test]
    fn biased_ratio_is_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Assignment::random_biased(10_000, 0.1, &mut rng);
        let ones = a.count_ones();
        assert!((700..1300).contains(&ones), "ones = {ones}");
        let b = Assignment::random_biased(10_000, 0.9, &mut rng);
        assert!(b.count_ones() > 8700);
    }

    #[test]
    fn biased_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(Assignment::random_biased(64, 0.0, &mut rng).count_ones(), 0);
        assert_eq!(
            Assignment::random_biased(64, 1.0, &mut rng).count_ones(),
            64
        );
    }

    #[test]
    fn satisfies_and_constrain() {
        let cube = Cube::from_literals([
            Literal::new(Var::new(1), false),
            Literal::new(Var::new(3), true),
        ])
        .expect("consistent cube");
        let mut a = Assignment::zeros(5);
        assert!(!a.satisfies(&cube)); // x1 must be 1
        a.constrain(&cube);
        assert!(a.satisfies(&cube));
        assert!(a.get(Var::new(1)));
        assert!(!a.get(Var::new(3)));
    }

    #[test]
    fn empty_cube_always_satisfied() {
        let a = Assignment::zeros(3);
        assert!(a.satisfies(&Cube::top()));
    }

    #[test]
    fn vector_read_write_msb_first() {
        let vars: Vec<Var> = (0..4).map(Var::new).collect();
        let mut a = Assignment::zeros(4);
        a.write_vector(&vars, 0b1010);
        assert!(a.get(Var::new(0))); // MSB
        assert!(!a.get(Var::new(1)));
        assert!(a.get(Var::new(2)));
        assert!(!a.get(Var::new(3)));
        assert_eq!(a.read_vector(&vars), 0b1010);
    }

    #[test]
    fn vector_roundtrip_all_values() {
        let vars: Vec<Var> = (2..7).map(Var::new).collect();
        let mut a = Assignment::zeros(8);
        for value in 0..32u64 {
            a.write_vector(&vars, value);
            assert_eq!(a.read_vector(&vars), value);
        }
    }

    #[test]
    fn ones_iterator() {
        let mut a = Assignment::zeros(10);
        a.set(Var::new(2), true);
        a.set(Var::new(9), true);
        let ones: Vec<u32> = a.one_vars().map(Var::index).collect();
        assert_eq!(ones, vec![2, 9]);
    }
}
