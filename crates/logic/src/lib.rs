//! Boolean foundations for the `cirlearn` logic-regression toolkit.
//!
//! This crate provides the vocabulary types shared by every other crate in
//! the workspace:
//!
//! * [`Var`] and [`Literal`] — Boolean variables and their phases,
//! * [`Cube`] — conjunctions of literals, the currency of the paper's
//!   free-binary-decision-tree (FBDT) learner,
//! * [`Sop`] — sum-of-products expressions (disjunctions of cubes),
//! * [`Assignment`] — packed full assignments used to query black-box
//!   IO generators,
//! * [`TruthTable`] — word-packed truth tables for functions of up to
//!   [`TruthTable::MAX_VARS`] variables, with cofactoring, support
//!   computation and irredundant SOP extraction (Minato–Morreale ISOP),
//! * [`SimVector`] — 64-way bit-parallel simulation values.
//!
//! # Examples
//!
//! Build the majority-of-three function as a truth table and extract an
//! irredundant sum-of-products for it:
//!
//! ```
//! use cirlearn_logic::TruthTable;
//!
//! let tt = TruthTable::from_fn(3, |bits| bits.count_ones() >= 2);
//! let sop = tt.isop();
//! assert_eq!(sop.cubes().len(), 3); // ab + bc + ac
//! for cube in sop.cubes() {
//!     assert_eq!(cube.len(), 2);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod cube;
mod error;
pub mod npn;
mod parse;
mod sim;
mod sop;
mod truth;
mod var;

pub use assignment::Assignment;
pub use cube::Cube;
pub use error::{Error, Result};
pub use npn::NpnTransform;
pub use parse::ParseBooleanError;
pub use sim::SimVector;
pub use sop::Sop;
pub use truth::TruthTable;
pub use var::{Literal, Var};
