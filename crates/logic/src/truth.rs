//! Word-packed truth tables.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

use crate::{Cube, Error, Result, Sop, Var};

/// Bit masks selecting the positions where variable `i < 6` is 1.
const VAR_MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// A truth table of a completely specified Boolean function over
/// `num_vars ≤ MAX_VARS` variables, packed 64 minterms per word.
///
/// Minterm `m` (variable `x_k` contributing bit `k`, LSB first) is stored
/// in bit `m % 64` of word `m / 64`.
///
/// Truth tables are used wherever a function is small enough to
/// manipulate exactly: the learner's exhaustive "conquer small functions"
/// path (|S'| ≤ 18 in the paper), NPN canonization in the rewriting
/// engine, and as ground truth in tests.
///
/// # Examples
///
/// ```
/// use cirlearn_logic::{TruthTable, Var};
///
/// let a = TruthTable::var(2, Var::new(0)).expect("in range");
/// let b = TruthTable::var(2, Var::new(1)).expect("in range");
/// let xor = a.clone() ^ b.clone();
/// assert_eq!(xor.count_ones(), 2);
/// assert!(xor.depends_on(Var::new(0)));
/// let sop = xor.isop();
/// assert_eq!(sop.cubes().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    num_vars: usize,
    words: Vec<u64>,
}

impl TruthTable {
    /// The maximum supported number of variables.
    ///
    /// A table at this limit occupies 2 MiB; the library never allocates
    /// a truth table without an explicit caller request.
    pub const MAX_VARS: usize = 24;

    fn word_count(num_vars: usize) -> usize {
        if num_vars >= 6 {
            1 << (num_vars - 6)
        } else {
            1
        }
    }

    fn check_vars(num_vars: usize) -> Result<()> {
        if num_vars > Self::MAX_VARS {
            Err(Error::TooManyVars {
                requested: num_vars,
                max: Self::MAX_VARS,
            })
        } else {
            Ok(())
        }
    }

    /// Mask of the valid minterm bits in the (single) word of a table
    /// with fewer than 6 variables.
    fn tail_mask(num_vars: usize) -> u64 {
        if num_vars >= 6 {
            !0
        } else {
            (1u64 << (1 << num_vars)) - 1
        }
    }

    /// Creates the constant-0 function over `num_vars` variables.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyVars`] if `num_vars > MAX_VARS`.
    pub fn zeros(num_vars: usize) -> Result<Self> {
        Self::check_vars(num_vars)?;
        Ok(TruthTable {
            num_vars,
            words: vec![0; Self::word_count(num_vars)],
        })
    }

    /// Creates the constant-1 function over `num_vars` variables.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyVars`] if `num_vars > MAX_VARS`.
    pub fn ones(num_vars: usize) -> Result<Self> {
        Self::check_vars(num_vars)?;
        Ok(TruthTable {
            num_vars,
            words: vec![Self::tail_mask(num_vars); Self::word_count(num_vars)],
        })
    }

    /// Creates the projection function of variable `var`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyVars`] or [`Error::VarOutOfRange`].
    pub fn var(num_vars: usize, var: Var) -> Result<Self> {
        Self::check_vars(num_vars)?;
        let i = var.index() as usize;
        if i >= num_vars {
            return Err(Error::VarOutOfRange {
                var: var.index(),
                num_vars,
            });
        }
        let words = if i < 6 {
            // panic-ok: `i < 6` on this branch and VAR_MASKS has 6
            // entries.
            vec![VAR_MASKS[i] & Self::tail_mask(num_vars); Self::word_count(num_vars)]
        } else {
            let stride = 1usize << (i - 6);
            (0..Self::word_count(num_vars))
                .map(|w| if w / stride % 2 == 1 { !0u64 } else { 0 })
                .collect()
        };
        Ok(TruthTable { num_vars, words })
    }

    /// Builds a table by evaluating `f` on every minterm.
    ///
    /// Bit `k` of the minterm passed to `f` is the value of variable
    /// `x_k`.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > MAX_VARS`; use [`TruthTable::zeros`] and
    /// explicit sets for a fallible path.
    pub fn from_fn<F: FnMut(u64) -> bool>(num_vars: usize, mut f: F) -> Self {
        let mut tt = TruthTable::zeros(num_vars).unwrap_or_else(|e| panic!("from_fn: {e}"));
        for m in 0..1u64 << num_vars {
            if f(m) {
                tt.set(m, true);
            }
        }
        tt
    }

    /// Builds the table of an [`Sop`] over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if the SOP mentions a variable `≥ num_vars` or if
    /// `num_vars > MAX_VARS`.
    pub fn from_sop(num_vars: usize, sop: &Sop) -> Self {
        TruthTable::from_fn(num_vars, |m| sop.eval_with(|v| m >> v.index() & 1 == 1))
    }

    /// Returns the number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Returns the raw words, 64 minterms per word, LSB-first.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Returns the value of the function at minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m ≥ 2^num_vars`.
    pub fn get(&self, m: u64) -> bool {
        // panic-ok: documented `# Panics` contract guard.
        assert!(m < 1u64 << self.num_vars, "minterm {m} out of range");
        // panic-ok: `m < 2^num_vars` implies `m / 64 < words.len()`.
        self.words[(m / 64) as usize] >> (m % 64) & 1 == 1
    }

    /// Sets the value of the function at minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m ≥ 2^num_vars`.
    pub fn set(&mut self, m: u64, value: bool) {
        // panic-ok: documented `# Panics` contract guard.
        assert!(m < 1u64 << self.num_vars, "minterm {m} out of range");
        let mask = 1u64 << (m % 64);
        if value {
            // panic-ok: `m < 2^num_vars` implies `m / 64 < words.len()`.
            self.words[(m / 64) as usize] |= mask;
        } else {
            // panic-ok: `m < 2^num_vars` implies `m / 64 < words.len()`.
            self.words[(m / 64) as usize] &= !mask;
        }
    }

    /// Returns the number of onset minterms.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Returns `true` if the function is constant 0.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` if the function is constant 1.
    pub fn is_one(&self) -> bool {
        let tail = Self::tail_mask(self.num_vars);
        self.words.iter().all(|&w| w == tail)
    }

    /// Returns the cofactor of the function on `var` in the given phase,
    /// as a function over the same variable set (independent of `var`).
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    #[must_use]
    pub fn cofactor(&self, var: Var, phase: bool) -> Self {
        let i = var.index() as usize;
        assert!(i < self.num_vars, "variable {var} out of range");
        let mut out = self.clone();
        if i < 6 {
            let mask = VAR_MASKS[i];
            let shift = 1u32 << i;
            for w in &mut out.words {
                if phase {
                    let hi = *w & mask;
                    *w = hi | hi >> shift;
                } else {
                    let lo = *w & !mask;
                    *w = lo | lo << shift;
                }
            }
        } else {
            let stride = 1usize << (i - 6);
            for base in (0..out.words.len()).step_by(2 * stride) {
                for k in 0..stride {
                    let value = if phase {
                        out.words[base + stride + k]
                    } else {
                        out.words[base + k]
                    };
                    out.words[base + k] = value;
                    out.words[base + stride + k] = value;
                }
            }
        }
        out
    }

    /// Returns the cofactor of the function on every literal of `cube`.
    #[must_use]
    pub fn cofactor_cube(&self, cube: &Cube) -> Self {
        let mut tt = self.clone();
        for lit in cube.literals() {
            tt = tt.cofactor(lit.var(), lit.polarity());
        }
        tt
    }

    /// Returns `true` if the function depends on `var`
    /// (its two cofactors differ).
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn depends_on(&self, var: Var) -> bool {
        self.cofactor(var, false) != self.cofactor(var, true)
    }

    /// Returns the exact functional support, sorted by variable index.
    pub fn support(&self) -> Vec<Var> {
        (0..self.num_vars as u32)
            .map(Var::new)
            .filter(|&v| self.depends_on(v))
            .collect()
    }

    /// Computes an irredundant sum-of-products cover using the
    /// Minato–Morreale ISOP procedure.
    ///
    /// The returned SOP covers exactly this function; each cube is prime
    /// relative to the cover and no cube can be dropped.
    pub fn isop(&self) -> Sop {
        let (sop, _) = isop_rec(self, self, self.num_vars);
        sop
    }

    /// Evaluates the function under per-variable values.
    pub fn eval_with<F: FnMut(Var) -> bool>(&self, mut value_of: F) -> bool {
        let mut m = 0u64;
        for k in 0..self.num_vars {
            if value_of(Var::new(k as u32)) {
                m |= 1 << k;
            }
        }
        self.get(m)
    }

    fn assert_same_arity(&self, other: &Self) {
        assert_eq!(
            self.num_vars, other.num_vars,
            "truth tables have different variable counts"
        );
    }
}

/// Minato–Morreale ISOP on the interval `[lower, upper]`.
///
/// Returns an SOP `S` with `lower ≤ S ≤ upper` together with the exact
/// function of `S`. `top` is the highest variable index still eligible
/// for splitting.
fn isop_rec(lower: &TruthTable, upper: &TruthTable, top: usize) -> (Sop, TruthTable) {
    let n = lower.num_vars();
    if lower.is_zero() {
        return (Sop::zero(), TruthTable::zeros(n).expect("arity checked"));
    }
    if upper.is_one() {
        return (Sop::one(), TruthTable::ones(n).expect("arity checked"));
    }
    // Find the splitting variable: the highest-indexed variable below
    // `top` on which either bound depends.
    let mut split = None;
    for k in (0..top).rev() {
        let v = Var::new(k as u32);
        if lower.depends_on(v) || upper.depends_on(v) {
            split = Some((k, v));
            break;
        }
    }
    let (k, x) = split.expect("non-constant interval must depend on a variable");

    let l0 = lower.cofactor(x, false);
    let l1 = lower.cofactor(x, true);
    let u0 = upper.cofactor(x, false);
    let u1 = upper.cofactor(x, true);

    // Cubes that must contain literal !x: onset of the 0-cofactor not
    // coverable in the 1-cofactor.
    let (s0, f0) = isop_rec(&(l0.clone() & !u1.clone()), &u0, k);
    // Cubes that must contain literal x.
    let (s1, f1) = isop_rec(&(l1.clone() & !u0.clone()), &u1, k);
    // What remains must be covered by cubes independent of x.
    let l_rest = (l0 & !f0.clone()) | (l1 & !f1.clone());
    let (s2, f2) = isop_rec(&l_rest, &(u0 & u1), k);

    let mut sop = Sop::zero();
    for c in s0 {
        sop.push(c.and_literal(x.negative()).expect("fresh variable"));
    }
    for c in s1 {
        sop.push(c.and_literal(x.positive()).expect("fresh variable"));
    }
    sop.extend(s2);

    let xt = TruthTable::var(lower.num_vars(), x).expect("in range");
    let cover = !xt.clone() & f0 | xt & f1 | f2;
    (sop, cover)
}

impl Not for TruthTable {
    type Output = TruthTable;

    fn not(mut self) -> TruthTable {
        let tail = TruthTable::tail_mask(self.num_vars);
        for w in &mut self.words {
            *w = !*w & tail;
        }
        self
    }
}

macro_rules! impl_bitop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for TruthTable {
            type Output = TruthTable;

            /// # Panics
            ///
            /// Panics if the operands have different variable counts.
            // The `^` instantiation would be `*a ^= b`, but the macro
            // has to spell the operator out.
            #[allow(clippy::assign_op_pattern)]
            fn $method(mut self, rhs: TruthTable) -> TruthTable {
                self.assert_same_arity(&rhs);
                for (a, b) in self.words.iter_mut().zip(rhs.words) {
                    *a = *a $op b;
                }
                self
            }
        }
    };
}

impl_bitop!(BitAnd, bitand, &);
impl_bitop!(BitOr, bitor, |);
impl_bitop!(BitXor, bitxor, ^);

impl fmt::Display for TruthTable {
    /// Formats as hexadecimal words, most significant word first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, w) in self.words.iter().rev().enumerate() {
            if i > 0 {
                f.write_str("_")?;
            }
            if self.num_vars >= 6 {
                write!(f, "{w:016x}")?;
            } else {
                let digits = (1usize << self.num_vars).div_ceil(4).max(1);
                write!(f, "{w:0digits$x}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn constants() {
        for n in [0usize, 1, 3, 6, 8] {
            let z = TruthTable::zeros(n).expect("small");
            let o = TruthTable::ones(n).expect("small");
            assert!(z.is_zero() && !z.is_one());
            assert!(o.is_one());
            assert_eq!(z.count_ones(), 0);
            assert_eq!(o.count_ones(), 1u64 << n);
        }
    }

    #[test]
    fn too_many_vars_is_an_error() {
        assert!(matches!(
            TruthTable::zeros(25),
            Err(Error::TooManyVars {
                requested: 25,
                max: 24
            })
        ));
    }

    #[test]
    fn var_projection_small_and_large_index() {
        for n in [3usize, 7, 9] {
            for i in 0..n {
                let t = TruthTable::var(n, v(i as u32)).expect("in range");
                assert_eq!(t.count_ones(), 1u64 << (n - 1));
                for m in 0..1u64 << n {
                    assert_eq!(t.get(m), m >> i & 1 == 1, "n={n} i={i} m={m}");
                }
            }
        }
    }

    #[test]
    fn var_out_of_range() {
        assert!(matches!(
            TruthTable::var(3, v(3)),
            Err(Error::VarOutOfRange {
                var: 3,
                num_vars: 3
            })
        ));
    }

    #[test]
    fn boolean_ops_match_bitwise_semantics() {
        let a = TruthTable::var(7, v(0)).expect("ok");
        let b = TruthTable::var(7, v(6)).expect("ok");
        let and = a.clone() & b.clone();
        let or = a.clone() | b.clone();
        let xor = a.clone() ^ b.clone();
        for m in 0..128u64 {
            let (av, bv) = (m & 1 == 1, m >> 6 & 1 == 1);
            assert_eq!(and.get(m), av && bv);
            assert_eq!(or.get(m), av || bv);
            assert_eq!(xor.get(m), av != bv);
        }
        let not_a = !a;
        for m in 0..128u64 {
            assert_eq!(not_a.get(m), m & 1 == 0);
        }
    }

    #[test]
    fn not_respects_tail_mask() {
        let z = TruthTable::zeros(3).expect("ok");
        let o = !z;
        assert!(o.is_one());
        assert_eq!(o.count_ones(), 8);
    }

    #[test]
    fn cofactor_small_var() {
        // f = x0 & x1 over 3 vars
        let f = TruthTable::var(3, v(0)).expect("ok") & TruthTable::var(3, v(1)).expect("ok");
        let f1 = f.cofactor(v(0), true); // = x1
        let f0 = f.cofactor(v(0), false); // = 0
        assert_eq!(f1, TruthTable::var(3, v(1)).expect("ok"));
        assert!(f0.is_zero());
        assert!(!f1.depends_on(v(0)));
    }

    #[test]
    fn cofactor_large_var() {
        // 8 vars, f = x7 xor x2
        let f = TruthTable::var(8, v(7)).expect("ok") ^ TruthTable::var(8, v(2)).expect("ok");
        let f1 = f.cofactor(v(7), true); // = !x2
        let f0 = f.cofactor(v(7), false); // = x2
        assert_eq!(f0, TruthTable::var(8, v(2)).expect("ok"));
        assert_eq!(f1, !TruthTable::var(8, v(2)).expect("ok"));
    }

    #[test]
    fn shannon_expansion_reconstructs() {
        let f = TruthTable::from_fn(8, |m| m.wrapping_mul(0x9e37_79b9) >> 13 & 1 == 1);
        for i in 0..8u32 {
            let x = TruthTable::var(8, v(i)).expect("ok");
            let re = x.clone() & f.cofactor(v(i), true) | !x & f.cofactor(v(i), false);
            assert_eq!(re, f, "var {i}");
        }
    }

    #[test]
    fn support_exact() {
        // f = x1 | (x3 & !x3) = x1: support {x1} even though x3 appears
        let x1 = TruthTable::var(5, v(1)).expect("ok");
        let x3 = TruthTable::var(5, v(3)).expect("ok");
        let f = x1.clone() | (x3.clone() & !x3);
        assert_eq!(f.support(), vec![v(1)]);
    }

    #[test]
    fn cofactor_cube_fixes_all_literals() {
        let f = TruthTable::from_fn(4, |m| m.count_ones() % 2 == 1); // parity
        let cube = Cube::from_literals([v(0).positive(), v(3).negative()]).expect("ok");
        let g = f.cofactor_cube(&cube);
        // parity with x0=1, x3=0 = !(x1 xor x2)
        for m in 0..16u64 {
            let expect = 1 + (m >> 1 & 1) + (m >> 2 & 1);
            assert_eq!(g.get(m), expect % 2 == 1);
        }
    }

    #[test]
    fn from_fn_and_get_agree() {
        let f = TruthTable::from_fn(10, |m| m % 3 == 0);
        for m in 0..1024u64 {
            assert_eq!(f.get(m), m % 3 == 0);
        }
    }

    #[test]
    fn isop_majority() {
        let maj = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let sop = maj.isop();
        assert_eq!(TruthTable::from_sop(3, &sop), maj);
        assert_eq!(sop.cubes().len(), 3);
        assert!(sop.cubes().iter().all(|c| c.len() == 2));
    }

    #[test]
    fn isop_parity_needs_all_minterms() {
        let parity = TruthTable::from_fn(4, |m| m.count_ones() % 2 == 1);
        let sop = parity.isop();
        assert_eq!(TruthTable::from_sop(4, &sop), parity);
        assert_eq!(sop.cubes().len(), 8); // parity has no mergeable cubes
        assert!(sop.cubes().iter().all(|c| c.len() == 4));
    }

    #[test]
    fn isop_constants() {
        assert!(TruthTable::zeros(4).expect("ok").isop().is_zero());
        assert!(TruthTable::ones(4).expect("ok").isop().is_one());
    }

    #[test]
    fn isop_random_functions_roundtrip() {
        let mut state = 0x1234_5678_u64;
        for trial in 0..20 {
            let f = TruthTable::from_fn(6, |m| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(m + trial);
                state >> 40 & 1 == 1
            });
            assert_eq!(TruthTable::from_sop(6, &f.isop()), f, "trial {trial}");
        }
    }

    #[test]
    fn isop_is_irredundant_on_samples() {
        let f = TruthTable::from_fn(5, |m| (m * 7 + 3) % 5 < 2);
        let sop = f.isop();
        // Dropping any single cube must lose coverage.
        for skip in 0..sop.cubes().len() {
            let reduced: Sop = sop
                .cubes()
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, c)| c.clone())
                .collect();
            assert_ne!(
                TruthTable::from_sop(5, &reduced),
                f,
                "cube {skip} redundant"
            );
        }
    }

    #[test]
    fn display_hex() {
        let x0 = TruthTable::var(3, v(0)).expect("ok");
        assert_eq!(x0.to_string(), "aa");
        let x6 = TruthTable::var(7, v(6)).expect("ok");
        assert_eq!(x6.to_string(), "ffffffffffffffff_0000000000000000");
    }

    #[test]
    fn eval_with_matches_get() {
        let f = TruthTable::from_fn(5, |m| m % 7 == 1);
        for m in 0..32u64 {
            assert_eq!(f.eval_with(|v| m >> v.index() & 1 == 1), f.get(m));
        }
    }
}
