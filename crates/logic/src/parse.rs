//! Text parsing for cubes and SOP expressions.
//!
//! The grammar mirrors the `Display` output of [`Cube`] and [`Sop`]:
//!
//! ```text
//! sop     := "0" | cube ( "|" cube )*
//! cube    := "1" | literal ( "&" literal )*
//! literal := "!"? "x" <index>
//! ```
//!
//! Whitespace around operators is optional. Parsing round-trips with
//! formatting, which makes textual fixtures in tests and CLI input
//! convenient.

use std::fmt;
use std::str::FromStr;

use crate::{Cube, Literal, Sop, Var};

/// Error from parsing a [`Cube`] or [`Sop`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseBooleanError {
    /// A token was not a literal of the form `x3` / `!x3`.
    BadLiteral(String),
    /// The same variable appeared in both phases within one cube.
    ContradictoryCube(String),
    /// The input was empty.
    Empty,
}

impl fmt::Display for ParseBooleanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBooleanError::BadLiteral(t) => write!(f, "not a literal: {t}"),
            ParseBooleanError::ContradictoryCube(c) => {
                write!(f, "cube contains a variable in both phases: {c}")
            }
            ParseBooleanError::Empty => f.write_str("empty boolean expression"),
        }
    }
}

impl std::error::Error for ParseBooleanError {}

fn parse_literal(token: &str) -> Result<Literal, ParseBooleanError> {
    let t = token.trim();
    let (negated, rest) = match t.strip_prefix('!') {
        Some(r) => (true, r.trim()),
        None => (false, t),
    };
    let idx = rest
        .strip_prefix('x')
        .and_then(|d| d.parse::<u32>().ok())
        .ok_or_else(|| ParseBooleanError::BadLiteral(token.to_owned()))?;
    Ok(Literal::new(Var::new(idx), negated))
}

impl FromStr for Cube {
    type Err = ParseBooleanError;

    /// Parses `x0 & !x1 & x2` (or `1` for the empty cube).
    ///
    /// # Examples
    ///
    /// ```
    /// use cirlearn_logic::Cube;
    ///
    /// let c: Cube = "x0 & !x2".parse()?;
    /// assert_eq!(c.to_string(), "x0 & !x2");
    /// # Ok::<(), cirlearn_logic::ParseBooleanError>(())
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        if t.is_empty() {
            return Err(ParseBooleanError::Empty);
        }
        if t == "1" {
            return Ok(Cube::top());
        }
        let lits = t
            .split('&')
            .map(parse_literal)
            .collect::<Result<Vec<_>, _>>()?;
        Cube::from_literals(lits).ok_or_else(|| ParseBooleanError::ContradictoryCube(s.to_owned()))
    }
}

impl FromStr for Sop {
    type Err = ParseBooleanError;

    /// Parses `x0 & !x1 | x2` (or `0` / `1` for the constants).
    ///
    /// # Examples
    ///
    /// ```
    /// use cirlearn_logic::Sop;
    ///
    /// let s: Sop = "x0 & !x1 | x2".parse()?;
    /// assert_eq!(s.cubes().len(), 2);
    /// assert_eq!(s.to_string(), "x0 & !x1 | x2");
    /// # Ok::<(), cirlearn_logic::ParseBooleanError>(())
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        if t.is_empty() {
            return Err(ParseBooleanError::Empty);
        }
        if t == "0" {
            return Ok(Sop::zero());
        }
        t.split('|')
            .map(Cube::from_str)
            .collect::<Result<Vec<_>, _>>()
            .map(Sop::from_cubes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TruthTable;

    #[test]
    fn literal_forms() {
        assert_eq!(parse_literal("x3"), Ok(Var::new(3).positive()));
        assert_eq!(parse_literal("!x3"), Ok(Var::new(3).negative()));
        assert_eq!(parse_literal(" ! x12 "), Ok(Var::new(12).negative()));
        assert!(parse_literal("y3").is_err());
        assert!(parse_literal("x").is_err());
        assert!(parse_literal("x-1").is_err());
    }

    #[test]
    fn cube_roundtrip() {
        for text in ["1", "x0", "!x1", "x0 & !x1 & x5"] {
            let c: Cube = text.parse().expect("valid");
            assert_eq!(c.to_string(), text);
        }
    }

    #[test]
    fn contradictory_cube_rejected() {
        let err = "x0 & !x0".parse::<Cube>().unwrap_err();
        assert!(matches!(err, ParseBooleanError::ContradictoryCube(_)));
    }

    #[test]
    fn sop_roundtrip_and_semantics() {
        for text in ["0", "1", "x0", "x0 & !x1 | x2", "!x0 | x0 & x1 | x2 & x3"] {
            let s: Sop = text.parse().expect("valid");
            assert_eq!(s.to_string(), text);
        }
        let s: Sop = "x0 & x1 | !x2".parse().expect("valid");
        let tt = TruthTable::from_sop(3, &s);
        for m in 0..8u64 {
            let expect = (m & 1 == 1 && m >> 1 & 1 == 1) || m >> 2 & 1 == 0;
            assert_eq!(tt.get(m), expect, "m={m}");
        }
    }

    #[test]
    fn whitespace_is_flexible() {
        let a: Sop = "x0&!x1|x2".parse().expect("valid");
        let b: Sop = "  x0  &  !x1  |  x2  ".parse().expect("valid");
        assert_eq!(a, b);
    }

    #[test]
    fn empty_is_an_error() {
        assert_eq!("".parse::<Sop>().unwrap_err(), ParseBooleanError::Empty);
        assert_eq!("  ".parse::<Cube>().unwrap_err(), ParseBooleanError::Empty);
    }
}
