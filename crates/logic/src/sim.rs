//! Bit-parallel simulation vectors.

use rand::Rng;

use crate::Assignment;

/// A bit-parallel simulation value: one bit per simulated pattern,
/// packed 64 patterns per word.
///
/// Simulating a circuit with `SimVector`s evaluates 64 input patterns
/// per word operation — the standard trick used by fraiging and by the
/// accuracy evaluator.
///
/// # Examples
///
/// ```
/// use cirlearn_logic::SimVector;
///
/// let a = SimVector::from_bits([true, true, false, false]);
/// let b = SimVector::from_bits([true, false, true, false]);
/// let mut c = a.clone();
/// c.and_assign(&b);
/// assert_eq!(c.bit(0), true);
/// assert_eq!(c.bit(1), false);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct SimVector {
    words: Vec<u64>,
    len: usize,
}

impl SimVector {
    /// Creates an all-zero vector of `len` patterns.
    pub fn zeros(len: usize) -> Self {
        SimVector {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an all-one vector of `len` patterns.
    pub fn ones(len: usize) -> Self {
        let mut v = SimVector {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        v.mask_tail();
        v
    }

    /// Creates a vector from explicit pattern bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut v = SimVector::zeros(0);
        for bit in bits {
            v.push(bit);
        }
        v
    }

    /// Creates a uniformly random vector of `len` patterns.
    pub fn random<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Self {
        let mut v = SimVector {
            words: (0..len.div_ceil(64)).map(|_| rng.gen()).collect(),
            len,
        };
        v.mask_tail();
        v
    }

    /// Collects the value of variable `var_index` across a slice of
    /// assignments: pattern `k` of the result is
    /// `assignments[k][var_index]`.
    ///
    /// This transposes row-major assignments into the column-major layout
    /// simulation needs.
    ///
    /// # Panics
    ///
    /// Panics if any assignment is shorter than `var_index + 1`.
    pub fn column(assignments: &[Assignment], var_index: u32) -> Self {
        SimVector::from_bits(
            assignments
                .iter()
                .map(|a| a.get(crate::Var::new(var_index))),
        )
    }

    /// Returns the number of patterns.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the raw words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Returns the bit of pattern `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k ≥ len`.
    pub fn bit(&self, k: usize) -> bool {
        // panic-ok: documented `# Panics` contract guard.
        assert!(
            k < self.len,
            "pattern {k} out of range ({} patterns)",
            self.len
        );
        // panic-ok: `k < len` implies `k / 64 < words.len()`.
        self.words[k / 64] >> (k % 64) & 1 == 1
    }

    /// Sets the bit of pattern `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k ≥ len`.
    pub fn set_bit(&mut self, k: usize, value: bool) {
        assert!(
            k < self.len,
            "pattern {k} out of range ({} patterns)",
            self.len
        );
        let mask = 1u64 << (k % 64);
        if value {
            self.words[k / 64] |= mask;
        } else {
            self.words[k / 64] &= !mask;
        }
    }

    /// Appends one pattern bit.
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if bit {
            // panic-ok: the branch above pushed a limb whenever
            // `len % 64 == 0`, so `words` is non-empty here.
            *self.words.last_mut().expect("just ensured") |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Returns the number of 1 bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place bitwise AND with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_assign(&mut self, other: &SimVector) {
        self.assert_same_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place bitwise OR with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or_assign(&mut self, other: &SimVector) {
        self.assert_same_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place bitwise XOR with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_assign(&mut self, other: &SimVector) {
        self.assert_same_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// In-place bitwise complement.
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Computes `a AND b` into a fresh vector, honoring per-operand
    /// complement flags — the shape needed when simulating and-inverter
    /// graphs with negated edges.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and2(a: &SimVector, ca: bool, b: &SimVector, cb: bool) -> SimVector {
        a.assert_same_len(b);
        let mut out = SimVector::zeros(a.len);
        for (o, (&x, &y)) in out.words.iter_mut().zip(a.words.iter().zip(&b.words)) {
            let x = if ca { !x } else { x };
            let y = if cb { !y } else { y };
            *o = x & y;
        }
        out.mask_tail();
        out
    }

    /// Iterates over the pattern bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |k| self.bit(k))
    }

    fn assert_same_len(&self, other: &SimVector) {
        // panic-ok: bitwise-op contract guard, once per vector op (not
        // per bit) — mixing pattern counts is a construction bug.
        assert_eq!(
            self.len, other.len,
            "simulation vectors have different pattern counts"
        );
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl FromIterator<bool> for SimVector {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        SimVector::from_bits(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn push_and_bit() {
        let mut v = SimVector::zeros(0);
        for k in 0..130 {
            v.push(k % 3 == 0);
        }
        assert_eq!(v.len(), 130);
        for k in 0..130 {
            assert_eq!(v.bit(k), k % 3 == 0);
        }
    }

    #[test]
    fn ones_masks_tail() {
        let v = SimVector::ones(70);
        assert_eq!(v.count_ones(), 70);
    }

    #[test]
    fn bitwise_ops() {
        let a = SimVector::from_bits((0..100).map(|k| k % 2 == 0));
        let b = SimVector::from_bits((0..100).map(|k| k % 3 == 0));
        let mut and = a.clone();
        and.and_assign(&b);
        let mut or = a.clone();
        or.or_assign(&b);
        let mut xor = a.clone();
        xor.xor_assign(&b);
        for k in 0..100 {
            let (x, y) = (k % 2 == 0, k % 3 == 0);
            assert_eq!(and.bit(k), x && y);
            assert_eq!(or.bit(k), x || y);
            assert_eq!(xor.bit(k), x != y);
        }
    }

    #[test]
    fn not_respects_tail() {
        let mut v = SimVector::zeros(70);
        v.not_assign();
        assert_eq!(v.count_ones(), 70);
    }

    #[test]
    fn and2_with_complements() {
        let a = SimVector::from_bits([true, true, false, false]);
        let b = SimVector::from_bits([true, false, true, false]);
        let nand_like = SimVector::and2(&a, true, &b, false); // !a & b
        assert_eq!(
            (0..4).map(|k| nand_like.bit(k)).collect::<Vec<_>>(),
            vec![false, false, true, false]
        );
        // and2 with both complements masks the tail correctly.
        let both = SimVector::and2(&a, true, &b, true); // !a & !b
        assert_eq!(both.count_ones(), 1);
        assert!(both.bit(3));
    }

    #[test]
    fn column_transposes_assignments() {
        let mut a0 = Assignment::zeros(3);
        a0.set(Var::new(1), true);
        let mut a1 = Assignment::zeros(3);
        a1.set(Var::new(1), true);
        a1.set(Var::new(2), true);
        let col1 = SimVector::column(&[a0.clone(), a1.clone()], 1);
        let col2 = SimVector::column(&[a0, a1], 2);
        assert_eq!(col1.iter().collect::<Vec<_>>(), vec![true, true]);
        assert_eq!(col2.iter().collect::<Vec<_>>(), vec![false, true]);
    }

    #[test]
    fn random_reproducible() {
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        assert_eq!(
            SimVector::random(200, &mut r1),
            SimVector::random(200, &mut r2)
        );
    }

    #[test]
    #[should_panic(expected = "different pattern counts")]
    fn mismatched_lengths_panic() {
        let mut a = SimVector::zeros(10);
        a.and_assign(&SimVector::zeros(11));
    }
}
