//! Sum-of-products expressions.

use std::fmt;

use crate::{Cube, Var};

/// A sum-of-products (SOP) expression: a disjunction of [`Cube`]s.
///
/// The FBDT learner of the paper produces its result in this form (the
/// disjunction of the constant-1 leaf cubes) before circuit construction
/// and optimization. An empty SOP is the constant-0 function; an SOP
/// containing the empty cube is constant 1.
///
/// # Examples
///
/// ```
/// use cirlearn_logic::{Cube, Sop, Var};
///
/// let a = Var::new(0);
/// let b = Var::new(1);
/// let mut sop = Sop::zero();
/// sop.push(Cube::from_literals([a.positive()]).expect("consistent"));
/// sop.push(Cube::from_literals([a.positive(), b.negative()]).expect("consistent"));
/// assert_eq!(sop.cubes().len(), 2);
/// sop.make_single_cube_minimal();
/// assert_eq!(sop.cubes().len(), 1); // a & !b is contained in a
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Sop {
    cubes: Vec<Cube>,
}

impl Sop {
    /// Returns the constant-0 SOP (no cubes).
    pub fn zero() -> Self {
        Sop::default()
    }

    /// Returns the constant-1 SOP (the single empty cube).
    pub fn one() -> Self {
        Sop {
            cubes: vec![Cube::top()],
        }
    }

    /// Builds an SOP from an iterator of cubes.
    pub fn from_cubes<I: IntoIterator<Item = Cube>>(cubes: I) -> Self {
        Sop {
            cubes: cubes.into_iter().collect(),
        }
    }

    /// Returns the cubes of this SOP.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Returns `true` if this SOP has no cubes (constant 0).
    pub fn is_zero(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Returns `true` if some cube is empty, making the SOP constant 1.
    pub fn is_one(&self) -> bool {
        self.cubes.iter().any(Cube::is_empty)
    }

    /// Appends a cube to the disjunction.
    pub fn push(&mut self, cube: Cube) {
        self.cubes.push(cube);
    }

    /// Returns the total number of literals over all cubes.
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::len).sum()
    }

    /// Returns the set of variables appearing in any cube, sorted.
    pub fn support(&self) -> Vec<Var> {
        let mut vars: Vec<Var> = self.cubes.iter().flat_map(|c| c.vars()).collect();
        vars.sort();
        vars.dedup();
        vars
    }

    /// Evaluates the SOP under per-variable values supplied by `value_of`.
    pub fn eval_with<F: FnMut(Var) -> bool>(&self, mut value_of: F) -> bool {
        self.cubes.iter().any(|c| c.eval_with(&mut value_of))
    }

    /// Removes cubes that are contained in (imply) another cube of the
    /// SOP, i.e. performs single-cube containment minimization.
    ///
    /// The function represented is unchanged. Equal cubes are collapsed
    /// to one.
    pub fn make_single_cube_minimal(&mut self) {
        // Sort by ascending literal count so containers come first.
        self.cubes.sort_by_key(Cube::len);
        self.cubes.dedup();
        let mut kept: Vec<Cube> = Vec::with_capacity(self.cubes.len());
        'outer: for cube in self.cubes.drain(..) {
            for k in &kept {
                if cube.implies(k) {
                    continue 'outer;
                }
            }
            kept.push(cube);
        }
        self.cubes = kept;
    }

    /// Iterates over the cubes.
    pub fn iter(&self) -> std::slice::Iter<'_, Cube> {
        self.cubes.iter()
    }
}

impl IntoIterator for Sop {
    type Item = Cube;
    type IntoIter = std::vec::IntoIter<Cube>;

    fn into_iter(self) -> Self::IntoIter {
        self.cubes.into_iter()
    }
}

impl<'a> IntoIterator for &'a Sop {
    type Item = &'a Cube;
    type IntoIter = std::slice::Iter<'a, Cube>;

    fn into_iter(self) -> Self::IntoIter {
        self.cubes.iter()
    }
}

impl FromIterator<Cube> for Sop {
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Self {
        Sop::from_cubes(iter)
    }
}

impl Extend<Cube> for Sop {
    fn extend<I: IntoIterator<Item = Cube>>(&mut self, iter: I) {
        self.cubes.extend(iter);
    }
}

impl fmt::Display for Sop {
    /// Formats as `x0 & !x1 | x2`; constant 0 prints as `0`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return f.write_str("0");
        }
        for (i, cube) in self.cubes.iter().enumerate() {
            if i > 0 {
                f.write_str(" | ")?;
            }
            write!(f, "{cube}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Literal;

    fn lit(var: u32, neg: bool) -> Literal {
        Literal::new(Var::new(var), neg)
    }

    fn cube(lits: &[(u32, bool)]) -> Cube {
        Cube::from_literals(lits.iter().map(|&(v, n)| lit(v, n))).expect("consistent")
    }

    #[test]
    fn constants() {
        assert!(Sop::zero().is_zero());
        assert!(!Sop::zero().is_one());
        assert!(Sop::one().is_one());
        assert!(!Sop::one().is_zero());
        assert_eq!(Sop::zero().to_string(), "0");
        assert_eq!(Sop::one().to_string(), "1");
    }

    #[test]
    fn eval_is_disjunction_of_cubes() {
        let s = Sop::from_cubes([cube(&[(0, false)]), cube(&[(1, true)])]); // x0 | !x1
        assert!(s.eval_with(|v| v.index() == 0));
        assert!(s.eval_with(|_| false)); // !x1 satisfied
        assert!(!s.eval_with(|v| v.index() == 1));
    }

    #[test]
    fn support_is_sorted_unique() {
        let s = Sop::from_cubes([cube(&[(3, false), (1, true)]), cube(&[(1, false)])]);
        let sup: Vec<u32> = s.support().iter().map(|v| v.index()).collect();
        assert_eq!(sup, vec![1, 3]);
    }

    #[test]
    fn literal_count_sums_cubes() {
        let s = Sop::from_cubes([cube(&[(0, false), (1, false)]), cube(&[(2, true)])]);
        assert_eq!(s.literal_count(), 3);
    }

    #[test]
    fn single_cube_containment() {
        let mut s = Sop::from_cubes([
            cube(&[(0, false), (1, false)]), // x0 & x1, contained in x0
            cube(&[(0, false)]),
            cube(&[(0, false)]), // duplicate
            cube(&[(2, true)]),
        ]);
        s.make_single_cube_minimal();
        assert_eq!(s.cubes().len(), 2);
        assert!(s.cubes().contains(&cube(&[(0, false)])));
        assert!(s.cubes().contains(&cube(&[(2, true)])));
    }

    #[test]
    fn containment_with_top_collapses_to_one() {
        let mut s = Sop::from_cubes([Cube::top(), cube(&[(0, false)])]);
        s.make_single_cube_minimal();
        assert_eq!(s.cubes().len(), 1);
        assert!(s.is_one());
    }

    #[test]
    fn minimization_preserves_function() {
        let mut s = Sop::from_cubes([
            cube(&[(0, false), (1, true)]),
            cube(&[(0, false)]),
            cube(&[(1, false), (2, false)]),
        ]);
        let orig = s.clone();
        s.make_single_cube_minimal();
        for bits in 0..8u32 {
            let val = |v: Var| bits >> v.index() & 1 == 1;
            assert_eq!(s.eval_with(val), orig.eval_with(val), "bits {bits:03b}");
        }
    }

    #[test]
    fn collect_and_extend() {
        let mut s: Sop = [cube(&[(0, false)])].into_iter().collect();
        s.extend([cube(&[(1, false)])]);
        assert_eq!(s.cubes().len(), 2);
        let back: Vec<Cube> = s.into_iter().collect();
        assert_eq!(back.len(), 2);
    }
}
