//! Boolean variables and literals.

use std::fmt;

/// A Boolean variable, identified by a dense non-negative index.
///
/// Variables are cheap value types; the mapping from indices to names
/// (port names of a black-box, node names of a netlist) is kept by the
/// structure that owns the variables.
///
/// # Examples
///
/// ```
/// use cirlearn_logic::Var;
///
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_string(), "x3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates the variable with the given dense index.
    pub const fn new(index: u32) -> Self {
        Var(index)
    }

    /// Returns the dense index of this variable.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the positive-phase literal of this variable.
    pub const fn positive(self) -> Literal {
        Literal::new(self, false)
    }

    /// Returns the negative-phase literal of this variable.
    pub const fn negative(self) -> Literal {
        Literal::new(self, true)
    }

    /// Returns the literal of this variable in the given phase.
    ///
    /// `value == true` yields the positive literal, so a cube built from
    /// `lit(v, value)` for each bit of a minterm is satisfied exactly by
    /// that minterm.
    pub const fn literal(self, value: bool) -> Literal {
        Literal::new(self, !value)
    }
}

impl From<u32> for Var {
    fn from(index: u32) -> Self {
        Var::new(index)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable together with a phase.
///
/// Internally encoded as `2 * var + negated`, the convention used by
/// AIGER, ABC and most SAT solvers, so literals order first by variable
/// and then positive-before-negative.
///
/// # Examples
///
/// ```
/// use cirlearn_logic::{Literal, Var};
///
/// let a = Var::new(0);
/// assert_eq!(a.positive().to_string(), "x0");
/// assert_eq!(a.negative().to_string(), "!x0");
/// assert_eq!(a.positive().complement(), a.negative());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal(u32);

impl Literal {
    /// Creates a literal from a variable and a negation flag.
    pub const fn new(var: Var, negated: bool) -> Self {
        Literal(var.0 * 2 + negated as u32)
    }

    /// Reconstructs a literal from its `2 * var + negated` encoding.
    pub const fn from_code(code: u32) -> Self {
        Literal(code)
    }

    /// Returns the `2 * var + negated` encoding of this literal.
    pub const fn code(self) -> u32 {
        self.0
    }

    /// Returns the variable of this literal.
    pub const fn var(self) -> Var {
        Var(self.0 / 2)
    }

    /// Returns `true` if this is a negative-phase literal.
    pub const fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the value of the variable that satisfies this literal.
    pub const fn polarity(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns the literal of the same variable in the opposite phase.
    #[must_use]
    pub const fn complement(self) -> Self {
        Literal(self.0 ^ 1)
    }

    /// Evaluates the literal under the given value of its variable.
    pub const fn eval(self, value: bool) -> bool {
        value != self.is_negated()
    }
}

impl From<Var> for Literal {
    fn from(var: Var) -> Self {
        var.positive()
    }
}

impl std::ops::Not for Literal {
    type Output = Literal;

    fn not(self) -> Literal {
        self.complement()
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "!{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_roundtrip() {
        for i in [0u32, 1, 7, 1000] {
            assert_eq!(Var::new(i).index(), i);
            assert_eq!(Var::from(i), Var::new(i));
        }
    }

    #[test]
    fn literal_encoding_matches_aiger_convention() {
        let v = Var::new(5);
        assert_eq!(v.positive().code(), 10);
        assert_eq!(v.negative().code(), 11);
        assert_eq!(Literal::from_code(11), v.negative());
    }

    #[test]
    fn literal_phase_accessors() {
        let v = Var::new(2);
        assert!(!v.positive().is_negated());
        assert!(v.negative().is_negated());
        assert!(v.positive().polarity());
        assert!(!v.negative().polarity());
    }

    #[test]
    fn complement_is_involutive() {
        let l = Var::new(9).negative();
        assert_eq!(l.complement().complement(), l);
        assert_eq!(!!l, l);
        assert_ne!(l.complement(), l);
        assert_eq!(l.complement().var(), l.var());
    }

    #[test]
    fn literal_eval() {
        let v = Var::new(0);
        assert!(v.positive().eval(true));
        assert!(!v.positive().eval(false));
        assert!(!v.negative().eval(true));
        assert!(v.negative().eval(false));
    }

    #[test]
    fn literal_from_value_phase() {
        let v = Var::new(4);
        // literal(v, true) must be satisfied when v = 1.
        assert!(v.literal(true).eval(true));
        assert!(v.literal(false).eval(false));
    }

    #[test]
    fn ordering_groups_by_variable() {
        let a = Var::new(0);
        let b = Var::new(1);
        let mut lits = vec![b.negative(), a.negative(), b.positive(), a.positive()];
        lits.sort();
        assert_eq!(
            lits,
            vec![a.positive(), a.negative(), b.positive(), b.negative()]
        );
    }

    #[test]
    fn display_forms() {
        let v = Var::new(12);
        assert_eq!(format!("{}", v.positive()), "x12");
        assert_eq!(format!("{}", v.negative()), "!x12");
    }
}
