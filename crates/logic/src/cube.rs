//! Cubes: conjunctions of literals.

use std::fmt;

use crate::{Literal, Var};

/// A cube — a conjunction of literals over distinct variables, kept
/// sorted by variable index.
///
/// Cubes are the central object of the paper's FBDT learner: every tree
/// node carries the cube of decisions on the path from the root, and the
/// learned function is the disjunction of the leaf cubes. The empty cube
/// ([`Cube::top`]) is the constant-1 function.
///
/// A cube containing both phases of a variable would be constant 0;
/// constructors return `None` instead of ever building such a cube, so a
/// `Cube` value is always satisfiable.
///
/// # Examples
///
/// ```
/// use cirlearn_logic::{Cube, Var};
///
/// let a = Var::new(0);
/// let b = Var::new(1);
/// let cube = Cube::top()
///     .and_literal(a.positive()).expect("consistent")
///     .and_literal(b.negative()).expect("consistent");
/// assert_eq!(cube.len(), 2);
/// assert_eq!(cube.to_string(), "x0 & !x1");
/// assert!(cube.and_literal(a.negative()).is_none()); // a & !a = 0
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cube {
    /// Sorted by variable; at most one literal per variable.
    literals: Vec<Literal>,
}

impl Cube {
    /// Returns the empty cube, i.e. the constant-1 function.
    pub fn top() -> Self {
        Cube::default()
    }

    /// Builds a cube from literals, or `None` if two literals of the same
    /// variable with opposite phases make the conjunction constant 0.
    ///
    /// Duplicate literals are collapsed.
    pub fn from_literals<I: IntoIterator<Item = Literal>>(literals: I) -> Option<Self> {
        let mut lits: Vec<Literal> = literals.into_iter().collect();
        lits.sort();
        lits.dedup();
        for pair in lits.windows(2) {
            if pair[0].var() == pair[1].var() {
                return None; // opposite phases of the same variable
            }
        }
        Some(Cube { literals: lits })
    }

    /// Builds the minterm cube matching `assignment` restricted to `vars`:
    /// each variable appears in the phase it has in the assignment.
    pub fn minterm(vars: &[Var], assignment: &crate::Assignment) -> Self {
        let mut literals: Vec<Literal> =
            vars.iter().map(|&v| v.literal(assignment.get(v))).collect();
        literals.sort();
        literals.dedup();
        Cube { literals }
    }

    /// Returns the conjunction of this cube with one more literal, or
    /// `None` if the result would be constant 0.
    #[must_use]
    pub fn and_literal(&self, literal: Literal) -> Option<Self> {
        match self.phase_of(literal.var()) {
            Some(phase) if phase == literal.polarity() => Some(self.clone()),
            Some(_) => None,
            None => {
                let mut literals = self.literals.clone();
                let pos = literals
                    .binary_search(&literal)
                    .unwrap_or_else(|insert_at| insert_at);
                literals.insert(pos, literal);
                Some(Cube { literals })
            }
        }
    }

    /// Returns the conjunction of two cubes, or `None` if they conflict.
    #[must_use]
    pub fn intersect(&self, other: &Cube) -> Option<Self> {
        let mut literals = Vec::with_capacity(self.literals.len() + other.literals.len());
        let (mut i, mut j) = (0, 0);
        while i < self.literals.len() && j < other.literals.len() {
            let (a, b) = (self.literals[i], other.literals[j]);
            if a.var() == b.var() {
                if a != b {
                    return None;
                }
                literals.push(a);
                i += 1;
                j += 1;
            } else if a.var() < b.var() {
                literals.push(a);
                i += 1;
            } else {
                literals.push(b);
                j += 1;
            }
        }
        literals.extend_from_slice(&self.literals[i..]);
        literals.extend_from_slice(&other.literals[j..]);
        Some(Cube { literals })
    }

    /// Returns the literals of this cube, sorted by variable.
    pub fn literals(&self) -> &[Literal] {
        &self.literals
    }

    /// Returns the number of literals.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// Returns `true` for the empty (constant-1) cube.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Returns the phase in which `var` appears, or `None` if it does not.
    ///
    /// `Some(true)` means the positive literal is present.
    pub fn phase_of(&self, var: Var) -> Option<bool> {
        self.literals
            .binary_search_by_key(&var, |l| l.var())
            .ok()
            // panic-ok: `binary_search` returns in-bounds indices.
            .map(|i| self.literals[i].polarity())
    }

    /// Returns `true` if `var` appears in this cube (in either phase).
    pub fn contains_var(&self, var: Var) -> bool {
        self.phase_of(var).is_some()
    }

    /// Iterates over the variables constrained by this cube.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.literals.iter().map(|l| l.var())
    }

    /// Returns `true` if every assignment satisfying `self` also
    /// satisfies `other` (i.e. `self ⇒ other`; `other`'s literal set is a
    /// subset of `self`'s).
    pub fn implies(&self, other: &Cube) -> bool {
        let mut i = 0;
        for &lit in &other.literals {
            loop {
                if i == self.literals.len() {
                    return false;
                }
                if self.literals[i] == lit {
                    i += 1;
                    break;
                }
                if self.literals[i].var() >= lit.var() {
                    return false;
                }
                i += 1;
            }
        }
        true
    }

    /// Returns the number of variables on which the two cubes have
    /// opposite phases (the *distance* of the espresso literature).
    ///
    /// Distance 0 means the cubes intersect; distance 1 means they can be
    /// merged by the consensus rule.
    pub fn distance(&self, other: &Cube) -> usize {
        let (mut i, mut j, mut d) = (0, 0, 0);
        while i < self.literals.len() && j < other.literals.len() {
            let (a, b) = (self.literals[i], other.literals[j]);
            if a.var() == b.var() {
                if a != b {
                    d += 1;
                }
                i += 1;
                j += 1;
            } else if a.var() < b.var() {
                i += 1;
            } else {
                j += 1;
            }
        }
        d
    }

    /// Returns the smallest cube containing both cubes (literal-set
    /// intersection, keeping only literals present in both with the same
    /// phase).
    #[must_use]
    pub fn supercube(&self, other: &Cube) -> Cube {
        let (mut i, mut j) = (0, 0);
        let mut literals = Vec::new();
        while i < self.literals.len() && j < other.literals.len() {
            let (a, b) = (self.literals[i], other.literals[j]);
            if a.var() == b.var() {
                if a == b {
                    literals.push(a);
                }
                i += 1;
                j += 1;
            } else if a.var() < b.var() {
                i += 1;
            } else {
                j += 1;
            }
        }
        Cube { literals }
    }

    /// Returns this cube with `var` removed, if present.
    #[must_use]
    pub fn without_var(&self, var: Var) -> Cube {
        Cube {
            literals: self
                .literals
                .iter()
                .copied()
                .filter(|l| l.var() != var)
                .collect(),
        }
    }

    /// Evaluates the cube under per-variable values supplied by `value_of`.
    pub fn eval_with<F: FnMut(Var) -> bool>(&self, mut value_of: F) -> bool {
        self.literals.iter().all(|l| l.eval(value_of(l.var())))
    }
}

impl fmt::Display for Cube {
    /// Formats as `x0 & !x1 & x2`; the empty cube prints as `1`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.literals.is_empty() {
            return f.write_str("1");
        }
        for (i, lit) in self.literals.iter().enumerate() {
            if i > 0 {
                f.write_str(" & ")?;
            }
            write!(f, "{lit}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assignment;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn top_is_constant_one() {
        let t = Cube::top();
        assert!(t.is_empty());
        assert_eq!(t.to_string(), "1");
        assert!(t.eval_with(|_| false));
    }

    #[test]
    fn from_literals_dedupes_and_sorts() {
        let c = Cube::from_literals([v(3).positive(), v(1).negative(), v(3).positive()])
            .expect("consistent");
        assert_eq!(c.len(), 2);
        assert_eq!(c.literals()[0], v(1).negative());
        assert_eq!(c.literals()[1], v(3).positive());
    }

    #[test]
    fn contradiction_detected() {
        assert!(Cube::from_literals([v(2).positive(), v(2).negative()]).is_none());
    }

    #[test]
    fn and_literal_cases() {
        let c = Cube::from_literals([v(1).positive()]).expect("consistent");
        // Same literal: unchanged.
        assert_eq!(c.and_literal(v(1).positive()).expect("same"), c);
        // Opposite phase: contradiction.
        assert!(c.and_literal(v(1).negative()).is_none());
        // New variable: inserted in order.
        let d = c.and_literal(v(0).negative()).expect("consistent");
        assert_eq!(d.literals()[0].var(), v(0));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn intersect_merges_or_conflicts() {
        let a = Cube::from_literals([v(0).positive(), v(2).negative()]).expect("ok");
        let b = Cube::from_literals([v(1).positive(), v(2).negative()]).expect("ok");
        let ab = a.intersect(&b).expect("compatible");
        assert_eq!(ab.len(), 3);
        let c = Cube::from_literals([v(2).positive()]).expect("ok");
        assert!(a.intersect(&c).is_none());
        // Intersection with top is identity.
        assert_eq!(a.intersect(&Cube::top()).expect("ok"), a);
    }

    #[test]
    fn phase_and_membership() {
        let c = Cube::from_literals([v(5).negative()]).expect("ok");
        assert_eq!(c.phase_of(v(5)), Some(false));
        assert_eq!(c.phase_of(v(4)), None);
        assert!(c.contains_var(v(5)));
        assert!(!c.contains_var(v(0)));
    }

    #[test]
    fn implies_subset_semantics() {
        let big =
            Cube::from_literals([v(0).positive(), v(1).negative(), v(2).positive()]).expect("ok");
        let small = Cube::from_literals([v(1).negative()]).expect("ok");
        assert!(big.implies(&small));
        assert!(!small.implies(&big));
        assert!(big.implies(&Cube::top()));
        let other_phase = Cube::from_literals([v(1).positive()]).expect("ok");
        assert!(!big.implies(&other_phase));
        // Reflexive.
        assert!(big.implies(&big));
    }

    #[test]
    fn distance_counts_phase_conflicts() {
        let a = Cube::from_literals([v(0).positive(), v(1).positive()]).expect("ok");
        let b = Cube::from_literals([v(0).negative(), v(1).negative()]).expect("ok");
        assert_eq!(a.distance(&b), 2);
        let c = Cube::from_literals([v(0).positive(), v(2).positive()]).expect("ok");
        assert_eq!(a.distance(&c), 0);
        assert_eq!(a.distance(&Cube::top()), 0);
    }

    #[test]
    fn supercube_keeps_common_literals() {
        let a = Cube::from_literals([v(0).positive(), v(1).positive()]).expect("ok");
        let b = Cube::from_literals([v(0).positive(), v(1).negative()]).expect("ok");
        let s = a.supercube(&b);
        assert_eq!(s.literals(), &[v(0).positive()]);
    }

    #[test]
    fn minterm_matches_assignment() {
        let mut asg = Assignment::zeros(4);
        asg.set(v(1), true);
        asg.set(v(3), true);
        let vars: Vec<Var> = (0..4).map(Var::new).collect();
        let m = Cube::minterm(&vars, &asg);
        assert_eq!(m.len(), 4);
        assert!(asg.satisfies(&m));
        let mut other = asg.clone();
        other.flip(v(0));
        assert!(!other.satisfies(&m));
    }

    #[test]
    fn without_var_removes_only_that_var() {
        let c = Cube::from_literals([v(0).positive(), v(1).negative()]).expect("ok");
        let d = c.without_var(v(1));
        assert_eq!(d.literals(), &[v(0).positive()]);
        assert_eq!(c.without_var(v(9)), c);
    }

    #[test]
    fn display_form() {
        let c = Cube::from_literals([v(2).positive(), v(0).negative()]).expect("ok");
        assert_eq!(c.to_string(), "!x0 & x2");
    }
}
