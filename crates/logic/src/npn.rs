//! NPN canonization of small truth tables.
//!
//! Two functions are *NPN-equivalent* when one can be obtained from the
//! other by Negating inputs, Permuting inputs and/or Negating the
//! output. Cut-rewriting engines canonize each cut function so one
//! resynthesis per equivalence class serves every member — ABC's
//! rewrite keeps its precomputed subgraphs keyed this way.
//!
//! This module canonizes exhaustively (all `n!·2^(n+1)` transforms),
//! which is exact and fast enough for the `n ≤ 6` cuts rewriting uses.

use crate::{Error, Result, TruthTable};

/// The maximum variable count supported by NPN canonization.
pub const MAX_NPN_VARS: usize = 6;

/// An NPN transform: `g(x) = out_neg ⊕ f(y)` with
/// `y[perm[i]] = x[i] ⊕ input_neg[i]`.
///
/// [`NpnTransform::apply`] maps `f` to `g`;
/// [`NpnTransform::apply_inverse`] maps `g` back to `f`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NpnTransform {
    /// `perm[i]` = the variable of the *original* function that input
    /// `i` of the transformed function feeds.
    pub perm: Vec<u8>,
    /// Bit `i` set = input `i` of the transformed function is negated
    /// before entering the original.
    pub input_neg: u32,
    /// Whether the output is negated.
    pub output_neg: bool,
}

impl NpnTransform {
    /// The identity transform over `n` variables.
    pub fn identity(n: usize) -> Self {
        NpnTransform {
            perm: (0..n as u8).collect(),
            input_neg: 0,
            output_neg: false,
        }
    }

    /// Applies the transform to `f`, producing `g` as defined above.
    ///
    /// # Panics
    ///
    /// Panics if `f` has a different variable count than the transform.
    pub fn apply(&self, f: &TruthTable) -> TruthTable {
        let n = self.perm.len();
        assert_eq!(f.num_vars(), n, "arity mismatch");
        TruthTable::from_fn(n, |m| {
            // m indexes g's inputs x; build f's input y.
            let mut y = 0u64;
            for (i, &p) in self.perm.iter().enumerate() {
                let xi = (m >> i & 1 == 1) != (self.input_neg >> i & 1 == 1);
                if xi {
                    y |= 1 << p;
                }
            }
            f.get(y) != self.output_neg
        })
    }

    /// Applies the inverse transform, recovering `f` from `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` has a different variable count than the transform.
    pub fn apply_inverse(&self, g: &TruthTable) -> TruthTable {
        let n = self.perm.len();
        assert_eq!(g.num_vars(), n, "arity mismatch");
        TruthTable::from_fn(n, |y| {
            // y indexes f's inputs; build g's input x.
            let mut x = 0u64;
            for (i, &p) in self.perm.iter().enumerate() {
                let yi = y >> p & 1 == 1;
                if yi != (self.input_neg >> i & 1 == 1) {
                    x |= 1 << i;
                }
            }
            g.get(x) != self.output_neg
        })
    }
}

impl TruthTable {
    /// Computes the NPN-canonical representative of this function and
    /// the transform mapping this function onto it.
    ///
    /// The representative is the lexicographically smallest truth table
    /// (by raw words) over all input negations, input permutations and
    /// output negation, so any two NPN-equivalent functions return the
    /// same representative.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyVars`] for functions over more than
    /// [`MAX_NPN_VARS`] variables.
    pub fn npn_canonical(&self) -> Result<(TruthTable, NpnTransform)> {
        let n = self.num_vars();
        if n > MAX_NPN_VARS {
            return Err(Error::TooManyVars {
                requested: n,
                max: MAX_NPN_VARS,
            });
        }
        let mut best: Option<(TruthTable, NpnTransform)> = None;
        let mut perm: Vec<u8> = (0..n as u8).collect();
        permute_all(&mut perm, &mut |perm| {
            for input_neg in 0..1u32 << n {
                for output_neg in [false, true] {
                    let t = NpnTransform {
                        perm: perm.to_vec(),
                        input_neg,
                        output_neg,
                    };
                    let candidate = t.apply(self);
                    let better = match &best {
                        None => true,
                        Some((b, _)) => candidate.words() < b.words(),
                    };
                    if better {
                        best = Some((candidate, t));
                    }
                }
            }
        });
        Ok(best.expect("at least the identity transform was tried"))
    }
}

/// Heap's algorithm: calls `visit` with every permutation of `items`.
fn permute_all(items: &mut [u8], visit: &mut impl FnMut(&[u8])) {
    fn heap(k: usize, items: &mut [u8], visit: &mut impl FnMut(&[u8])) {
        if k <= 1 {
            visit(items);
            return;
        }
        for i in 0..k {
            heap(k - 1, items, visit);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    let n = items.len();
    if n == 0 {
        visit(items);
    } else {
        heap(n, items, visit);
    }
}

/// Convenience: returns only the canonical representative.
///
/// See [`TruthTable::npn_canonical`].
pub fn npn_class(tt: &TruthTable) -> Result<TruthTable> {
    Ok(tt.npn_canonical()?.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn var(n: usize, i: u32) -> TruthTable {
        TruthTable::var(n, Var::new(i)).expect("in range")
    }

    #[test]
    fn identity_roundtrip() {
        let f = TruthTable::from_fn(4, |m| m % 3 == 1);
        let t = NpnTransform::identity(4);
        assert_eq!(t.apply(&f), f);
        assert_eq!(t.apply_inverse(&f), f);
    }

    #[test]
    fn apply_then_inverse_is_identity() {
        let f = TruthTable::from_fn(4, |m| (m * 7 + 1) % 5 < 2);
        let t = NpnTransform {
            perm: vec![2, 0, 3, 1],
            input_neg: 0b1010,
            output_neg: true,
        };
        let g = t.apply(&f);
        assert_eq!(t.apply_inverse(&g), f);
        assert_ne!(g, f);
    }

    #[test]
    fn canonical_is_invariant_under_input_permutation() {
        let n = 4;
        // f = x0 & !x2 | x3
        let f = var(n, 0) & !var(n, 2) | var(n, 3);
        // Same function with inputs relabelled.
        let g = var(n, 3) & !var(n, 1) | var(n, 0);
        let (cf, _) = f.npn_canonical().expect("small");
        let (cg, _) = g.npn_canonical().expect("small");
        assert_eq!(cf, cg);
    }

    #[test]
    fn canonical_is_invariant_under_negations() {
        let n = 3;
        let f = var(n, 0) ^ var(n, 1) & var(n, 2);
        let g = !(!var(n, 0) ^ var(n, 1) & !var(n, 2));
        let (cf, _) = f.npn_canonical().expect("small");
        let (cg, _) = g.npn_canonical().expect("small");
        assert_eq!(cf, cg);
    }

    #[test]
    fn transform_maps_f_to_canonical() {
        let f = TruthTable::from_fn(5, |m| m.wrapping_mul(0x2545_F491) >> 17 & 1 == 1);
        let (canon, t) = f.npn_canonical().expect("small");
        assert_eq!(t.apply(&f), canon);
        assert_eq!(t.apply_inverse(&canon), f);
    }

    #[test]
    fn distinct_classes_stay_distinct() {
        // AND and XOR of two variables are not NPN-equivalent.
        let and2 = var(2, 0) & var(2, 1);
        let xor2 = var(2, 0) ^ var(2, 1);
        assert_ne!(
            npn_class(&and2).expect("small"),
            npn_class(&xor2).expect("small")
        );
    }

    #[test]
    fn all_two_var_functions_fall_into_four_classes() {
        // Classic result: 16 functions over 2 vars form 4 NPN classes
        // (const, literal, AND-type, XOR-type).
        use std::collections::HashSet;
        let mut classes = HashSet::new();
        for bits in 0..16u64 {
            let f = TruthTable::from_fn(2, |m| bits >> m & 1 == 1);
            classes.insert(npn_class(&f).expect("small").words().to_vec());
        }
        assert_eq!(classes.len(), 4);
    }

    #[test]
    fn too_many_vars_is_an_error() {
        let f = TruthTable::zeros(7).expect("7 vars ok for table");
        assert!(f.npn_canonical().is_err());
    }

    #[test]
    fn zero_var_function() {
        let f = TruthTable::ones(0).expect("tiny");
        let (c, t) = f.npn_canonical().expect("small");
        // Canonical form of constant 1 is constant 0 with output
        // negation (lexicographically smaller).
        assert!(c.is_zero());
        assert!(t.output_neg);
    }
}
