//! Error type shared by the logic foundations.

use std::fmt;

/// A specialized result type for logic operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the logic foundation types.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A truth table was requested for more variables than the word-packed
    /// representation supports.
    TooManyVars {
        /// The number of variables requested.
        requested: usize,
        /// The maximum supported number of variables.
        max: usize,
    },
    /// Two operands of a binary operation have different variable counts.
    ArityMismatch {
        /// Variable count of the left operand.
        left: usize,
        /// Variable count of the right operand.
        right: usize,
    },
    /// A variable index is out of range for the operation.
    VarOutOfRange {
        /// The offending variable index.
        var: u32,
        /// The number of variables in scope.
        num_vars: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TooManyVars { requested, max } => {
                write!(
                    f,
                    "truth table over {requested} variables exceeds the maximum of {max}"
                )
            }
            Error::ArityMismatch { left, right } => {
                write!(
                    f,
                    "operands have mismatched variable counts {left} and {right}"
                )
            }
            Error::VarOutOfRange { var, num_vars } => {
                write!(f, "variable x{var} out of range for {num_vars} variables")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let msgs = [
            Error::TooManyVars {
                requested: 40,
                max: 24,
            }
            .to_string(),
            Error::ArityMismatch { left: 3, right: 4 }.to_string(),
            Error::VarOutOfRange {
                var: 9,
                num_vars: 4,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
