//! End-to-end executor observability: a multi-worker steal workload
//! whose counters surface through the telemetry crate's run report.

#![cfg(not(any(loom, race)))]

use cirlearn_exec::sync::Arc;
use cirlearn_exec::{DequeStats, Steal, Worker, WorkerObserver};
use cirlearn_telemetry::Telemetry;

#[test]
fn multi_worker_run_reports_nonzero_exec_counters() {
    let telemetry = Telemetry::recording();
    let stats = Arc::new(DequeStats::new());
    let worker: Worker<u64> = Worker::with_stats(2048, Arc::clone(&stats));

    const ITEMS: u64 = 1000;
    for v in 0..ITEMS {
        worker.push(v).expect("capacity covers the workload");
    }

    // Drain a batch before the stealers exist so `pops > 0` holds
    // regardless of how the steal race plays out.
    let mut got = Vec::new();
    let mut observer = WorkerObserver::new(&telemetry);
    for _ in 0..100 {
        observer.busy();
        got.push(worker.pop().expect("batch fits the backlog"));
    }

    let stealers: Vec<_> = (0..2)
        .map(|_| {
            let stealer = worker.stealer();
            let telemetry = telemetry.clone();
            std::thread::spawn(move || {
                let mut observer = WorkerObserver::new(&telemetry);
                let mut got = Vec::new();
                loop {
                    match stealer.steal() {
                        Steal::Success(v) => {
                            observer.busy();
                            got.push(v);
                        }
                        Steal::Retry => {
                            observer.idle();
                            std::thread::yield_now();
                        }
                        Steal::Empty => break,
                    }
                }
                observer.idle();
                got
            })
        })
        .collect();

    // Pop a second bounded batch concurrently with the stealers, then
    // stop: the stealers are the only consumers of the remainder, so
    // `steals > 0` is guaranteed rather than race-dependent.
    for _ in 0..100 {
        let Some(v) = worker.pop() else { break };
        observer.busy();
        got.push(v);
    }
    observer.idle();
    drop(observer);
    for handle in stealers {
        got.extend(handle.join().expect("stealer thread"));
    }
    got.sort_unstable();
    assert_eq!(got, (0..ITEMS).collect::<Vec<_>>(), "exactly-once delivery");

    stats.publish(&telemetry);
    let exec = telemetry.report().exec;
    assert!(exec.any(), "exec section is populated");
    assert_eq!(exec.pushes, ITEMS);
    assert_eq!(
        exec.pops + exec.steals,
        ITEMS,
        "every item popped or stolen"
    );
    assert!(exec.steals > 0, "stealers drained from a 1000-item backlog");
    assert!(exec.pops > 0, "the worker kept some items local");
    assert!(exec.steal_empty >= 2, "each stealer terminated on Empty");
    assert_eq!(exec.workers, 3);
    assert!(exec.depth_max >= ITEMS, "backlog high-water mark");
    assert!(exec.steal_ratio() > 0.0 && exec.steal_ratio() < 1.0);

    let histograms = telemetry.report().histograms;
    let busy = histograms
        .get(cirlearn_telemetry::histograms::EXEC_BUSY_NS)
        .expect("busy spans merged");
    assert!(busy.count > 0);
}

#[test]
fn stats_free_worker_reports_an_empty_exec_section() {
    let telemetry = Telemetry::recording();
    let worker: Worker<u64> = Worker::new(8);
    worker.push(1).unwrap();
    assert_eq!(worker.pop(), Some(1));
    assert!(!telemetry.report().exec.any());
}
