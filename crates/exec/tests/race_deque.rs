//! Running the happens-before race detector over the Chase–Lev deque
//! on real threads.
//!
//! Built only under `RUSTFLAGS="--cfg race"`: the crate's `sync` alias
//! routes the deque's atomics through `vendor/tsan`'s instrumented
//! wrappers and spawns threads with fork/join edges recorded. The
//! claim verified here is the one the executor will rely on: a
//! successful steal is an Acquire of everything the worker did before
//! the push — so task payloads handed through the deque need no other
//! synchronization. The seeded test proves the detector is live by
//! reading a payload *without* the deque edge.

#![cfg(race)]

use std::panic::{catch_unwind, AssertUnwindSafe};

use cirlearn_exec::sync::{thread, Arc};
use cirlearn_exec::{Steal, Worker};
use tsan::RacyCell;

#[test]
fn a_steal_carries_a_happens_before_edge_to_the_payload() {
    let cell = Arc::new(RacyCell::new(0u64));
    let w: Worker<u64> = Worker::new(4);
    let s = w.stealer();
    let c2 = Arc::clone(&cell);
    let stealer = thread::spawn(move || loop {
        match s.steal() {
            Steal::Success(v) => {
                // Ordered after the parent's write purely by the
                // deque's Release push / Acquire steal.
                let seen = c2.read(|x| *x);
                break (v, seen);
            }
            Steal::Empty | Steal::Retry => thread::yield_now(),
        }
    });
    cell.write(|x| *x = 42);
    w.push(7).unwrap();
    let (v, seen) = stealer.join().expect("no race through the deque handoff");
    assert_eq!(v, 7);
    assert_eq!(seen, 42);
}

#[test]
fn reading_the_payload_without_the_deque_edge_is_flagged() {
    // The same shape minus the deque: sibling accesses with no
    // synchronization. One side must panic with both stacks — proof
    // the clean run above is clean because of the deque's edge, not
    // because the detector is asleep.
    let cell = Arc::new(RacyCell::new(0u64));
    let c2 = Arc::clone(&cell);
    let reader = thread::spawn(move || c2.read(|x| *x));
    let parent = catch_unwind(AssertUnwindSafe(|| cell.write(|x| *x = 1)));
    let child = reader.join();
    assert!(
        parent.is_err() || child.is_err(),
        "seeded unsynchronized payload access was not detected"
    );
}

#[test]
fn concurrent_pops_and_steals_conserve_items() {
    let total = 200u64;
    let w: Worker<u64> = Worker::new(256);
    for v in 0..total {
        w.push(v).unwrap();
    }
    let stealers: Vec<_> = (0..2)
        .map(|_| {
            let s = w.stealer();
            thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match s.steal() {
                        Steal::Success(v) => got.push(v),
                        Steal::Empty => break,
                        Steal::Retry => thread::yield_now(),
                    }
                }
                got
            })
        })
        .collect();
    let mut got = Vec::new();
    while let Some(v) = w.pop() {
        got.push(v);
    }
    for h in stealers {
        got.extend(h.join().expect("no race on the steal path"));
    }
    got.sort_unstable();
    assert_eq!(
        got,
        (0..total).collect::<Vec<_>>(),
        "an item was lost or delivered twice"
    );
}
