//! Property tests for the Chase–Lev deque (tier-1, default backend).
//!
//! Two layers of randomized evidence on real `std` atomics:
//!
//! - sequential semantics against a `VecDeque` reference model — pop
//!   is LIFO, steal is FIFO, capacity rejections hand the value back;
//! - steal-count conservation under real contention — however pops
//!   and concurrent stealers interleave, every pushed item is
//!   delivered to exactly one taker.

#![cfg(not(any(loom, race)))]

use std::collections::VecDeque;

use cirlearn_exec::{Steal, Worker};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn sequential_ops_match_the_reference_model(
        ops in proptest::collection::vec((0u8..3, 0u64..1000), 0..200),
    ) {
        let w: Worker<u64> = Worker::new(16);
        let s = w.stealer();
        let mut model: VecDeque<u64> = VecDeque::new();
        let cap = 16;
        for (op, value) in ops {
            match op {
                0 => match w.push(value) {
                    Ok(()) => {
                        prop_assert!(model.len() < cap, "push succeeded on a full deque");
                        model.push_back(value);
                    }
                    Err(back) => {
                        prop_assert_eq!(back, value, "rejected push returns the value");
                        prop_assert_eq!(model.len(), cap, "push rejected while not full");
                    }
                },
                1 => prop_assert_eq!(w.pop(), model.pop_back(), "pop is LIFO"),
                _ => {
                    let stolen = s.steal().success();
                    prop_assert_eq!(stolen, model.pop_front(), "steal is FIFO");
                }
            }
        }
        // Drain and compare the leftovers.
        while let Some(expected) = model.pop_back() {
            prop_assert_eq!(w.pop(), Some(expected));
        }
        prop_assert_eq!(w.pop(), None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    fn concurrent_steals_conserve_every_item(
        total in 1u64..=128,
        n_stealers in 1usize..=3,
    ) {
        let w: Worker<u64> = Worker::new(128);
        for v in 0..total {
            w.push(v).unwrap();
        }
        let handles: Vec<_> = (0..n_stealers)
            .map(|_| {
                let s = w.stealer();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match s.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Empty => break,
                            Steal::Retry => std::thread::yield_now(),
                        }
                    }
                    got
                })
            })
            .collect();
        let mut got = Vec::new();
        while let Some(v) = w.pop() {
            got.push(v);
        }
        for h in handles {
            got.extend(h.join().expect("stealer thread panicked"));
        }
        got.sort_unstable();
        prop_assert_eq!(
            got,
            (0..total).collect::<Vec<_>>(),
            "an item was lost or delivered twice"
        );
    }
}
