//! Model checking the Chase–Lev deque with the weak-memory loom shim.
//!
//! Built only under `RUSTFLAGS="--cfg loom"`: the crate's `sync` alias
//! routes the deque's atomics through the model checker, which
//! explores thread interleavings *and* the stale reads the `Ordering`
//! arguments permit. The properties pinned down here:
//!
//! - a stealer never observes an unpublished slot (the Release
//!   `bottom` publication is what it relies on);
//! - every pushed item is delivered to exactly one taker — the
//!   exactly-once property the typed layer's `unsafe` box round-trip
//!   is justified by;
//! - the last-element race between `pop` and `steal` hands the item to
//!   exactly one side (the SeqCst fence/CAS arbitration);
//! - dropping the Release publication (the seeded bug) is caught by
//!   weak-memory exploration but sails through the legacy SeqCst-only
//!   exploration — the regression pair that keeps `weak_memory` on.

#![cfg(loom)]

use std::panic::{catch_unwind, AssertUnwindSafe};

use cirlearn_exec::sync::thread;
use cirlearn_exec::{RawDeque, Steal, Worker};
use loom::sync::Arc;

#[test]
fn a_stealer_never_observes_an_unpublished_slot() {
    loom::model(|| {
        let d = Arc::new(RawDeque::new(2));
        let d2 = Arc::clone(&d);
        let stealer = thread::spawn(move || d2.steal());
        d.push(41).unwrap();
        match stealer.join().unwrap() {
            Steal::Success(v) => assert_eq!(v, 41, "stole an unpublished value"),
            Steal::Empty | Steal::Retry => {}
        }
    });
}

#[test]
fn the_last_element_goes_to_exactly_one_side() {
    loom::model(|| {
        let d = Arc::new(RawDeque::new(2));
        d.push(7).unwrap();
        let d2 = Arc::clone(&d);
        let stealer = thread::spawn(move || d2.steal().success());
        let popped = d.pop();
        let stolen = stealer.join().unwrap();
        match (popped, stolen) {
            (Some(7), None) | (None, Some(7)) => {}
            (p, s) => panic!("last element mishandled: popped {p:?}, stolen {s:?}"),
        }
    });
}

#[test]
fn concurrent_pops_and_a_steal_conserve_items() {
    loom::model(|| {
        let d = Arc::new(RawDeque::new(2));
        let d2 = Arc::clone(&d);
        let stealer = thread::spawn(move || d2.steal().success());
        d.push(1).unwrap();
        d.push(2).unwrap();
        let mut taken: Vec<u64> = [d.pop(), d.pop(), d.pop()].into_iter().flatten().collect();
        taken.extend(stealer.join().unwrap());
        taken.sort_unstable();
        assert_eq!(taken, vec![1, 2], "an item was lost or delivered twice");
    });
}

#[test]
fn the_typed_layer_moves_ownership_exactly_once() {
    // The box round-trip under the model: a double delivery would be a
    // double-free the leak/alias structure of `Box` turns into a
    // corrupted value, and an undelivered box is reclaimed by drop.
    loom::model(|| {
        let w: Worker<u64> = Worker::new(2);
        let s = w.stealer();
        let stealer = thread::spawn(move || s.steal().success());
        w.push(11).unwrap();
        w.push(22).unwrap();
        let mut taken: Vec<u64> = [w.pop(), w.pop()].into_iter().flatten().collect();
        taken.extend(stealer.join().unwrap());
        taken.sort_unstable();
        match taken.as_slice() {
            [11, 22] => {}
            // The steal may have lost its race after `pop` drained
            // both; nothing may be duplicated or invented.
            [11] | [22] | [] => panic!("an item vanished: {taken:?}"),
            other => panic!("impossible delivery: {other:?}"),
        }
    });
}

/// The deque with its publication edge removed: `push` stores `bottom`
/// `Relaxed`, exactly the bug the Release store in the real `push`
/// (and the module docs' C++20 release-sequence note) exists to
/// prevent.
mod seeded {
    use cirlearn_exec::sync::atomic::{AtomicU64, Ordering};

    pub struct BuggyDeque {
        top: AtomicU64,
        bottom: AtomicU64,
        slot: AtomicU64,
    }

    impl BuggyDeque {
        pub fn new() -> Self {
            BuggyDeque {
                top: AtomicU64::new(0),
                bottom: AtomicU64::new(0),
                slot: AtomicU64::new(0),
            }
        }

        pub fn push(&self, value: u64) {
            // relaxed-ok: this is the *seeded bug* — the store that
            // should be Release, kept Relaxed so the test below can
            // show the weak-memory checker catching it.
            self.slot.store(value, Ordering::Relaxed);
            // relaxed-ok: seeded bug, see above.
            self.bottom.store(1, Ordering::Relaxed);
        }

        pub fn steal(&self) -> Option<u64> {
            let t = self.top.load(Ordering::Acquire);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return None;
            }
            Some(self.slot.load(Ordering::Relaxed))
        }
    }
}

#[test]
fn seeded_unpublished_push_passes_the_legacy_sc_only_exploration() {
    // Under the pre-upgrade SeqCst-only exploration every load reads
    // the newest store, so the missing Release edge is invisible: the
    // buggy deque "verifies". This is the false confidence the
    // weak-memory upgrade removes.
    let mut b = loom::Builder::new();
    b.weak_memory = false;
    b.check(|| {
        let d = Arc::new(seeded::BuggyDeque::new());
        let d2 = Arc::clone(&d);
        let stealer = thread::spawn(move || d2.steal());
        d.push(41);
        if let Some(v) = stealer.join().unwrap() {
            assert_eq!(v, 41, "stole an unpublished value");
        }
    });
}

#[test]
fn seeded_unpublished_push_is_caught_by_weak_memory_exploration() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let d = Arc::new(seeded::BuggyDeque::new());
            let d2 = Arc::clone(&d);
            let stealer = thread::spawn(move || d2.steal());
            d.push(41);
            if let Some(v) = stealer.join().unwrap() {
                assert_eq!(v, 41, "stole an unpublished value");
            }
        });
    }));
    assert!(
        result.is_err(),
        "weak-memory exploration must find the stale steal the \
         relaxed publication permits"
    );
}
