//! Executor observability: deque operation counters and per-worker
//! busy/idle span accounting.
//!
//! A [`DequeStats`] block is shared by a [`Worker`](crate::Worker) and
//! its [`Stealer`](crate::Stealer)s (attach it with
//! [`Worker::with_stats`](crate::Worker::with_stats)); every push,
//! pop and steal outcome bumps a relaxed counter, and the worker-side
//! push path tracks a high-water queue-depth gauge. The counters live
//! on the *typed* deque layer, so the raw algorithm the loom suite
//! model-checks is unchanged.
//!
//! [`DequeStats::publish`] folds the block into a
//! [`Telemetry`](cirlearn_telemetry::Telemetry) handle under the
//! `exec.*` counter names (depth as a max-merge so concurrent workers
//! keep the true high-water mark) and emits one `exec` trace event so
//! the flight recorder and trace stream see the totals too.
//!
//! A [`WorkerObserver`] accounts each worker thread's time into
//! `exec.busy_ns` / `exec.idle_ns` histograms through thread-local
//! [`LocalRecorder`]s, which merge into the shared telemetry on drop —
//! no cross-thread traffic per task, one merge per worker lifetime.

use std::time::{Duration, Instant};

use cirlearn_telemetry::json::Json;
use cirlearn_telemetry::{counters, histograms, LocalRecorder, Telemetry};

use crate::sync::atomic::{AtomicU64, Ordering};

/// Shared operation counters for one deque (see the
/// [module docs](self)).
#[derive(Debug, Default)]
pub struct DequeStats {
    pushes: AtomicU64,
    pops: AtomicU64,
    steals: AtomicU64,
    steal_empty: AtomicU64,
    steal_retry: AtomicU64,
    depth_max: AtomicU64,
}

impl DequeStats {
    /// A fresh, zeroed stats block.
    pub fn new() -> DequeStats {
        DequeStats::default()
    }

    pub(crate) fn on_push(&self, depth_after: u64) {
        // relaxed-ok: monotonic event counters read only after the
        // threads that bump them are joined (publish) or by
        // monitoring code that tolerates slightly stale totals.
        self.pushes.fetch_add(1, Ordering::Relaxed);
        // relaxed-ok: high-water gauge; same staleness tolerance.
        self.depth_max.fetch_max(depth_after, Ordering::Relaxed);
    }

    pub(crate) fn on_pop(&self) {
        // relaxed-ok: monotonic event counter (see `on_push`).
        self.pops.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_steal(&self) {
        // relaxed-ok: monotonic event counter (see `on_push`).
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_steal_empty(&self) {
        // relaxed-ok: monotonic event counter (see `on_push`).
        self.steal_empty.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_steal_retry(&self) {
        // relaxed-ok: monotonic event counter (see `on_push`).
        self.steal_retry.fetch_add(1, Ordering::Relaxed);
    }

    /// Items pushed by the worker.
    pub fn pushes(&self) -> u64 {
        self.pushes.load(Ordering::Relaxed)
    }

    /// Items the worker popped back (LIFO hits).
    pub fn pops(&self) -> u64 {
        self.pops.load(Ordering::Relaxed)
    }

    /// Successful steals.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Steal attempts that observed an empty deque.
    pub fn steal_empty(&self) -> u64 {
        self.steal_empty.load(Ordering::Relaxed)
    }

    /// Steal attempts that lost a race and should retry.
    pub fn steal_retry(&self) -> u64 {
        self.steal_retry.load(Ordering::Relaxed)
    }

    /// The deepest the queue has been right after a push.
    pub fn depth_max(&self) -> u64 {
        self.depth_max.load(Ordering::Relaxed)
    }

    /// Folds this block into `telemetry`'s `exec.*` counters (sums,
    /// except the depth gauge which max-merges) and emits one `exec`
    /// trace/flight event carrying the totals.
    pub fn publish(&self, telemetry: &Telemetry) {
        let (pushes, pops) = (self.pushes(), self.pops());
        let (steals, empty, retry) = (self.steals(), self.steal_empty(), self.steal_retry());
        let depth = self.depth_max();
        telemetry.add(counters::EXEC_PUSHES, pushes);
        telemetry.add(counters::EXEC_POPS, pops);
        telemetry.add(counters::EXEC_STEALS, steals);
        telemetry.add(counters::EXEC_STEAL_EMPTY, empty);
        telemetry.add(counters::EXEC_STEAL_RETRY, retry);
        telemetry.set_counter_max(counters::EXEC_DEPTH_MAX, depth);
        telemetry.trace(
            "exec",
            &[
                ("pushes", Json::from(pushes)),
                ("pops", Json::from(pops)),
                ("steals", Json::from(steals)),
                ("steal_empty", Json::from(empty)),
                ("steal_retry", Json::from(retry)),
                ("depth_max", Json::from(depth)),
            ],
        );
    }
}

/// Per-worker busy/idle time accounting (see the [module docs](self)).
///
/// One observer lives on each worker thread. Call [`busy`](Self::busy)
/// when the worker picks up a task and [`idle`](Self::idle) when it
/// starts waiting for work; each call closes the previous span into
/// the matching histogram. Dropping the observer closes the open span
/// and merges both recorders into the shared telemetry.
#[derive(Debug)]
pub struct WorkerObserver {
    busy_ns: LocalRecorder,
    idle_ns: LocalRecorder,
    since: Instant,
    is_busy: bool,
}

impl WorkerObserver {
    /// Registers one worker with `telemetry` (bumps `exec.workers`)
    /// and starts accounting, initially idle.
    pub fn new(telemetry: &Telemetry) -> WorkerObserver {
        telemetry.incr(counters::EXEC_WORKERS);
        WorkerObserver {
            busy_ns: telemetry.local_recorder(histograms::EXEC_BUSY_NS),
            idle_ns: telemetry.local_recorder(histograms::EXEC_IDLE_NS),
            since: Instant::now(),
            is_busy: false,
        }
    }

    /// A no-op observer for workers running without telemetry.
    pub fn disabled() -> WorkerObserver {
        WorkerObserver {
            busy_ns: LocalRecorder::disabled(),
            idle_ns: LocalRecorder::disabled(),
            since: Instant::now(),
            is_busy: false,
        }
    }

    fn close_span(&mut self) -> Duration {
        let elapsed = self.since.elapsed();
        let recorder = if self.is_busy {
            &self.busy_ns
        } else {
            &self.idle_ns
        };
        recorder.record_duration(elapsed);
        self.since = Instant::now();
        elapsed
    }

    /// The worker picked up a task: closes the current idle span.
    pub fn busy(&mut self) {
        if !self.is_busy {
            self.close_span();
            self.is_busy = true;
        }
    }

    /// The worker ran out of local work: closes the current busy span.
    pub fn idle(&mut self) {
        if self.is_busy {
            self.close_span();
            self.is_busy = false;
        }
    }
}

impl Drop for WorkerObserver {
    fn drop(&mut self) {
        self.close_span();
        // The LocalRecorders merge into the shared histograms as they
        // drop right after this.
    }
}

#[cfg(all(test, not(any(loom, race))))]
mod tests {
    use super::*;
    use crate::sync::Arc;
    use crate::Worker;

    #[test]
    fn counters_track_push_pop_and_steal_outcomes() {
        let stats = Arc::new(DequeStats::new());
        let w: Worker<u64> = Worker::with_stats(8, Arc::clone(&stats));
        let s = w.stealer();
        for v in 0..4 {
            w.push(v).unwrap();
        }
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal().success(), Some(0));
        assert_eq!(stats.pushes(), 4);
        assert_eq!(stats.pops(), 1);
        assert_eq!(stats.steals(), 1);
        assert_eq!(stats.depth_max(), 4, "high-water mark after pushes");
        while s.steal().success().is_some() {}
        assert!(stats.steal_empty() >= 1, "final steal saw it empty");
    }

    #[test]
    fn publish_folds_into_telemetry_counters() {
        let stats = DequeStats::new();
        stats.on_push(3);
        stats.on_push(7);
        stats.on_pop();
        stats.on_steal();
        stats.on_steal_empty();
        stats.on_steal_retry();
        let t = Telemetry::recording();
        stats.publish(&t);
        assert_eq!(t.counter(counters::EXEC_PUSHES), 2);
        assert_eq!(t.counter(counters::EXEC_POPS), 1);
        assert_eq!(t.counter(counters::EXEC_STEALS), 1);
        assert_eq!(t.counter(counters::EXEC_STEAL_EMPTY), 1);
        assert_eq!(t.counter(counters::EXEC_STEAL_RETRY), 1);
        assert_eq!(t.counter(counters::EXEC_DEPTH_MAX), 7);
    }

    #[test]
    fn publish_depth_is_a_max_merge_across_deques() {
        let t = Telemetry::recording();
        let a = DequeStats::new();
        a.on_push(9);
        let b = DequeStats::new();
        b.on_push(4);
        a.publish(&t);
        b.publish(&t);
        assert_eq!(
            t.counter(counters::EXEC_DEPTH_MAX),
            9,
            "the shallower deque must not clobber the high-water mark"
        );
    }

    #[test]
    fn observer_accounts_busy_and_idle_time_into_histograms() {
        let t = Telemetry::recording();
        {
            let mut obs = WorkerObserver::new(&t);
            obs.busy();
            std::thread::sleep(Duration::from_millis(1));
            obs.idle();
            obs.busy(); // second busy span, closed by drop
        }
        assert_eq!(t.counter(counters::EXEC_WORKERS), 1);
        let report = t.report();
        let busy = report
            .histograms
            .get(histograms::EXEC_BUSY_NS)
            .expect("busy histogram merged on drop");
        assert_eq!(busy.count, 2);
        assert!(busy.max >= 1_000_000, "slept at least 1ms");
        assert_eq!(
            report
                .histograms
                .get(histograms::EXEC_IDLE_NS)
                .expect("idle histogram merged on drop")
                .count,
            2,
            "the startup idle span plus the explicit one"
        );
    }

    #[test]
    fn disabled_observer_records_nothing() {
        let mut obs = WorkerObserver::disabled();
        obs.busy();
        obs.idle();
    }
}
