//! A fixed-capacity Chase–Lev work-stealing deque.
//!
//! One [`Worker`] owns the bottom end: it pushes and pops LIFO, which
//! keeps the hot task's cache lines hot. Any number of [`Stealer`]s
//! take from the top end, FIFO, so idle threads grab the *oldest*
//! (largest-granularity) work first. This is the substrate for the
//! parallel FBDT node loop: each worker keeps its own deque, stealers
//! rebalance when theirs runs dry.
//!
//! # Memory-ordering discipline
//!
//! The algorithm is the C11 formulation of Lê, Pop, Cohen and
//! Zappa Nardelli ("Correct and Efficient Work-Stealing for Weak
//! Memory Models", PPoPP 2013), with one strengthening: **every**
//! `bottom` store is `Release`, including `pop`'s decrement and
//! restore. The original leaves those `Relaxed` and relies on
//! C11-style release sequences (same-thread relaxed stores continue
//! the sequence headed by an earlier release store). C++20 dropped
//! same-thread continuation, and our model checker implements the
//! C++20 rule — under it, a stealer that reads `bottom` from a relaxed
//! `pop` store would get no happens-before edge to the slot writes and
//! could steal a stale value. Promoting the stores to `Release` closes
//! that hole at no cost on x86 and one fence-free barrier on ARM; the
//! loom suite's seeded-bug test shows what the checker reports when
//! the publication edge is dropped.
//!
//! The `SeqCst` fences in `pop` and `steal` are load-store barriers
//! for the `bottom`/`top` store-buffering race that decides who owns
//! the last element; the `SeqCst` CAS on `top` arbitrates it.
//!
//! Slots are written by the worker only. A slot at index `i` is
//! overwritten (capacity reuse at `i + capacity`) only after `top` has
//! advanced past `i`, so a stealer whose `top` CAS succeeds at `i` can
//! never have read the overwritten value — the CAS would have failed.
//!
//! # Layers
//!
//! [`RawDeque`] moves `u64`s and contains no `unsafe`; it is what the
//! loom suite model-checks. [`Worker`]/[`Stealer`] move owned `T`s by
//! boxing them through the raw layer; the `unsafe` is confined to the
//! box round-trip and justified by the raw layer's exactly-once
//! delivery, which is the property the model checker establishes.

use crate::stats::DequeStats;
use crate::sync::atomic::{fence, AtomicU64, Ordering};
use crate::sync::Arc;
use std::marker::PhantomData;

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the worker or another stealer; retrying may
    /// succeed.
    Retry,
    /// Stole the oldest item.
    Success(T),
}

impl<T> Steal<T> {
    /// The stolen item, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

/// The untyped deque: a power-of-two ring of `u64` slots with
/// monotonically increasing `top`/`bottom` indices.
///
/// `push` and `pop` must only be called by the single worker thread;
/// `steal` may be called from anywhere. Misuse cannot corrupt memory
/// (this layer is `unsafe`-free) but voids the exactly-once delivery
/// guarantee the typed layer builds on.
#[derive(Debug)]
pub struct RawDeque {
    /// Next index to steal from. Monotonic; only ever advanced by a
    /// successful CAS.
    top: AtomicU64,
    /// One past the newest item. Stored only by the worker.
    bottom: AtomicU64,
    slots: Box<[AtomicU64]>,
    mask: u64,
}

impl RawDeque {
    /// A deque holding at most `capacity` items (rounded up to a power
    /// of two, minimum 2).
    pub fn new(capacity: usize) -> RawDeque {
        let cap = capacity.next_power_of_two().max(2);
        RawDeque {
            top: AtomicU64::new(0),
            bottom: AtomicU64::new(0),
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap as u64 - 1,
        }
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// An approximate current length, for gauges and heuristics only:
    /// both ends move concurrently, so the value may be stale the
    /// moment it is computed (and is clamped to zero when the racing
    /// reads cross).
    pub fn len_hint(&self) -> usize {
        let t = self.top.load(Ordering::Relaxed);
        let b = self.bottom.load(Ordering::Relaxed);
        (b.wrapping_sub(t) as i64).max(0) as usize
    }

    fn slot(&self, index: u64) -> &AtomicU64 {
        // panic-ok: `mask == capacity - 1` with a power-of-two
        // capacity, so the masked index is always in bounds.
        &self.slots[(index & self.mask) as usize]
    }

    /// Pushes onto the bottom end. Worker only. Returns the value back
    /// when the deque is full.
    pub fn push(&self, value: u64) -> Result<(), u64> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b.wrapping_sub(t) >= self.slots.len() as u64 {
            return Err(value);
        }
        // relaxed-ok: the slot write is published by the Release
        // `bottom` store below; no thread reads the slot before it
        // observes that store.
        self.slot(b).store(value, Ordering::Relaxed);
        self.bottom.store(b.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Pops the newest item (LIFO). Worker only.
    pub fn pop(&self) -> Option<u64> {
        let b = self.bottom.load(Ordering::Relaxed).wrapping_sub(1);
        // Release (not Relaxed as in the 2013 paper): under C++20
        // release-sequence rules a stealer may take its
        // happens-before edge from *this* store, so it must republish
        // the worker's slot writes. The fence below orders it before
        // the `top` read (the store-buffering half of the last-element
        // race).
        self.bottom.store(b, Ordering::Release);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if (t as i64) <= (b as i64) {
            let value = self.slot(b).load(Ordering::Relaxed);
            if t == b {
                // Last element: race the stealers for it.
                let won = self
                    .top
                    .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b.wrapping_add(1), Ordering::Release);
                return won.then_some(value);
            }
            Some(value)
        } else {
            // Already empty: restore `bottom`.
            self.bottom.store(b.wrapping_add(1), Ordering::Release);
            None
        }
    }

    /// Steals the oldest item (FIFO). Any thread.
    pub fn steal(&self) -> Steal<u64> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if (t as i64) >= (b as i64) {
            return Steal::Empty;
        }
        // Read the candidate before claiming it: if the CAS below
        // succeeds, `top` was still `t`, so the slot cannot have been
        // reused and this read saw the worker's publication (the
        // Acquire `bottom` load above synchronized with it).
        let value = self.slot(t).load(Ordering::Relaxed);
        match self
            .top
            .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
        {
            Ok(_) => Steal::Success(value),
            Err(_) => Steal::Retry,
        }
    }
}

struct Shared<T> {
    raw: RawDeque,
    _marker: PhantomData<T>,
}

// SAFETY: the deque moves owned `T`s between threads (each pushed
// value is delivered to exactly one popper or stealer, never aliased),
// so `T: Send` is exactly the bound required; no `&T` is ever shared.
unsafe impl<T: Send> Send for Shared<T> {}
// SAFETY: as above — concurrent `&Shared<T>` access only moves values,
// so `T: Send` (not `T: Sync`) is the right bound.
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Exclusive access: both handles are gone. Reclaim what was
        // pushed but never delivered.
        while let Some(bits) = self.raw.pop() {
            // SAFETY: every slot value the raw deque delivers was
            // created by `Worker::push` via `Box::into_raw`, and the
            // raw layer delivers each pushed value exactly once, so
            // this pointer is unaliased and owned here.
            drop(unsafe { Box::from_raw(bits as usize as *mut T) });
        }
    }
}

/// The owning end of a deque: LIFO push/pop, single thread. Not
/// `Clone` — exactly one worker may exist, which is what makes the
/// raw layer's single-writer slot discipline hold.
pub struct Worker<T> {
    shared: Arc<Shared<T>>,
    stats: Option<Arc<DequeStats>>,
}

impl<T> std::fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Worker")
    }
}

impl<T: Send> Worker<T> {
    /// A new deque holding at most `capacity` items (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> Worker<T> {
        Worker {
            shared: Arc::new(Shared {
                raw: RawDeque::new(capacity),
                _marker: PhantomData,
            }),
            stats: None,
        }
    }

    /// A new deque whose operations are counted into `stats` (shared
    /// with the stealers this worker hands out). The counters live on
    /// this typed layer, so the raw algorithm the loom suite checks
    /// is unchanged.
    pub fn with_stats(capacity: usize, stats: Arc<DequeStats>) -> Worker<T> {
        let mut worker = Worker::new(capacity);
        worker.stats = Some(stats);
        worker
    }

    /// A stealer handle for the other end; cheap, cloneable, `Send`.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            shared: Arc::clone(&self.shared),
            stats: self.stats.clone(),
        }
    }

    /// Pushes a task; returns it back when the deque is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let ptr = Box::into_raw(Box::new(value));
        match self.shared.raw.push(ptr as usize as u64) {
            Ok(()) => {
                if let Some(stats) = &self.stats {
                    stats.on_push(self.shared.raw.len_hint() as u64);
                }
                Ok(())
            }
            // SAFETY: the raw layer rejected the value without storing
            // it, so `ptr` is still the unaliased pointer created two
            // lines up; reboxing it reclaims ownership.
            Err(bits) => Err(*unsafe { Box::from_raw(bits as usize as *mut T) }),
        }
    }

    /// Pops the newest task (LIFO), `None` when empty.
    pub fn pop(&self) -> Option<T> {
        self.shared.raw.pop().map(|bits| {
            if let Some(stats) = &self.stats {
                stats.on_pop();
            }
            // SAFETY: the raw layer delivers each pushed value exactly
            // once (the property the loom suite model-checks), and
            // every value it holds came from `Box::into_raw` in
            // `push`, so this pointer is unaliased and owned here.
            *unsafe { Box::from_raw(bits as usize as *mut T) }
        })
    }
}

/// The stealing end of a deque: FIFO, any thread, cloneable.
pub struct Stealer<T> {
    shared: Arc<Shared<T>>,
    stats: Option<Arc<DequeStats>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Stealer<T> {
        Stealer {
            shared: Arc::clone(&self.shared),
            stats: self.stats.clone(),
        }
    }
}

impl<T> std::fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Stealer")
    }
}

impl<T: Send> Stealer<T> {
    /// Steals the oldest task (FIFO).
    pub fn steal(&self) -> Steal<T> {
        let outcome = self.shared.raw.steal();
        if let Some(stats) = &self.stats {
            match &outcome {
                Steal::Empty => stats.on_steal_empty(),
                Steal::Retry => stats.on_steal_retry(),
                Steal::Success(_) => stats.on_steal(),
            }
        }
        match outcome {
            Steal::Empty => Steal::Empty,
            Steal::Retry => Steal::Retry,
            Steal::Success(bits) => {
                // SAFETY: a successful steal is the raw layer's
                // exactly-once delivery of a `Box::into_raw` pointer
                // from `Worker::push` — unaliased and owned here.
                Steal::Success(*unsafe { Box::from_raw(bits as usize as *mut T) })
            }
        }
    }
}

#[cfg(all(test, not(any(loom, race))))]
mod tests {
    use super::*;

    #[test]
    fn pop_is_lifo_and_steal_is_fifo() {
        let w: Worker<u64> = Worker::new(8);
        let s = w.stealer();
        for v in [10, 20, 30] {
            w.push(v).unwrap();
        }
        assert_eq!(s.steal().success(), Some(10), "steal takes the oldest");
        assert_eq!(w.pop(), Some(30), "pop takes the newest");
        assert_eq!(w.pop(), Some(20));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn full_deque_hands_the_value_back() {
        let w: Worker<String> = Worker::new(2);
        w.push("a".to_owned()).unwrap();
        w.push("b".to_owned()).unwrap();
        let rejected = w.push("c".to_owned()).unwrap_err();
        assert_eq!(rejected, "c");
        assert_eq!(w.pop(), Some("b".to_owned()));
        w.push("c".to_owned()).unwrap();
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(RawDeque::new(0).capacity(), 2);
        assert_eq!(RawDeque::new(3).capacity(), 4);
        assert_eq!(RawDeque::new(8).capacity(), 8);
    }

    #[test]
    fn slots_wrap_around_the_ring() {
        let d = RawDeque::new(2);
        for round in 0..5u64 {
            d.push(round * 2).unwrap();
            d.push(round * 2 + 1).unwrap();
            assert!(d.push(99).is_err(), "ring is full");
            assert_eq!(d.steal().success(), Some(round * 2));
            assert_eq!(d.pop(), Some(round * 2 + 1));
        }
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn cross_thread_handoff_delivers_each_item_once() {
        // Small enough for miri: 2 stealers × 40 items.
        let w: Worker<u64> = Worker::new(64);
        let total = 40u64;
        for v in 0..total {
            w.push(v).unwrap();
        }
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let s = w.stealer();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match s.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Empty => break,
                            Steal::Retry => std::thread::yield_now(),
                        }
                    }
                    got
                })
            })
            .collect();
        let mut got = Vec::new();
        while let Some(v) = w.pop() {
            got.push(v);
        }
        for h in handles {
            got.extend(h.join().expect("stealer thread"));
        }
        got.sort_unstable();
        assert_eq!(got, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn dropping_the_deque_reclaims_undelivered_items() {
        // Under miri this doubles as a leak check on the Drop drain.
        let w: Worker<Vec<u64>> = Worker::new(8);
        w.push(vec![1, 2, 3]).unwrap();
        w.push(vec![4]).unwrap();
        let s = w.stealer();
        drop(w);
        assert_eq!(s.steal().success(), Some(vec![1, 2, 3]));
        drop(s); // vec![4] reclaimed by Shared::drop
    }
}
