//! The crate's single synchronization surface, switchable at compile
//! time between three backends (mirroring `cirlearn-telemetry`'s
//! `sync` module):
//!
//! - **default** — real `std::sync` / `std::thread`: zero-overhead
//!   production builds;
//! - **`--cfg loom`** — the vendored weak-memory model checker
//!   (`vendor/loom`): every atomic op becomes a scheduling point and
//!   every load a value branch point;
//! - **`--cfg race`** — the vendored happens-before race detector
//!   (`vendor/tsan`): real full-speed threads with vector clocks
//!   riding alongside.
//!
//! Everything in this crate that synchronizes imports from here
//! instead of naming `std::sync::atomic` directly — enforced by
//! `cirlearn-lint`'s atomic-alias rule — so the concurrency tests run
//! the *exact* production code path with no parallel type plumbing.
//
// cirlearn-lint: allow(atomic-alias) — this module *is* the alias; it
// is the one place in the crate allowed to name the backend sync types.

#[cfg(all(loom, race))]
compile_error!("--cfg loom and --cfg race are mutually exclusive backends");

#[cfg(not(any(loom, race)))]
mod backend {
    pub use std::sync::Arc;

    /// Atomic types and fences (std backend).
    pub mod atomic {
        pub use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
    }

    /// Thread spawn/join (std backend).
    pub mod thread {
        pub use std::thread::{spawn, yield_now, JoinHandle};
    }
}

#[cfg(loom)]
mod backend {
    pub use loom::sync::Arc;

    /// Atomic types and fences (loom weak-memory model backend).
    pub mod atomic {
        pub use loom::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
    }

    /// Thread spawn/join (loom model backend).
    pub mod thread {
        pub use loom::thread::{spawn, yield_now, JoinHandle};
    }
}

#[cfg(race)]
mod backend {
    pub use tsan::sync::Arc;

    /// Atomic types and fences (race-detector backend).
    pub mod atomic {
        pub use tsan::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
    }

    /// Thread spawn/join (race-detector backend, records fork/join
    /// happens-before edges).
    pub mod thread {
        pub use tsan::thread::{spawn, yield_now, JoinHandle};
    }
}

pub use backend::*;
