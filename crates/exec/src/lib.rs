//! Execution substrate for the cirlearn pipeline.
//!
//! The learning hot path — FBDT node expansion across outputs — is
//! embarrassingly parallel but irregularly sized, which calls for work
//! stealing rather than static partitioning. This crate provides the
//! concurrency-verified building block for that runway:
//!
//! - [`Worker`] / [`Stealer`] ([`deque`]): a fixed-capacity Chase–Lev
//!   work-stealing deque. The owner pushes and pops LIFO (keeping the
//!   hottest task local); stealers take FIFO from the far end.
//! - [`DequeStats`] / [`WorkerObserver`] ([`stats`]): executor
//!   observability — push/pop/steal outcome counters, a queue-depth
//!   high-water gauge and per-worker busy/idle span accounting, folded
//!   into the telemetry crate's `exec.*` counters and histograms and
//!   surfaced in the run report's `exec` section.
//!
//! Every synchronized type routes through the [`sync`] alias, so the
//! same source compiles against three backends: real `std` atomics
//! (default), the vendored weak-memory model checker (`--cfg loom`),
//! and the vendored happens-before race detector (`--cfg race`). The
//! deque is verified by all three — see `tests/loom_deque.rs`,
//! `tests/race_deque.rs`, the miri-clean unit tests in [`deque`], and
//! the steal-count conservation property in `tests/deque_props.rs`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod deque;
pub mod stats;
pub mod sync;

pub use deque::{RawDeque, Steal, Stealer, Worker};
pub use stats::{DequeStats, WorkerObserver};
