//! Fault isolation between the learner and a fallible oracle.
//!
//! The learning pipeline's inner loops (sampling, FBDT expansion,
//! template validation) speak the infallible [`Oracle::query`]
//! interface — threading `Result` through every cofactor split would
//! contort the algorithms for a condition that is terminal anyway: by
//! the time an error escapes a [`ResilientOracle`](cirlearn_oracle::ResilientOracle)
//! the transport is beyond recovery.
//!
//! [`OracleGuard`] bridges the two worlds. It routes every query
//! through the fallible [`Oracle::try_query`] path; on the first error
//! it latches the failure and serves constant-false fallback answers
//! (without touching the dead transport again), so the pipeline runs to
//! completion at full speed. The [`Learner`](crate::Learner) checks
//! [`OracleGuard::failed`] at output boundaries and degrades any output
//! whose learning overlapped the failure, instead of trusting circuits
//! built from fallback answers.

use cirlearn_logic::Assignment;
use cirlearn_oracle::{Oracle, OracleError};
use cirlearn_telemetry::Telemetry;

/// A fail-fast adapter: fallible queries in, infallible answers out,
/// with the first failure latched for the learner to inspect.
#[derive(Debug)]
pub struct OracleGuard<O> {
    inner: O,
    num_outputs: usize,
    failure: Option<OracleError>,
    fallback_answers: u64,
    telemetry: Telemetry,
}

impl<O: Oracle> OracleGuard<O> {
    /// Wraps `inner`; queries flow through its fallible path.
    pub fn new(inner: O) -> Self {
        OracleGuard::with_telemetry(inner, Telemetry::disabled())
    }

    /// Like [`OracleGuard::new`], but the moment a failure latches the
    /// guard dumps the flight recorder through `telemetry` — the ring
    /// still holds the events leading up to the fault, which is
    /// exactly the context a post-mortem needs.
    pub fn with_telemetry(inner: O, telemetry: Telemetry) -> Self {
        let num_outputs = inner.num_outputs();
        OracleGuard {
            inner,
            num_outputs,
            failure: None,
            fallback_answers: 0,
            telemetry,
        }
    }

    fn latch(&mut self, e: OracleError) {
        self.failure = Some(e);
        self.telemetry.dump_flight("fault");
    }

    /// Whether the oracle has failed; once true, every answer since the
    /// failure was a constant-false fallback.
    pub fn failed(&self) -> bool {
        self.failure.is_some()
    }

    /// The latched failure, if any.
    pub fn failure(&self) -> Option<&OracleError> {
        self.failure.as_ref()
    }

    /// How many fallback answers were served after the failure.
    pub fn fallback_answers(&self) -> u64 {
        self.fallback_answers
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    fn fallback(&mut self) -> Vec<bool> {
        self.fallback_answers += 1;
        vec![false; self.num_outputs]
    }
}

impl<O: Oracle> Oracle for OracleGuard<O> {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    fn input_names(&self) -> &[String] {
        self.inner.input_names()
    }

    fn output_names(&self) -> &[String] {
        self.inner.output_names()
    }

    fn query(&mut self, input: &Assignment) -> Vec<bool> {
        if self.failure.is_some() {
            return self.fallback();
        }
        match self.inner.try_query(input) {
            Ok(bits) => bits,
            Err(e) => {
                self.latch(e);
                self.fallback()
            }
        }
    }

    fn query_batch(&mut self, inputs: &[Assignment]) -> Vec<Vec<bool>> {
        if self.failure.is_some() {
            return inputs.iter().map(|_| self.fallback()).collect();
        }
        match self.inner.try_query_batch(inputs) {
            Ok(rows) => rows,
            Err(e) => {
                self.latch(e);
                inputs.iter().map(|_| self.fallback()).collect()
            }
        }
    }

    fn queries(&self) -> u64 {
        self.inner.queries()
    }

    fn checkpoint_state(&self) -> Option<cirlearn_telemetry::json::Json> {
        self.inner.checkpoint_state()
    }

    fn restore_state(&mut self, state: &cirlearn_telemetry::json::Json) -> Result<(), OracleError> {
        self.inner.restore_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_oracle::{generate, FaultKind, FaultSchedule, FaultyOracle};

    #[test]
    fn healthy_oracle_passes_through_untouched() {
        let mut clean = generate::eco_case(8, 2, 3);
        let mut guarded = OracleGuard::new(generate::eco_case(8, 2, 3));
        let z = Assignment::zeros(8);
        assert_eq!(guarded.query(&z), clean.query(&z));
        assert!(!guarded.failed());
        assert_eq!(guarded.fallback_answers(), 0);
        assert_eq!(guarded.queries(), 1);
    }

    #[test]
    fn failure_latches_and_serves_fallbacks() {
        let schedule = FaultSchedule::new().at(1, FaultKind::Crash);
        let mut guarded =
            OracleGuard::new(FaultyOracle::new(generate::eco_case(8, 2, 3), schedule));
        let z = Assignment::zeros(8);
        guarded.query(&z);
        assert!(!guarded.failed());
        // The crash: fallback answer, failure latched.
        assert_eq!(guarded.query(&z), vec![false, false]);
        assert!(guarded.failed());
        // Subsequent queries never touch the dead transport.
        let before = guarded.queries();
        guarded.query(&z);
        guarded.query_batch(&[z.clone(), z.clone()]);
        assert_eq!(guarded.queries(), before);
        assert_eq!(guarded.fallback_answers(), 4);
        assert!(guarded.failure().is_some());
    }

    #[test]
    fn latching_a_failure_dumps_the_flight_recorder() {
        let dir = std::env::temp_dir().join(format!("cirlearn-guard-dump-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join("flight.jsonl");
        let telemetry = Telemetry::recording();
        telemetry.set_flight_dump_path(Some(path.clone()));
        let schedule = FaultSchedule::new().at(0, FaultKind::Crash);
        let mut guarded = OracleGuard::with_telemetry(
            FaultyOracle::new(generate::eco_case(8, 2, 3), schedule),
            telemetry,
        );
        guarded.query(&Assignment::zeros(8));
        assert!(guarded.failed());
        let text = std::fs::read_to_string(&path).expect("fault dump written");
        assert!(
            text.contains("\"reason\":\"fault\""),
            "dump names the trigger: {text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_failure_serves_full_fallback_rows() {
        let schedule = FaultSchedule::new().at(0, FaultKind::Hang);
        let mut guarded =
            OracleGuard::new(FaultyOracle::new(generate::eco_case(6, 1, 2), schedule));
        let z = Assignment::zeros(6);
        let rows = guarded.query_batch(&[z.clone(), z.clone(), z]);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r == &vec![false]));
        assert!(guarded.failed());
    }
}
