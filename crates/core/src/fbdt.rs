//! Free-binary-decision-tree circuit construction (paper §IV-D,
//! Algorithm 2).
//!
//! The learner recursively cofactors the unknown function, always on
//! the *most significant input* (the free input with the highest
//! dependency count at the current tree node), exploring the tree in
//! levelized (breadth-first) order. A node whose sampled `TruthRatio`
//! approaches 0% or 100% becomes a constant leaf; the learned function
//! is the disjunction of the constant-1 leaf cubes — or, per the
//! onset/offset selection trick, the complement of the constant-0
//! cubes when the output is biased toward 1.
//!
//! Three additional paper tricks are implemented here:
//!
//! * **conquering small functions** — supports of ≤ 18 inputs are
//!   enumerated exhaustively instead ([`learn_exhaustive`]),
//! * **onset/offset selection** — whichever polarity has fewer
//!   minterms is learned,
//! * **early stopping** — on budget exhaustion pending nodes become
//!   majority-vote leaves, so a partial, still-accurate circuit is
//!   always available.

use std::collections::VecDeque;
use std::time::Instant;

use cirlearn_logic::{Cube, Sop, TruthTable, Var};
use cirlearn_oracle::Oracle;
use cirlearn_telemetry::json::Json;
use cirlearn_telemetry::{histograms, Telemetry};
use rand::rngs::StdRng;

use crate::budget::Budget;
use crate::sampling::{pattern_sampling, SamplingConfig};
use cirlearn_logic::Assignment;

/// A learned two-level cover, possibly representing the complement.
///
/// `complemented == true` means the function is `NOT sop` (the cover
/// collects the offset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LearnedCover {
    /// The cover over primary-input positions.
    pub sop: Sop,
    /// Whether the function is the complement of `sop`.
    pub complemented: bool,
}

impl LearnedCover {
    /// Evaluates the learned function under per-variable values.
    pub fn eval_with<F: FnMut(Var) -> bool>(&self, value_of: F) -> bool {
        self.sop.eval_with(value_of) != self.complemented
    }

    /// The constant-false cover.
    pub fn zero() -> Self {
        LearnedCover {
            sop: Sop::zero(),
            complemented: false,
        }
    }
}

/// Tree exploration order (paper §IV-D: levelized exploration is one
/// of the method's design choices — "it is more beneficial to explore
/// the tree evenly rather than to focus on a specific branch").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exploration {
    /// Breadth-first (the paper's levelized order): under early
    /// stopping every subtree is refined to a similar depth.
    Levelized,
    /// Depth-first: drills one branch to leaves first; under a budget
    /// the untouched branches degrade to root-level majority guesses.
    DepthFirst,
}

/// Configuration for [`build_fbdt`].
#[derive(Debug, Clone)]
pub struct FbdtConfig {
    /// Per-node sampling effort (the paper uses r = 60).
    pub node_sampling: SamplingConfig,
    /// Leaf tolerance: a node with `TruthRatio ≤ ε` or `≥ 1 − ε` is
    /// declared constant (the paper's early-stopping deviation; 0
    /// means only perfectly pure samples become leaves).
    pub epsilon: f64,
    /// Hard cap on expanded nodes, a second budget axis besides time.
    pub max_nodes: usize,
    /// Hard cap on oracle queries for this tree (`None` = unlimited) —
    /// the query-count analogue of the contest's wall-clock limit,
    /// making budgeted runs machine-independent.
    pub max_queries: Option<u64>,
    /// Support size up to which [`learn_exhaustive`] is used instead of
    /// tree construction (the paper uses 18).
    pub exhaustive_threshold: usize,
    /// Tree exploration order.
    pub exploration: Exploration,
    /// Whether to pick onset or offset cubes by the observed truth
    /// ratio (paper §IV-D trick 2); `false` always collects the onset.
    pub onset_offset_selection: bool,
}

impl Default for FbdtConfig {
    fn default() -> Self {
        FbdtConfig {
            node_sampling: SamplingConfig::node_default(),
            epsilon: 0.02,
            max_nodes: 20_000,
            max_queries: None,
            exhaustive_threshold: 18,
            exploration: Exploration::Levelized,
            onset_offset_selection: true,
        }
    }
}

impl FbdtConfig {
    /// A reduced-effort configuration for tests.
    pub fn fast() -> Self {
        FbdtConfig {
            node_sampling: SamplingConfig {
                rounds: 48,
                ratios: vec![0.5, 0.25, 0.75],
            },
            epsilon: 0.01,
            max_nodes: 4_000,
            max_queries: None,
            exhaustive_threshold: 12,
            exploration: Exploration::Levelized,
            onset_offset_selection: true,
        }
    }
}

/// Statistics of one tree construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FbdtStats {
    /// Internal nodes expanded (splits performed).
    pub splits: usize,
    /// Leaves declared.
    pub leaves: usize,
    /// Leaves forced by budget exhaustion (majority-approximated).
    pub forced_leaves: usize,
    /// Oracle queries spent.
    pub queries: u64,
}

impl FbdtStats {
    /// Adds these statistics onto the telemetry counters
    /// (`fbdt.splits`, `fbdt.leaves`, `fbdt.forced_leaves`).
    pub fn record(&self, telemetry: &cirlearn_telemetry::Telemetry) {
        use cirlearn_telemetry::counters;
        telemetry.add(counters::FBDT_SPLITS, self.splits as u64);
        telemetry.add(counters::FBDT_LEAVES, self.leaves as u64);
        telemetry.add(counters::FBDT_FORCED_LEAVES, self.forced_leaves as u64);
    }
}

/// A serializable snapshot of an in-progress tree construction.
///
/// Captures everything [`FbdtBuilder::restore`] needs to continue the
/// construction bit-identically: the collected onset/offset cubes, the
/// unexpanded frontier in queue order, and the running statistics.
/// The builder's configuration is *not* part of the snapshot — a
/// resumed run re-derives it from the (fingerprint-checked) learner
/// config, the same way the original segment did.
#[derive(Debug, Clone, PartialEq)]
pub struct FbdtSnapshot {
    /// Output being learned.
    pub output: usize,
    /// The (approximate) support over which the tree splits.
    pub support: Vec<usize>,
    /// Unconstrained truth ratio from support identification.
    pub truth_ratio_hint: f64,
    /// Whether offset cubes are collected (cover complemented).
    pub collect_offset: bool,
    /// Constant-1 leaf cubes collected so far.
    pub onset: Vec<Cube>,
    /// Constant-0 leaf cubes collected so far.
    pub offset: Vec<Cube>,
    /// Unexpanded nodes, in queue order (front first).
    pub frontier: Vec<Cube>,
    /// Splits performed so far.
    pub splits: usize,
    /// Leaves declared so far.
    pub leaves: usize,
    /// Budget-forced leaves so far.
    pub forced_leaves: usize,
    /// Oracle queries spent on this tree so far.
    pub queries: u64,
}

/// Incremental FBDT construction: the loop of [`build_fbdt`] exposed
/// one node expansion at a time, so the learner can suspend between
/// steps, snapshot the frontier into a checkpoint, and resume later.
#[derive(Debug)]
pub struct FbdtBuilder {
    output: usize,
    support: Vec<usize>,
    truth_ratio_hint: f64,
    collect_offset: bool,
    config: FbdtConfig,
    onset: Vec<Cube>,
    offset: Vec<Cube>,
    queue: VecDeque<Cube>,
    stats: FbdtStats,
}

impl FbdtBuilder {
    /// Starts a fresh tree rooted at the unconstrained cube.
    ///
    /// `truth_ratio_hint` is the unconstrained truth ratio from support
    /// identification; it drives the onset/offset selection (more 1s →
    /// collect offset cubes).
    pub fn new(
        output: usize,
        support: &[usize],
        truth_ratio_hint: f64,
        config: &FbdtConfig,
    ) -> Self {
        let mut queue = VecDeque::new();
        queue.push_back(Cube::top());
        FbdtBuilder {
            output,
            support: support.to_vec(),
            truth_ratio_hint,
            collect_offset: config.onset_offset_selection && truth_ratio_hint > 0.5,
            config: config.clone(),
            onset: Vec::new(),
            offset: Vec::new(),
            queue,
            stats: FbdtStats::default(),
        }
    }

    /// Rebuilds a suspended tree from its checkpoint snapshot.
    ///
    /// `collect_offset` is taken from the snapshot (not re-derived from
    /// the config) so the cover polarity decided by the first segment
    /// is honored verbatim.
    pub fn restore(snapshot: FbdtSnapshot, config: &FbdtConfig) -> Self {
        FbdtBuilder {
            output: snapshot.output,
            support: snapshot.support,
            truth_ratio_hint: snapshot.truth_ratio_hint,
            collect_offset: snapshot.collect_offset,
            config: config.clone(),
            onset: snapshot.onset,
            offset: snapshot.offset,
            queue: snapshot.frontier.into(),
            stats: FbdtStats {
                splits: snapshot.splits,
                leaves: snapshot.leaves,
                forced_leaves: snapshot.forced_leaves,
                queries: snapshot.queries,
            },
        }
    }

    /// Captures the construction state for checkpointing.
    pub fn snapshot(&self) -> FbdtSnapshot {
        FbdtSnapshot {
            output: self.output,
            support: self.support.clone(),
            truth_ratio_hint: self.truth_ratio_hint,
            collect_offset: self.collect_offset,
            onset: self.onset.clone(),
            offset: self.offset.clone(),
            frontier: self.queue.iter().cloned().collect(),
            splits: self.stats.splits,
            leaves: self.stats.leaves,
            forced_leaves: self.stats.forced_leaves,
            queries: self.stats.queries,
        }
    }

    /// Output being learned.
    pub fn output(&self) -> usize {
        self.output
    }

    /// Running statistics.
    pub fn stats(&self) -> &FbdtStats {
        &self.stats
    }

    /// Whether the frontier is exhausted (every region is a leaf).
    pub fn is_done(&self) -> bool {
        self.queue.is_empty()
    }

    /// Expands one tree node: samples the next frontier cube and
    /// declares it a leaf or splits it. Returns `false` when the
    /// frontier was already empty (nothing left to do).
    ///
    /// Per-node expansion cost lands in the `fbdt.node_ns` histogram,
    /// each expansion emits a `node` trace event when a trace stream is
    /// attached, and queries issued during node sampling are tagged
    /// with the current tree depth in the attribution ledger; pass
    /// [`Telemetry::disabled`] to observe nothing.
    pub fn step<O: Oracle + ?Sized>(
        &mut self,
        oracle: &mut O,
        budget: &Budget,
        rng: &mut StdRng,
        telemetry: &Telemetry,
    ) -> bool {
        let Some(cube) = (match self.config.exploration {
            Exploration::Levelized => self.queue.pop_front(),
            Exploration::DepthFirst => self.queue.pop_back(),
        }) else {
            return false;
        };
        let node_cost = telemetry.local_recorder(histograms::FBDT_NODE_NS);
        let trace = telemetry.trace_local();
        let free: Vec<usize> = self
            .support
            .iter()
            .copied()
            .filter(|&i| !cube.contains_var(Var::new(i as u32)))
            .collect();
        let depth = cube.literals().len();
        telemetry.set_fbdt_depth(Some(depth as u64));
        let node_start = Instant::now();
        let node = pattern_sampling(
            oracle,
            self.output,
            &cube,
            &free,
            &self.config.node_sampling,
            rng,
        );
        self.stats.queries += node.queries;

        let disposition;
        if node.truth_ratio >= 1.0 - self.config.epsilon {
            self.onset.push(cube);
            self.stats.leaves += 1;
            disposition = "leaf_one";
        } else if node.truth_ratio <= self.config.epsilon {
            self.offset.push(cube);
            self.stats.leaves += 1;
            disposition = "leaf_zero";
        } else {
            let out_of_budget = budget.exhausted()
                || self.stats.splits >= self.config.max_nodes
                || self
                    .config
                    .max_queries
                    .is_some_and(|cap| self.stats.queries >= cap)
                || free.is_empty();
            let split = if out_of_budget {
                None
            } else {
                node.most_significant(&free)
            };
            match split {
                Some(i) => {
                    self.stats.splits += 1;
                    let v = Var::new(i as u32);
                    // panic-ok: `v` comes from `free`, which holds only
                    // variables the cube leaves unconstrained, so
                    // `and_literal` cannot conflict (Algorithm 2 splits
                    // on fresh variables by construction).
                    self.queue
                        .push_back(cube.and_literal(v.negative()).expect("fresh variable"));
                    // panic-ok: same invariant as the negative branch.
                    self.queue
                        .push_back(cube.and_literal(v.positive()).expect("fresh variable"));
                    disposition = "split";
                }
                None => {
                    // Forced leaf: majority vote (Algorithm 2, timeout arm).
                    if node.truth_ratio > 0.5 {
                        self.onset.push(cube);
                    } else {
                        self.offset.push(cube);
                    }
                    self.stats.leaves += 1;
                    self.stats.forced_leaves += 1;
                    disposition = "forced_leaf";
                }
            }
        }
        let node_elapsed = node_start.elapsed();
        node_cost.record_duration(node_elapsed);
        if let Some(trace) = &trace {
            trace.emit(
                "node",
                &[
                    ("output", Json::from(self.output)),
                    ("depth", Json::from(depth)),
                    ("truth_ratio", Json::from(node.truth_ratio)),
                    ("queries", Json::from(node.queries)),
                    ("disposition", Json::from(disposition)),
                    (
                        "elapsed_us",
                        Json::from(u64::try_from(node_elapsed.as_micros()).unwrap_or(u64::MAX)),
                    ),
                ],
            );
        }
        true
    }

    /// Abandons the remaining frontier: each unexpanded region falls
    /// back to the cover's default polarity, which (by onset/offset
    /// selection) is the output's global majority value — the same
    /// guess a budget-forced leaf would make with zero extra samples.
    /// Used by deadline degradation to turn a half-built tree into a
    /// usable cover immediately.
    pub fn finish_now(&mut self) {
        let dropped = self.queue.len();
        self.stats.leaves += dropped;
        self.stats.forced_leaves += dropped;
        self.queue.clear();
    }

    /// Assembles the learned cover from the collected cubes.
    ///
    /// Call after the frontier is exhausted (or [`finish_now`]
    /// abandoned it); any cubes still queued are dropped to the default
    /// polarity *without* being counted as forced leaves.
    ///
    /// [`finish_now`]: FbdtBuilder::finish_now
    pub fn finish(self) -> (LearnedCover, FbdtStats) {
        let mut cover = if self.collect_offset {
            LearnedCover {
                sop: Sop::from_cubes(self.offset),
                complemented: true,
            }
        } else {
            LearnedCover {
                sop: Sop::from_cubes(self.onset),
                complemented: false,
            }
        };
        cover.sop.make_single_cube_minimal();
        (cover, self.stats)
    }
}

/// Builds the FBDT for `output` over the given (approximate) support
/// and returns the learned cover plus statistics.
///
/// `truth_ratio_hint` is the unconstrained truth ratio from support
/// identification; it drives the onset/offset selection (more 1s →
/// collect offset cubes).
///
/// This is the run-to-completion convenience wrapper over
/// [`FbdtBuilder`]; the learner drives the builder directly so it can
/// checkpoint between node expansions.
#[allow(clippy::too_many_arguments)]
pub fn build_fbdt<O: Oracle + ?Sized>(
    oracle: &mut O,
    output: usize,
    support: &[usize],
    truth_ratio_hint: f64,
    config: &FbdtConfig,
    budget: &Budget,
    rng: &mut StdRng,
    telemetry: &Telemetry,
) -> (LearnedCover, FbdtStats) {
    let mut builder = FbdtBuilder::new(output, support, truth_ratio_hint, config);
    while builder.step(oracle, budget, rng, telemetry) {}
    telemetry.set_fbdt_depth(None);
    builder.finish()
}

/// Conquers a small-support function exhaustively (paper §IV-D trick 1):
/// enumerates all `2^|support|` assignments in one batch, builds the
/// exact truth table, and returns the smaller of the onset and offset
/// ISOP covers.
///
/// Inputs outside the support are fixed to random values — by the
/// support assumption they do not affect the output.
///
/// # Panics
///
/// Panics if `support.len() > 24` (batch would not fit a truth table).
pub fn learn_exhaustive<O: Oracle + ?Sized>(
    oracle: &mut O,
    output: usize,
    support: &[usize],
    rng: &mut StdRng,
) -> (LearnedCover, u64) {
    let k = support.len();
    assert!(k <= 24, "exhaustive enumeration limited to 24 inputs");
    let n = oracle.num_inputs();
    let base = Assignment::random(n, rng);
    let patterns: Vec<Assignment> = (0..1u64 << k)
        .map(|m| {
            let mut a = base.clone();
            for (bit, &pos) in support.iter().enumerate() {
                a.set(Var::new(pos as u32), m >> bit & 1 == 1);
            }
            a
        })
        .collect();
    let outs = oracle.query_batch(&patterns);
    let mut tt = TruthTable::zeros(k).expect("k <= 24");
    for (m, row) in outs.iter().enumerate() {
        if row[output] {
            tt.set(m as u64, true);
        }
    }
    // Onset/offset selection: take the smaller cover.
    let onset = tt.isop();
    let offset = (!tt).isop();
    let (local, complemented) = if cover_cost(&offset) < cover_cost(&onset) {
        (offset, true)
    } else {
        (onset, false)
    };
    // Remap local variables x_bit -> global input positions.
    let sop = remap_sop(&local, support);
    (LearnedCover { sop, complemented }, 1u64 << k)
}

fn cover_cost(sop: &Sop) -> usize {
    sop.cubes().len() * 100 + sop.literal_count()
}

/// Remaps cube variables from local indices to global positions.
fn remap_sop(sop: &Sop, support: &[usize]) -> Sop {
    sop.cubes()
        .iter()
        .map(|c| {
            Cube::from_literals(c.literals().iter().map(|l| {
                let pos = support[l.var().index() as usize];
                Var::new(pos as u32).literal(l.polarity())
            }))
            .expect("distinct variables stay distinct")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::seeded_rng;
    use cirlearn_aig::Aig;
    use cirlearn_oracle::CircuitOracle;

    /// Checks a learned cover against a hidden circuit exhaustively.
    fn exact_match(oracle: &CircuitOracle, cover: &LearnedCover, n: usize) -> bool {
        for m in 0..1u64 << n {
            let bits: Vec<bool> = (0..n).map(|k| m >> k & 1 == 1).collect();
            let want = oracle.reveal().eval_bits(&bits)[0];
            let got = cover.eval_with(|v| bits[v.index() as usize]);
            if want != got {
                return false;
            }
        }
        true
    }

    fn oracle_of(
        f: impl Fn(&mut Aig, &[cirlearn_aig::Edge]) -> cirlearn_aig::Edge,
        n: usize,
    ) -> CircuitOracle {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", n);
        let y = f(&mut g, &inputs);
        g.add_output(y, "y");
        CircuitOracle::new(g)
    }

    #[test]
    fn fbdt_learns_conjunction() {
        let mut o = oracle_of(|g, i| g.and(i[1], i[3]), 6);
        let mut rng = seeded_rng(21);
        let (cover, stats) = build_fbdt(
            &mut o,
            0,
            &[1, 3],
            0.25,
            &FbdtConfig::fast(),
            &Budget::unlimited(),
            &mut rng,
            &Telemetry::disabled(),
        );
        assert!(exact_match(&o, &cover, 6), "cover: {:?}", cover);
        assert!(stats.splits >= 1);
        assert_eq!(stats.forced_leaves, 0);
        assert!(!cover.complemented, "AND is 1-sparse: onset collected");
    }

    #[test]
    fn fbdt_learns_disjunction_as_offset() {
        // OR of 3 inputs is 1-heavy: the offset (single cube) is
        // collected and the cover complemented.
        let mut o = oracle_of(|g, i| g.or_many(&i[..3]), 5);
        let mut rng = seeded_rng(22);
        let (cover, _) = build_fbdt(
            &mut o,
            0,
            &[0, 1, 2],
            0.875,
            &FbdtConfig::fast(),
            &Budget::unlimited(),
            &mut rng,
            &Telemetry::disabled(),
        );
        assert!(cover.complemented);
        assert!(exact_match(&o, &cover, 5));
        assert_eq!(cover.sop.cubes().len(), 1);
    }

    #[test]
    fn fbdt_learns_xor_exactly() {
        let mut o = oracle_of(
            |g, i| {
                let t = g.xor(i[0], i[2]);
                g.xor(t, i[4])
            },
            5,
        );
        let mut rng = seeded_rng(23);
        let (cover, stats) = build_fbdt(
            &mut o,
            0,
            &[0, 2, 4],
            0.5,
            &FbdtConfig::fast(),
            &Budget::unlimited(),
            &mut rng,
            &Telemetry::disabled(),
        );
        assert!(exact_match(&o, &cover, 5));
        // XOR of 3 vars: the tree must split on all of them: 1+2+4 = 7 splits.
        assert_eq!(stats.splits, 7);
        assert_eq!(stats.leaves, 8);
    }

    #[test]
    fn constant_functions_are_single_leaves() {
        let mut o = oracle_of(|_, _| cirlearn_aig::Edge::TRUE, 4);
        let mut rng = seeded_rng(24);
        let (cover, stats) = build_fbdt(
            &mut o,
            0,
            &[],
            1.0,
            &FbdtConfig::fast(),
            &Budget::unlimited(),
            &mut rng,
            &Telemetry::disabled(),
        );
        assert_eq!(stats.splits, 0);
        assert_eq!(stats.leaves, 1);
        assert!(exact_match(&o, &cover, 4));
    }

    #[test]
    fn zero_budget_forces_majority_leaf() {
        let mut o = oracle_of(|g, i| g.and(i[0], i[1]), 4);
        let mut rng = seeded_rng(25);
        let (cover, stats) = build_fbdt(
            &mut o,
            0,
            &[0, 1],
            0.25,
            &FbdtConfig::fast(),
            &Budget::new(std::time::Duration::ZERO),
            &mut rng,
            &Telemetry::disabled(),
        );
        assert_eq!(stats.forced_leaves, 1);
        assert_eq!(stats.splits, 0);
        // Majority of an AND is 0: the learned cover is constant 0 —
        // which is still 75% accurate.
        assert!(!cover.eval_with(|_| true));
    }

    #[test]
    fn exhaustive_learns_exactly_and_picks_smaller_polarity() {
        // 1-heavy function: offset cover is smaller.
        let mut o = oracle_of(|g, i| g.or_many(&i[..4]), 6);
        let mut rng = seeded_rng(26);
        let (cover, queries) = learn_exhaustive(&mut o, 0, &[0, 1, 2, 3], &mut rng);
        assert_eq!(queries, 16);
        assert!(cover.complemented);
        assert!(exact_match(&o, &cover, 6));
    }

    #[test]
    fn exhaustive_handles_empty_support() {
        let mut o = oracle_of(|_, _| cirlearn_aig::Edge::FALSE, 3);
        let mut rng = seeded_rng(27);
        let (cover, queries) = learn_exhaustive(&mut o, 0, &[], &mut rng);
        assert_eq!(queries, 1);
        assert!(exact_match(&o, &cover, 3));
    }

    #[test]
    fn suspend_snapshot_restore_is_bit_identical() {
        // Reference: uninterrupted run.
        let mut o = oracle_of(
            |g, i| {
                let t = g.xor(i[0], i[2]);
                g.xor(t, i[4])
            },
            5,
        );
        let cfg = FbdtConfig::fast();
        let mut rng = seeded_rng(23);
        let (want_cover, want_stats) = build_fbdt(
            &mut o,
            0,
            &[0, 2, 4],
            0.5,
            &cfg,
            &Budget::unlimited(),
            &mut rng,
            &Telemetry::disabled(),
        );

        // Suspend after k steps, serialize the frontier + RNG words,
        // restore into a fresh builder and run to completion: the
        // result must be identical for every suspension point.
        for k in 0..16 {
            let mut o = oracle_of(
                |g, i| {
                    let t = g.xor(i[0], i[2]);
                    g.xor(t, i[4])
                },
                5,
            );
            let mut rng = seeded_rng(23);
            let mut builder = FbdtBuilder::new(0, &[0, 2, 4], 0.5, &cfg);
            for _ in 0..k {
                builder.step(
                    &mut o,
                    &Budget::unlimited(),
                    &mut rng,
                    &Telemetry::disabled(),
                );
            }
            let snapshot = builder.snapshot();
            let rng_words = rng.state();
            drop(builder);

            // The original `rng` is shadowed below: the restored run
            // may only see the serialized state words.
            let mut restored = FbdtBuilder::restore(snapshot, &cfg);
            let mut rng = rand::rngs::StdRng::from_state(rng_words);
            while restored.step(
                &mut o,
                &Budget::unlimited(),
                &mut rng,
                &Telemetry::disabled(),
            ) {}
            let (cover, stats) = restored.finish();
            assert_eq!(cover, want_cover, "suspended at step {k}");
            assert_eq!(stats, want_stats, "suspended at step {k}");
        }
    }

    #[test]
    fn finish_now_degrades_frontier_to_majority() {
        // 1-heavy OR: after a couple of steps abandon the frontier; the
        // cover must still predict the majority value everywhere the
        // frontier was dropped.
        let mut o = oracle_of(|g, i| g.or_many(&i[..3]), 4);
        let mut rng = seeded_rng(31);
        let cfg = FbdtConfig::fast();
        let mut builder = FbdtBuilder::new(0, &[0, 1, 2], 0.875, &cfg);
        builder.step(
            &mut o,
            &Budget::unlimited(),
            &mut rng,
            &Telemetry::disabled(),
        );
        builder.finish_now();
        assert!(builder.is_done());
        let frontier_dropped = builder.stats().forced_leaves;
        let (cover, stats) = builder.finish();
        assert_eq!(stats.forced_leaves, frontier_dropped);
        // Dropped regions default to the majority (1 for an OR), so the
        // all-ones input must evaluate true.
        assert!(cover.eval_with(|_| true));
    }

    /// Paper Fig. 4: FBDT construction of
    /// `F = ¬v¬c¬e ∨ ¬vc¬d ∨ v¬e¬d ∨ ve¬c` over variables
    /// `(v, c, d, e)`. The learned cover must represent exactly `F`.
    #[test]
    fn paper_fig4_example() {
        use cirlearn_logic::{Cube, Sop};
        // Variable positions: v=0, c=1, d=2, e=3.
        let v = Var::new(0);
        let c = Var::new(1);
        let d = Var::new(2);
        let e = Var::new(3);
        let f = Sop::from_cubes([
            Cube::from_literals([v.negative(), c.negative(), e.negative()]).expect("ok"),
            Cube::from_literals([v.negative(), c.positive(), d.negative()]).expect("ok"),
            Cube::from_literals([v.positive(), e.negative(), d.negative()]).expect("ok"),
            Cube::from_literals([v.positive(), e.positive(), c.negative()]).expect("ok"),
        ]);
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 4);
        let root = g.add_sop(&f, &inputs);
        g.add_output(root, "F");
        let mut o = CircuitOracle::new(g);
        let mut rng = seeded_rng(29);
        let (cover, stats) = build_fbdt(
            &mut o,
            0,
            &[0, 1, 2, 3],
            0.5,
            &FbdtConfig::fast(),
            &Budget::unlimited(),
            &mut rng,
            &Telemetry::disabled(),
        );
        assert!(exact_match(&o, &cover, 4), "Fig. 4 function must be exact");
        // The tree terminates without forced leaves and stays small.
        assert_eq!(stats.forced_leaves, 0);
        assert!(stats.leaves <= 16);
    }

    #[test]
    fn exhaustive_remaps_to_global_positions() {
        // Function over inputs {2, 5} of 8; check literal positions.
        let mut o = oracle_of(|g, i| g.xor(i[2], i[5]), 8);
        let mut rng = seeded_rng(28);
        let (cover, _) = learn_exhaustive(&mut o, 0, &[2, 5], &mut rng);
        assert!(exact_match(&o, &cover, 8));
        let sup: Vec<u32> = cover.sop.support().iter().map(|v| v.index()).collect();
        assert_eq!(sup, vec![2, 5]);
    }
}

#[cfg(test)]
mod exploration_tests {
    use super::*;
    use crate::sampling::seeded_rng;
    use cirlearn_oracle::CircuitOracle;

    #[test]
    fn depth_first_is_exact_without_budget_pressure() {
        use cirlearn_aig::Aig;
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 5);
        let t = g.xor(inputs[0], inputs[2]);
        let y = g.and(t, inputs[4]);
        g.add_output(y, "y");
        let mut o = CircuitOracle::new(g);
        let mut rng = seeded_rng(71);
        let cfg = FbdtConfig {
            exploration: Exploration::DepthFirst,
            ..FbdtConfig::fast()
        };
        let (cover, stats) = build_fbdt(
            &mut o,
            0,
            &[0, 2, 4],
            0.25,
            &cfg,
            &Budget::unlimited(),
            &mut rng,
            &Telemetry::disabled(),
        );
        assert_eq!(stats.forced_leaves, 0);
        for m in 0..32u64 {
            let bits: Vec<bool> = (0..5).map(|k| m >> k & 1 == 1).collect();
            let want = o.reveal().eval_bits(&bits)[0];
            assert_eq!(cover.eval_with(|v| bits[v.index() as usize]), want, "m={m}");
        }
    }

    #[test]
    fn onset_only_mode_never_complements() {
        use cirlearn_aig::Aig;
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 4);
        let y = g.or_many(&inputs[..3]); // 1-heavy
        g.add_output(y, "y");
        let mut o = CircuitOracle::new(g);
        let mut rng = seeded_rng(72);
        let cfg = FbdtConfig {
            onset_offset_selection: false,
            ..FbdtConfig::fast()
        };
        let (cover, _) = build_fbdt(
            &mut o,
            0,
            &[0, 1, 2],
            0.875,
            &cfg,
            &Budget::unlimited(),
            &mut rng,
            &Telemetry::disabled(),
        );
        assert!(!cover.complemented);
        for m in 0..16u64 {
            let bits: Vec<bool> = (0..4).map(|k| m >> k & 1 == 1).collect();
            let want = o.reveal().eval_bits(&bits)[0];
            assert_eq!(cover.eval_with(|v| bits[v.index() as usize]), want, "m={m}");
        }
    }
}
