//! Input compression via comparator delegates (paper §IV-B1,
//! Example 2 / Fig. 3).
//!
//! A comparator may be a *hidden* subcircuit: its output `O_s` is not a
//! primary output but feeds further logic. The paper detects it by
//! fixing the other inputs to a cube `c` that propagates `O_s` to some
//! observable output, then treats `O_s` as a **new primary input** and
//! discards the bus inputs `I_s` — *input compression* — before
//! running the decision-tree learner on the compressed input space.
//!
//! [`find_hidden_comparator`] performs the cube-probing detection;
//! [`DelegateOracle`] realizes the compressed black box: it forwards
//! queries to the original oracle, materializing each delegate bit by
//! writing *witness values* onto the underlying buses.

use cirlearn_logic::{Assignment, Var};
use cirlearn_oracle::Oracle;
use rand::rngs::StdRng;
use rand::Rng;

use crate::naming::VarGroup;
use crate::template::{Predicate, TemplateConfig};

/// A detected hidden comparator usable as a delegate input.
#[derive(Debug, Clone)]
pub struct Delegate {
    /// Left bus positions (MSB first).
    pub lhs_positions: Vec<usize>,
    /// Right bus positions, or `None` when comparing to a constant.
    pub rhs_positions: Option<Vec<usize>>,
    /// The constant, when `rhs_positions` is `None`.
    pub constant: u64,
    /// The matched predicate.
    pub predicate: Predicate,
    /// Bus values `(lhs, rhs)` forcing the predicate to 0.
    pub witness0: (u64, u64),
    /// Bus values `(lhs, rhs)` forcing the predicate to 1.
    pub witness1: (u64, u64),
}

impl Delegate {
    /// All original input positions this delegate absorbs.
    pub fn absorbed_positions(&self) -> Vec<usize> {
        let mut v = self.lhs_positions.clone();
        if let Some(r) = &self.rhs_positions {
            v.extend_from_slice(r);
        }
        v.sort_unstable();
        v
    }

    /// Writes bus values realizing `value` of the delegate bit into a
    /// full assignment.
    pub fn imprint(&self, a: &mut Assignment, value: bool) {
        let (lv, rv) = if value { self.witness1 } else { self.witness0 };
        write_positions(a, &self.lhs_positions, lv);
        if let Some(r) = &self.rhs_positions {
            write_positions(a, r, rv);
        }
    }
}

fn write_positions(a: &mut Assignment, msb_first: &[usize], value: u64) {
    let vars: Vec<Var> = msb_first.iter().map(|&p| Var::new(p as u32)).collect();
    a.write_vector(&vars, value);
}

fn mask_of(width: usize) -> u64 {
    if width >= 64 {
        !0
    } else {
        (1u64 << width) - 1
    }
}

/// Finds witness values for both polarities of `pred` over operand
/// domains of the given widths (rhs fixed to `constant` when
/// `rhs_width` is `None`). Returns `None` for predicates constant over
/// the domain (e.g. `< 0`).
fn find_witnesses(
    pred: Predicate,
    lhs_width: usize,
    rhs_width: Option<usize>,
    constant: u64,
) -> Option<((u64, u64), (u64, u64))> {
    let lmax = mask_of(lhs_width);
    let candidates_l = [
        0u64,
        1,
        constant,
        constant.wrapping_add(1),
        constant.wrapping_sub(1),
        lmax,
    ];
    let candidates_r: Vec<u64> = match rhs_width {
        Some(w) => vec![0, 1, mask_of(w)],
        None => vec![constant],
    };
    let mut w0 = None;
    let mut w1 = None;
    for &l in &candidates_l {
        if l > lmax {
            continue;
        }
        for &r in &candidates_r {
            let v = pred.eval(l, r);
            if v && w1.is_none() {
                w1 = Some((l, r));
            }
            if !v && w0.is_none() {
                w0 = Some((l, r));
            }
        }
    }
    Some((w0?, w1?))
}

/// Probes for a comparator hidden behind other logic: fixes the inputs
/// outside the candidate buses to random cubes and checks whether,
/// under some cube, the output behaves exactly as a predicate of the
/// bus values (in either polarity — downstream logic may invert).
///
/// Returns the delegate on success. The number of cubes tried and the
/// per-cube pair tests come from `config` (`rest_samples` ×
/// `pair_samples`).
pub fn find_hidden_comparator<O: Oracle + ?Sized>(
    oracle: &mut O,
    output: usize,
    groups: &[VarGroup],
    config: &TemplateConfig,
    rng: &mut StdRng,
) -> Option<Delegate> {
    let n = oracle.num_inputs();
    let cubes_to_try = config.rest_samples.max(2) * 2;
    for (li, lhs) in groups.iter().enumerate() {
        for (ri, rhs) in groups.iter().enumerate() {
            if li == ri {
                continue;
            }
            let lmask = mask_of(lhs.width());
            let rmask = mask_of(rhs.width());
            for _ in 0..cubes_to_try {
                // A full random assignment serves as the gating cube on
                // the non-bus inputs.
                let rest = Assignment::random(n, rng);
                let mut candidates: Vec<Predicate> = Predicate::ALL.to_vec();
                let mut saw_zero = false;
                let mut saw_one = false;
                let mut patterns = Vec::new();
                let mut values = Vec::new();
                for k in 0..config.pair_samples {
                    let x = rng.gen::<u64>() & lmask & rmask;
                    let (na, nb) = match k % 4 {
                        0 => (x, x),
                        1 => (x, x.wrapping_add(1) & rmask),
                        2 => (x.wrapping_add(1) & lmask, x),
                        _ => (rng.gen::<u64>() & lmask, rng.gen::<u64>() & rmask),
                    };
                    let mut a = rest.clone();
                    write_positions(&mut a, &lhs.positions, na);
                    write_positions(&mut a, &rhs.positions, nb);
                    patterns.push(a);
                    values.push((na, nb));
                }
                let outs = oracle.query_batch(&patterns);
                for (row, &(na, nb)) in outs.iter().zip(&values) {
                    let z = row[output];
                    saw_zero |= !z;
                    saw_one |= z;
                    candidates.retain(|p| p.eval(na, nb) == z);
                    if candidates.is_empty() {
                        break;
                    }
                }
                // Require genuine dependence on the buses under this
                // cube: both output values observed.
                if !(saw_zero && saw_one) || candidates.is_empty() {
                    continue;
                }
                let predicate = candidates[0];
                let (witness0, witness1) =
                    find_witnesses(predicate, lhs.width(), Some(rhs.width()), 0)?;
                return Some(Delegate {
                    lhs_positions: lhs.positions.clone(),
                    rhs_positions: Some(rhs.positions.clone()),
                    constant: 0,
                    predicate,
                    witness0,
                    witness1,
                });
            }
        }
    }
    None
}

/// A black box over a *compressed* input space: the inputs absorbed by
/// the delegates are replaced by one virtual input per delegate, placed
/// after the kept inputs.
///
/// Querying translates the virtual assignment into a real one by
/// copying kept bits and imprinting witness bus values per delegate —
/// valid under the paper's dominator assumption (every path from the
/// absorbed inputs to the outputs passes through the comparator
/// output).
#[derive(Debug)]
pub struct DelegateOracle<'a, O: Oracle + ?Sized> {
    inner: &'a mut O,
    delegates: Vec<Delegate>,
    /// Original positions of the kept (non-absorbed) inputs.
    kept: Vec<usize>,
    input_names: Vec<String>,
    output_names: Vec<String>,
}

impl<'a, O: Oracle + ?Sized> DelegateOracle<'a, O> {
    /// Wraps `inner`, absorbing the inputs of every delegate.
    pub fn new(inner: &'a mut O, delegates: Vec<Delegate>) -> Self {
        let n = inner.num_inputs();
        let mut absorbed = vec![false; n];
        for d in &delegates {
            for p in d.absorbed_positions() {
                absorbed[p] = true;
            }
        }
        let kept: Vec<usize> = (0..n).filter(|&p| !absorbed[p]).collect();
        let mut input_names: Vec<String> = kept
            .iter()
            .map(|&p| inner.input_names()[p].clone())
            .collect();
        for (k, d) in delegates.iter().enumerate() {
            input_names.push(format!("delegate_{k}_{}", d.predicate));
        }
        let output_names = inner.output_names().to_vec();
        DelegateOracle {
            inner,
            delegates,
            kept,
            input_names,
            output_names,
        }
    }

    /// The original positions of the kept inputs, in virtual order.
    pub fn kept_positions(&self) -> &[usize] {
        &self.kept
    }

    /// The delegates, in virtual-input order (after the kept inputs).
    pub fn delegates(&self) -> &[Delegate] {
        &self.delegates
    }

    fn translate(&self, virtual_input: &Assignment) -> Assignment {
        let mut real = Assignment::zeros(self.inner.num_inputs());
        for (v, &orig) in self.kept.iter().enumerate() {
            real.set(Var::new(orig as u32), virtual_input.get(Var::new(v as u32)));
        }
        for (k, d) in self.delegates.iter().enumerate() {
            let bit = virtual_input.get(Var::new((self.kept.len() + k) as u32));
            d.imprint(&mut real, bit);
        }
        real
    }
}

impl<O: Oracle + ?Sized> Oracle for DelegateOracle<'_, O> {
    fn num_inputs(&self) -> usize {
        self.kept.len() + self.delegates.len()
    }

    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }

    fn input_names(&self) -> &[String] {
        &self.input_names
    }

    fn output_names(&self) -> &[String] {
        &self.output_names
    }

    fn query(&mut self, input: &Assignment) -> Vec<bool> {
        let real = self.translate(input);
        self.inner.query(&real)
    }

    fn query_batch(&mut self, inputs: &[Assignment]) -> Vec<Vec<bool>> {
        let real: Vec<Assignment> = inputs.iter().map(|a| self.translate(a)).collect();
        self.inner.query_batch(&real)
    }

    fn queries(&self) -> u64 {
        self.inner.queries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naming::group_names;
    use crate::sampling::seeded_rng;
    use cirlearn_aig::Aig;
    use cirlearn_oracle::CircuitOracle;

    /// Fig. 3-style circuit: a hidden comparator `v = (N_a < N_b)`
    /// whose output gates further logic: `z = v ? (c & d) : (c | e)`.
    fn gated_comparator() -> CircuitOracle {
        let mut g = Aig::new();
        let a: Vec<_> = (0..4)
            .map(|k| g.add_input(format!("a[{}]", 3 - k)))
            .collect();
        let b: Vec<_> = (0..4)
            .map(|k| g.add_input(format!("b[{}]", 3 - k)))
            .collect();
        let c = g.add_input("c");
        let d = g.add_input("d");
        let e = g.add_input("e");
        let v = g.cmp_ult(&a, &b);
        let t = g.and(c, d);
        let u = g.or(c, e);
        let z = g.mux(v, t, u);
        g.add_output(z, "z");
        CircuitOracle::new(g)
    }

    #[test]
    fn witnesses_exist_for_all_predicates() {
        for pred in Predicate::ALL {
            let (w0, w1) = find_witnesses(pred, 4, Some(4), 0).expect("witnesses exist");
            assert!(!pred.eval(w0.0, w0.1), "{pred} w0");
            assert!(pred.eval(w1.0, w1.1), "{pred} w1");
        }
    }

    #[test]
    fn detects_hidden_comparator() {
        let mut oracle = gated_comparator();
        let groups = group_names(oracle.input_names()).groups;
        let mut rng = seeded_rng(61);
        let d = find_hidden_comparator(
            &mut oracle,
            0,
            &groups,
            &TemplateConfig::default(),
            &mut rng,
        )
        .expect("hidden comparator must be found");
        // Lt between the buses (or an equivalent form under swap).
        assert_eq!(d.lhs_positions.len(), 4);
        assert!(d.rhs_positions.as_ref().map(Vec::len) == Some(4));
    }

    #[test]
    fn no_false_positive_on_parity() {
        // Output = parity of both buses: no comparator.
        let mut g = Aig::new();
        let a: Vec<_> = (0..4)
            .map(|k| g.add_input(format!("a[{}]", 3 - k)))
            .collect();
        let b: Vec<_> = (0..4)
            .map(|k| g.add_input(format!("b[{}]", 3 - k)))
            .collect();
        let mut z = a[0];
        for &e in a[1..].iter().chain(&b) {
            z = g.xor(z, e);
        }
        g.add_output(z, "z");
        let mut oracle = CircuitOracle::new(g);
        let groups = group_names(oracle.input_names()).groups;
        let mut rng = seeded_rng(62);
        assert!(find_hidden_comparator(
            &mut oracle,
            0,
            &groups,
            &TemplateConfig::default(),
            &mut rng
        )
        .is_none());
    }

    #[test]
    fn delegate_oracle_compresses_inputs() {
        let mut oracle = gated_comparator();
        let groups = group_names(oracle.input_names()).groups;
        let mut rng = seeded_rng(63);
        let d = find_hidden_comparator(
            &mut oracle,
            0,
            &groups,
            &TemplateConfig::default(),
            &mut rng,
        )
        .expect("found");
        let predicate = d.predicate;
        let lhs = d.lhs_positions.clone();
        let rhs = d.rhs_positions.clone().expect("pair");
        let mut compressed = DelegateOracle::new(&mut oracle, vec![d]);
        // 11 original inputs -> 3 kept + 1 delegate.
        assert_eq!(compressed.num_inputs(), 4);
        assert_eq!(compressed.kept_positions().len(), 3);
        assert!(compressed.input_names()[3].starts_with("delegate_0"));

        // Whatever polarity the detector picked, the delegate bit must
        // steer the hidden mux: flipping it changes the output exactly
        // when the two mux branches (c&d vs c|e) differ.
        let _ = (predicate, &lhs, &rhs);
        for m in 0..16u64 {
            let mut va = Assignment::zeros(4);
            for k in 0..4 {
                va.set(Var::new(k as u32), m >> k & 1 == 1);
            }
            let out = compressed.query(&va)[0];
            let (c, dd, e) = (m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1);
            let mut other = va.clone();
            other.flip(Var::new(3));
            let out_other = compressed.query(&other)[0];
            if (c && dd) != (c || e) {
                assert_ne!(out, out_other, "delegate bit must control the mux (m={m})");
            } else {
                assert_eq!(out, out_other, "m={m}");
            }
        }
    }

    #[test]
    fn fbdt_learns_over_compressed_inputs() {
        use crate::fbdt::learn_exhaustive;
        let mut oracle = gated_comparator();
        let groups = group_names(oracle.input_names()).groups;
        let mut rng = seeded_rng(64);
        let d = find_hidden_comparator(
            &mut oracle,
            0,
            &groups,
            &TemplateConfig::default(),
            &mut rng,
        )
        .expect("found");
        let mut compressed = DelegateOracle::new(&mut oracle, vec![d]);
        // 4 virtual inputs: exhaustive conquest applies directly.
        let support: Vec<usize> = (0..4).collect();
        let (cover, _) = learn_exhaustive(&mut compressed, 0, &support, &mut rng);
        // Check the learned cover against the compressed oracle.
        for m in 0..16u64 {
            let mut va = Assignment::zeros(4);
            for k in 0..4 {
                va.set(Var::new(k as u32), m >> k & 1 == 1);
            }
            let want = compressed.query(&va)[0];
            let got = cover.eval_with(|v| m >> v.index() & 1 == 1);
            assert_eq!(got, want, "m={m}");
        }
    }
}
