//! Name-based grouping (paper §IV-A).
//!
//! Industrial netlists name datapath bits systematically: `a[3]`,
//! `a_3`, `a3`, `data<7>` … Grouping ports whose names share a common
//! stem recovers the bus vectors `v̄` the templates of §IV-B operate on.
//! Each recovered group is ordered most-significant-bit first, so the
//! group read as a binary number is the paper's `N_v̄`.

use std::collections::HashMap;

/// A recovered bus: a named vector of port positions, MSB first.
///
/// # Examples
///
/// ```
/// use cirlearn::naming::group_names;
///
/// let names = ["a[2]", "a[0]", "a[1]", "clk"];
/// let grouping = group_names(&names.map(String::from));
/// assert_eq!(grouping.groups.len(), 1);
/// assert_eq!(grouping.groups[0].stem, "a");
/// // MSB (a[2]) first: positions into the original name list.
/// assert_eq!(grouping.groups[0].positions, vec![0, 2, 1]);
/// assert_eq!(grouping.scalars, vec![3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarGroup {
    /// The shared name stem (e.g. `a` for `a[3]`).
    pub stem: String,
    /// Port positions of the member bits, most significant first.
    pub positions: Vec<usize>,
    /// The bit indices parsed from the names, aligned with
    /// `positions` (descending).
    pub bits: Vec<u32>,
}

impl VarGroup {
    /// The width of the bus.
    pub fn width(&self) -> usize {
        self.positions.len()
    }
}

/// The result of name-based grouping over a port list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Grouping {
    /// Recovered buses, in order of first appearance.
    pub groups: Vec<VarGroup>,
    /// Positions of ports that joined no group.
    pub scalars: Vec<usize>,
}

/// Splits a port name into a stem and a bit index.
///
/// Recognized forms: `stem[3]`, `stem<3>`, `stem(3)`, `stem_3` and a
/// trailing bare number `stem3`. Returns `None` for names without a
/// parsable index.
pub fn parse_indexed_name(name: &str) -> Option<(&str, u32)> {
    let name = name.trim();
    // Bracketed forms.
    for (open, close) in [('[', ']'), ('<', '>'), ('(', ')')] {
        if let Some(rest) = name.strip_suffix(close) {
            if let Some(pos) = rest.rfind(open) {
                let idx: u32 = rest[pos + 1..].parse().ok()?;
                let stem = &rest[..pos];
                if stem.is_empty() {
                    return None;
                }
                return Some((stem, idx));
            }
        }
    }
    // Underscore form: stem_3.
    if let Some(pos) = name.rfind('_') {
        if let Ok(idx) = name[pos + 1..].parse::<u32>() {
            let stem = &name[..pos];
            if !stem.is_empty() {
                return Some((stem, idx));
            }
        }
    }
    // Trailing digits: stem3.
    let digits = name.len() - name.chars().rev().take_while(char::is_ascii_digit).count();
    if digits < name.len() && digits > 0 {
        let idx: u32 = name[digits..].parse().ok()?;
        return Some((&name[..digits], idx));
    }
    None
}

/// Groups port names into bus vectors (paper Fig. 2).
///
/// A group forms when at least two ports share a stem with distinct
/// parsable bit indices. Members are ordered by descending bit index,
/// i.e. MSB first, matching the binary-encoding convention `N_v̄`.
/// Ports with duplicate indices in the same stem, or with no index,
/// stay scalars.
pub fn group_names(names: &[String]) -> Grouping {
    let mut by_stem: HashMap<&str, Vec<(u32, usize)>> = HashMap::new();
    let mut order: Vec<&str> = Vec::new();
    let mut parsed: Vec<Option<(&str, u32)>> = Vec::with_capacity(names.len());
    for (pos, name) in names.iter().enumerate() {
        let p = parse_indexed_name(name);
        parsed.push(p);
        if let Some((stem, idx)) = p {
            let entry = by_stem.entry(stem).or_default();
            if entry.is_empty() {
                order.push(stem);
            }
            entry.push((idx, pos));
        }
    }

    let mut grouping = Grouping::default();
    let mut grouped_positions: Vec<bool> = vec![false; names.len()];
    for stem in order {
        let mut members = by_stem.remove(stem).expect("stem recorded");
        members.sort_by_key(|&(idx, _)| std::cmp::Reverse(idx));
        let distinct = {
            let mut idxs: Vec<u32> = members.iter().map(|&(i, _)| i).collect();
            idxs.dedup();
            idxs.len() == members.len()
        };
        if members.len() >= 2 && distinct {
            for &(_, pos) in &members {
                grouped_positions[pos] = true;
            }
            grouping.groups.push(VarGroup {
                stem: stem.to_owned(),
                bits: members.iter().map(|&(i, _)| i).collect(),
                positions: members.iter().map(|&(_, p)| p).collect(),
            });
        }
    }
    grouping.scalars = (0..names.len())
        .filter(|&p| !grouped_positions[p])
        .collect();
    grouping
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parse_forms() {
        assert_eq!(parse_indexed_name("a[3]"), Some(("a", 3)));
        assert_eq!(parse_indexed_name("data<12>"), Some(("data", 12)));
        assert_eq!(parse_indexed_name("q(0)"), Some(("q", 0)));
        assert_eq!(parse_indexed_name("bus_7"), Some(("bus", 7)));
        assert_eq!(parse_indexed_name("a2"), Some(("a", 2)));
        assert_eq!(parse_indexed_name("clk"), None);
        assert_eq!(parse_indexed_name("123"), None);
        assert_eq!(parse_indexed_name("[3]"), None);
        assert_eq!(parse_indexed_name("x[y]"), None);
    }

    #[test]
    fn paper_fig2_example() {
        // Fig. 2: a2, a1, a0 form vector ā with a2 the MSB;
        // (a2,a1,a0) = (1,1,0) encodes N = 6.
        let g = group_names(&strs(&["a2", "a1", "a0"]));
        assert_eq!(g.groups.len(), 1);
        let group = &g.groups[0];
        assert_eq!(group.stem, "a");
        assert_eq!(group.positions, vec![0, 1, 2]); // a2 first
        assert_eq!(group.bits, vec![2, 1, 0]);
        // Reading (1,1,0) MSB-first gives 6.
        let bits = [true, true, false];
        let n = group
            .positions
            .iter()
            .fold(0u64, |acc, &p| acc << 1 | bits[p] as u64);
        assert_eq!(n, 6);
    }

    #[test]
    fn multiple_buses_and_scalars() {
        let g = group_names(&strs(&["x[1]", "y[0]", "x[0]", "en", "y[1]", "rst"]));
        assert_eq!(g.groups.len(), 2);
        assert_eq!(g.groups[0].stem, "x");
        assert_eq!(g.groups[0].positions, vec![0, 2]);
        assert_eq!(g.groups[1].stem, "y");
        assert_eq!(g.groups[1].positions, vec![4, 1]);
        assert_eq!(g.scalars, vec![3, 5]);
    }

    #[test]
    fn single_member_stays_scalar() {
        let g = group_names(&strs(&["lone[0]", "other"]));
        assert!(g.groups.is_empty());
        assert_eq!(g.scalars, vec![0, 1]);
    }

    #[test]
    fn duplicate_indices_break_group() {
        let g = group_names(&strs(&["d[1]", "d[1]", "d[0]"]));
        assert!(g.groups.is_empty());
        assert_eq!(g.scalars.len(), 3);
    }

    #[test]
    fn underscore_and_plain_suffix_forms() {
        let g = group_names(&strs(&["cnt_2", "cnt_0", "cnt_1"]));
        assert_eq!(g.groups.len(), 1);
        assert_eq!(g.groups[0].positions, vec![0, 2, 1]);
        let g2 = group_names(&strs(&["q3", "q1", "q2", "q0"]));
        assert_eq!(g2.groups.len(), 1);
        assert_eq!(g2.groups[0].bits, vec![3, 2, 1, 0]);
    }

    #[test]
    fn wide_sparse_indices_still_group() {
        let g = group_names(&strs(&["v[31]", "v[7]", "v[15]"]));
        assert_eq!(g.groups.len(), 1);
        assert_eq!(g.groups[0].bits, vec![31, 15, 7]);
    }

    #[test]
    fn empty_input() {
        let g = group_names(&[]);
        assert!(g.groups.is_empty());
        assert!(g.scalars.is_empty());
    }
}
