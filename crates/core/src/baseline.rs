//! Contestant-like baseline learners.
//!
//! The paper's Table II compares the winning approach against the two
//! second-place teams. Their executables are not public, so this module
//! provides two learners with the same *failure modes* the table shows:
//!
//! * [`GreedyDtLearner`] ("2nd place (i)"-style) — a plain decision
//!   tree: no name grouping, no templates, uniform-only sampling,
//!   depth-first expansion on the first dependent input, flat
//!   (unfactored, unminimized) SOP construction. It works on easy
//!   random logic but produces large circuits and collapses on
//!   datapath cases.
//! * [`SampleSopLearner`] ("2nd place (ii)"-style) — memorizes sampled
//!   positive minterms over an estimated support as a flat SOP. Sizes
//!   explode and generalization is poor for dense functions.

use cirlearn_aig::{Aig, Edge};
use cirlearn_logic::{Cube, Sop, Var};
use cirlearn_oracle::Oracle;
use rand::rngs::StdRng;

use crate::budget::Budget;
use crate::learner::{FaultSummary, LearnResult};
use crate::sampling::{pattern_sampling, seeded_rng, SamplingConfig};
use crate::{OutputStats, Strategy};

/// Baseline (i): a greedy depth-first decision-tree learner without any
/// of the paper's refinements.
#[derive(Debug, Clone)]
pub struct GreedyDtLearner {
    /// Per-node sampling rounds (uniform ratio only).
    pub rounds: usize,
    /// Wall-clock budget.
    pub time_budget: std::time::Duration,
    /// Maximum tree nodes per output.
    pub max_nodes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GreedyDtLearner {
    fn default() -> Self {
        GreedyDtLearner {
            rounds: 48,
            time_budget: std::time::Duration::from_secs(60),
            max_nodes: 4000,
            seed: 0xBA5E1,
        }
    }
}

impl GreedyDtLearner {
    /// Learns a circuit with the plain decision-tree strategy.
    pub fn learn<O: Oracle + ?Sized>(&self, oracle: &mut O) -> LearnResult {
        let budget = Budget::new(self.time_budget);
        let mut rng = seeded_rng(self.seed);
        let start_queries = oracle.queries();
        let n = oracle.num_inputs();
        let cfg = SamplingConfig {
            rounds: self.rounds,
            ratios: vec![0.5], // uniform only: misses skewed dependencies
        };

        let mut circuit = Aig::new();
        for name in oracle.input_names() {
            circuit.add_input(name.clone());
        }
        let var_map: Vec<Edge> = (0..n).map(|p| circuit.input_edge(p)).collect();
        let mut stats = Vec::new();
        let num_outputs = oracle.num_outputs();
        let mut edges = Vec::with_capacity(num_outputs);
        for o in 0..num_outputs {
            let out_start = std::time::Instant::now();
            let queries_before = oracle.queries();
            let sop = self.learn_output(oracle, o, &cfg, &budget, &mut rng);
            // Flat SOP construction: no minimization, no factoring.
            edges.push(circuit.add_sop(&sop, &var_map));
            stats.push(OutputStats {
                output: o,
                name: oracle.output_names()[o].clone(),
                strategy: Strategy::Fbdt,
                support_size: 0,
                forced_leaves: 0,
                elapsed: out_start.elapsed(),
                queries: oracle.queries() - queries_before,
                gates_before_opt: 0,
                gates_after_opt: 0,
            });
        }
        for (o, e) in edges.into_iter().enumerate() {
            circuit.add_output(e, oracle.output_names()[o].clone());
        }
        let circuit = circuit.cleanup();
        for s in &mut stats {
            // Baselines skip optimization: before == after.
            s.gates_before_opt = circuit.output_cone_size(s.output);
            s.gates_after_opt = s.gates_before_opt;
        }
        LearnResult {
            circuit,
            outputs: stats,
            elapsed: budget.elapsed(),
            queries: oracle.queries() - start_queries,
            degraded: Vec::new(),
            faults: FaultSummary::default(),
        }
    }

    fn learn_output<O: Oracle + ?Sized>(
        &self,
        oracle: &mut O,
        output: usize,
        cfg: &SamplingConfig,
        budget: &Budget,
        rng: &mut StdRng,
    ) -> Sop {
        let n = oracle.num_inputs();
        let mut onset: Vec<Cube> = Vec::new();
        // Depth-first: a stack, not the paper's levelized queue.
        let mut stack: Vec<Cube> = vec![Cube::top()];
        let mut nodes = 0usize;
        while let Some(cube) = stack.pop() {
            let free: Vec<usize> = (0..n)
                .filter(|&i| !cube.contains_var(Var::new(i as u32)))
                .collect();
            let node = pattern_sampling(oracle, output, &cube, &free, cfg, rng);
            if node.truth_ratio >= 1.0 {
                onset.push(cube);
                continue;
            }
            if node.truth_ratio <= 0.0 {
                continue;
            }
            nodes += 1;
            let over = budget.exhausted() || nodes >= self.max_nodes || free.is_empty();
            // Split on the *first* dependent input — no significance
            // ordering.
            let split = if over {
                None
            } else {
                free.iter().copied().find(|&i| node.dependency[i] > 0)
            };
            match split {
                Some(i) => {
                    let v = Var::new(i as u32);
                    stack.push(cube.and_literal(v.positive()).expect("fresh"));
                    stack.push(cube.and_literal(v.negative()).expect("fresh"));
                }
                None => {
                    if node.truth_ratio > 0.5 {
                        onset.push(cube);
                    }
                }
            }
        }
        Sop::from_cubes(onset)
    }
}

/// Baseline (ii): memorizes sampled positive minterms as a flat SOP.
#[derive(Debug, Clone)]
pub struct SampleSopLearner {
    /// Number of samples drawn per output.
    pub samples: usize,
    /// Support-estimation sampling rounds.
    pub support_rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SampleSopLearner {
    fn default() -> Self {
        SampleSopLearner {
            samples: 4000,
            support_rounds: 200,
            seed: 0xBA5E2,
        }
    }
}

impl SampleSopLearner {
    /// Learns a circuit by minterm memorization.
    pub fn learn<O: Oracle + ?Sized>(&self, oracle: &mut O) -> LearnResult {
        let budget = Budget::unlimited();
        let mut rng = seeded_rng(self.seed);
        let start_queries = oracle.queries();
        let n = oracle.num_inputs();

        let mut circuit = Aig::new();
        for name in oracle.input_names() {
            circuit.add_input(name.clone());
        }
        let var_map: Vec<Edge> = (0..n).map(|p| circuit.input_edge(p)).collect();
        let num_outputs = oracle.num_outputs();
        let mut stats = Vec::new();
        let mut edges = Vec::with_capacity(num_outputs);
        for o in 0..num_outputs {
            let out_start = std::time::Instant::now();
            let queries_before = oracle.queries();
            // Crude support estimate so minterms are over fewer vars.
            let probe: Vec<usize> = (0..n).collect();
            let cfg = SamplingConfig {
                rounds: self.support_rounds,
                ratios: vec![0.5],
            };
            let sup_stats = pattern_sampling(oracle, o, &Cube::top(), &probe, &cfg, &mut rng);
            let support: Vec<usize> = sup_stats.support();
            let support_vars: Vec<Var> = support.iter().map(|&i| Var::new(i as u32)).collect();

            // Draw samples; keep the positive ones as minterm cubes.
            let n_inputs = oracle.num_inputs();
            let mut cubes: Vec<Cube> = Vec::new();
            const CHUNK: usize = 512;
            let mut drawn = 0;
            while drawn < self.samples {
                let take = CHUNK.min(self.samples - drawn);
                let patterns: Vec<cirlearn_logic::Assignment> = (0..take)
                    .map(|_| cirlearn_logic::Assignment::random(n_inputs, &mut rng))
                    .collect();
                let outs = oracle.query_batch(&patterns);
                for (a, row) in patterns.iter().zip(&outs) {
                    if row[o] {
                        cubes.push(Cube::minterm(&support_vars, a));
                    }
                }
                drawn += take;
            }
            let mut sop = Sop::from_cubes(cubes);
            sop.make_single_cube_minimal();
            // If more than half the samples were positive, memorize the
            // offset instead (mild generalization, mirrors what teams
            // did to survive dense functions).
            let truth_ratio = sup_stats.truth_ratio;
            let edge = circuit.add_sop(&sop, &var_map);
            let edge = if truth_ratio > 0.5 && sop.is_zero() {
                // Degenerate: saw no structure; default to constant.
                Edge::TRUE
            } else {
                edge
            };
            edges.push(edge);
            stats.push(OutputStats {
                output: o,
                name: oracle.output_names()[o].clone(),
                strategy: Strategy::Fbdt,
                support_size: support.len(),
                forced_leaves: 0,
                elapsed: out_start.elapsed(),
                queries: oracle.queries() - queries_before,
                gates_before_opt: 0,
                gates_after_opt: 0,
            });
        }
        for (o, e) in edges.into_iter().enumerate() {
            circuit.add_output(e, oracle.output_names()[o].clone());
        }
        let circuit = circuit.cleanup();
        for s in &mut stats {
            // Baselines skip optimization: before == after.
            s.gates_before_opt = circuit.output_cone_size(s.output);
            s.gates_after_opt = s.gates_before_opt;
        }
        LearnResult {
            circuit,
            outputs: stats,
            elapsed: budget.elapsed(),
            queries: oracle.queries() - start_queries,
            degraded: Vec::new(),
            faults: FaultSummary::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Learner, LearnerConfig};
    use cirlearn_oracle::{evaluate_accuracy, generate, EvalConfig};

    #[test]
    fn greedy_dt_learns_tiny_logic() {
        let mut oracle = generate::eco_case_with_support(10, 2, 4, 11);
        let baseline = GreedyDtLearner::default();
        let result = baseline.learn(&mut oracle);
        let acc = evaluate_accuracy(
            oracle.reveal(),
            &result.circuit,
            &EvalConfig {
                patterns_per_group: 2000,
                ..EvalConfig::default()
            },
        );
        assert!(acc.ratio() > 0.95, "greedy DT accuracy {acc}");
    }

    #[test]
    fn sample_sop_memorizes_sparse_functions() {
        // AND of 4 inputs: sparse onset; memorization eventually works.
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 6);
        let y = g.and_many(&inputs[..4]);
        g.add_output(y, "y");
        let mut oracle = cirlearn_oracle::CircuitOracle::new(g);
        let baseline = SampleSopLearner {
            samples: 3000,
            ..SampleSopLearner::default()
        };
        let result = baseline.learn(&mut oracle);
        let acc = evaluate_accuracy(
            oracle.reveal(),
            &result.circuit,
            &EvalConfig {
                patterns_per_group: 2000,
                ..EvalConfig::default()
            },
        );
        assert!(acc.ratio() > 0.9, "memorizer accuracy {acc}");
    }

    #[test]
    fn baselines_lose_to_learner_on_diag() {
        // The paper's key comparison: on a DIAG case the template
        // learner is exact and tiny; the baselines are not.
        let mut oracle = generate::diag_case(18, 2, 3);
        let mut learner = Learner::new(LearnerConfig::fast());
        let ours = learner.learn(&mut oracle);

        let mut oracle_b = generate::diag_case(18, 2, 3);
        let baseline = GreedyDtLearner {
            time_budget: std::time::Duration::from_secs(5),
            ..GreedyDtLearner::default()
        };
        let theirs = baseline.learn(&mut oracle_b);

        let eval = EvalConfig {
            patterns_per_group: 3000,
            ..EvalConfig::default()
        };
        let acc_ours = evaluate_accuracy(oracle.reveal(), &ours.circuit, &eval);
        let acc_theirs = evaluate_accuracy(oracle_b.reveal(), &theirs.circuit, &eval);
        assert!(acc_ours.ratio() >= acc_theirs.ratio());
        assert!(
            ours.circuit.gate_count() <= theirs.circuit.gate_count(),
            "ours {} vs baseline {}",
            ours.circuit.gate_count(),
            theirs.circuit.gate_count()
        );
    }

    #[test]
    fn sample_sop_sizes_explode_relative_to_ours() {
        let mut oracle = generate::eco_case_with_support(16, 2, 8, 21);
        let mut learner = Learner::new(LearnerConfig::fast());
        let ours = learner.learn(&mut oracle);

        let mut oracle_b = generate::eco_case_with_support(16, 2, 8, 21);
        let baseline = SampleSopLearner::default();
        let theirs = baseline.learn(&mut oracle_b);
        assert!(
            theirs.circuit.gate_count() >= ours.circuit.gate_count(),
            "memorizer {} should not beat ours {}",
            theirs.circuit.gate_count(),
            ours.circuit.gate_count()
        );
    }
}
