//! Support identification (paper §IV-C).
//!
//! For each output, estimate the support `S' ⊆ S` by unconstrained
//! `PatternSampling`: an input with a nonzero dependency count provably
//! belongs to the support; inputs with zero count are *assumed*
//! independent (the black-box setting cannot prove independence).

use cirlearn_logic::Cube;
use cirlearn_oracle::Oracle;
use rand::rngs::StdRng;

use crate::sampling::{pattern_sampling, SampleStats, SamplingConfig};

/// The estimated support of one output.
#[derive(Debug, Clone)]
pub struct SupportInfo {
    /// Input positions with observed dependency, ascending.
    pub support: Vec<usize>,
    /// Dependency count per input position.
    pub dependency: Vec<u64>,
    /// Truth ratio observed during sampling.
    pub truth_ratio: f64,
    /// Oracle queries spent.
    pub queries: u64,
}

impl SupportInfo {
    /// Inputs ordered by descending significance (dependency count).
    pub fn by_significance(&self) -> Vec<usize> {
        let mut s = self.support.clone();
        s.sort_by_key(|&i| std::cmp::Reverse(self.dependency[i]));
        s
    }
}

/// Identifies the approximate support `S'` of `output`.
///
/// This is the paper's §IV-C procedure: unconstrained sampling (empty
/// cube) over all inputs with mixed 0/1 ratios.
pub fn identify_support<O: Oracle + ?Sized>(
    oracle: &mut O,
    output: usize,
    config: &SamplingConfig,
    rng: &mut StdRng,
) -> SupportInfo {
    let probe: Vec<usize> = (0..oracle.num_inputs()).collect();
    let stats: SampleStats = pattern_sampling(oracle, output, &Cube::top(), &probe, config, rng);
    SupportInfo {
        support: stats.support(),
        truth_ratio: stats.truth_ratio,
        queries: stats.queries,
        dependency: stats.dependency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::seeded_rng;
    use cirlearn_aig::Aig;
    use cirlearn_oracle::CircuitOracle;

    #[test]
    fn support_matches_structure() {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 10);
        let t = g.xor(inputs[2], inputs[7]);
        let y = g.or(t, inputs[9]);
        g.add_output(y, "y");
        let mut o = CircuitOracle::new(g);
        let mut rng = seeded_rng(11);
        let info = identify_support(&mut o, 0, &SamplingConfig::fast(), &mut rng);
        assert_eq!(info.support, vec![2, 7, 9]);
        let sig = info.by_significance();
        assert!(sig.contains(&2) && sig.contains(&7) && sig.contains(&9));
        assert!(info.dependency[2] > 0 && info.dependency[9] > 0);
    }

    #[test]
    fn constant_output_has_empty_support() {
        let mut g = Aig::new();
        let _ = g.add_inputs("x", 6);
        g.add_output(cirlearn_aig::Edge::TRUE, "one");
        let mut o = CircuitOracle::new(g);
        let mut rng = seeded_rng(12);
        let info = identify_support(&mut o, 0, &SamplingConfig::fast(), &mut rng);
        assert!(info.support.is_empty());
        assert!((info.truth_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multi_output_supports_are_independent() {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 6);
        let y0 = g.and(inputs[0], inputs[1]);
        let y1 = g.or(inputs[4], inputs[5]);
        g.add_output(y0, "y0");
        g.add_output(y1, "y1");
        let mut o = CircuitOracle::new(g);
        let mut rng = seeded_rng(13);
        let i0 = identify_support(&mut o, 0, &SamplingConfig::fast(), &mut rng);
        let i1 = identify_support(&mut o, 1, &SamplingConfig::fast(), &mut rng);
        assert_eq!(i0.support, vec![0, 1]);
        assert_eq!(i1.support, vec![4, 5]);
    }
}
