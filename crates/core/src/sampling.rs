//! `PatternSampling` (paper Algorithm 1).
//!
//! The procedure takes the black-box generator and a constraining cube
//! `c`, and returns the *dependency count* `D_i` of every input not in
//! `c` plus the `TruthRatio` — the share of 1s among sampled outputs.
//!
//! `D_i` counts sampled assignment pairs `(α_i, α_{¬i})` on which the
//! output flips; `D_i ≠ 0` certifies input `i` is in the support, and
//! `argmax D_i` is the *most significant input* the FBDT splits on.
//!
//! Two implementation notes relative to the paper's pseudo code:
//!
//! * The paper draws fresh assignments for every input; we draw one
//!   base block of `r` assignments and flip each input against it, an
//!   optimization preserving the sampling distribution while cutting
//!   queries from `2r·|R|` to `r·(|R| + 1)`.
//! * The paper observes that uneven 0/1 ratios expose dependencies an
//!   even ratio misses; [`SamplingConfig::ratios`] cycles the blocks
//!   through `{0.5, 0.25, 0.75, 0.1, 0.9}` by default.

use cirlearn_logic::{Assignment, Cube, Var};
use cirlearn_oracle::Oracle;
use rand::rngs::StdRng;

/// Configuration for [`pattern_sampling`].
#[derive(Debug, Clone)]
pub struct SamplingConfig {
    /// Number of base assignments `r` (the paper uses 7200 for support
    /// identification and 60 inside the FBDT).
    pub rounds: usize,
    /// The 1-ratios cycled across base assignments.
    pub ratios: Vec<f64>,
}

impl SamplingConfig {
    /// The paper's support-identification setting (`r = 7200`).
    pub fn support_default() -> Self {
        SamplingConfig {
            rounds: 7200,
            ratios: vec![0.5, 0.25, 0.75, 0.1, 0.9],
        }
    }

    /// The paper's FBDT node setting (`r = 60`).
    pub fn node_default() -> Self {
        SamplingConfig {
            rounds: 60,
            ratios: vec![0.5, 0.25, 0.75],
        }
    }

    /// A reduced-effort setting for tests.
    pub fn fast() -> Self {
        SamplingConfig {
            rounds: 240,
            ratios: vec![0.5, 0.25, 0.75],
        }
    }
}

/// The outcome of one `PatternSampling` call.
#[derive(Debug, Clone)]
pub struct SampleStats {
    /// Dependency count per primary-input position (entries for inputs
    /// constrained by the cube are 0 and must be ignored).
    pub dependency: Vec<u64>,
    /// Proportion of 1s among all sampled output values.
    pub truth_ratio: f64,
    /// Number of oracle queries spent.
    pub queries: u64,
}

impl SampleStats {
    /// The *most significant input*: the free input with the highest
    /// dependency count, or `None` if no dependency was observed.
    pub fn most_significant(&self, free: &[usize]) -> Option<usize> {
        free.iter()
            .copied()
            // panic-ok: callers pass `free ⊆ 0..num_inputs` and
            // `dependency` has exactly `num_inputs` slots.
            .max_by_key(|&i| self.dependency[i])
            // panic-ok: same bound as the `max_by_key` line.
            .filter(|&i| self.dependency[i] > 0)
    }

    /// The approximate support `S' = { i : D_i ≠ 0 }`.
    pub fn support(&self) -> Vec<usize> {
        self.dependency
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d > 0)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Runs `PatternSampling(F, c)` for one output of the oracle.
///
/// Draws `config.rounds` base assignments constrained to satisfy
/// `cube`, then measures `D_i` for every input in `probe` (the paper's
/// `R = I \ C`; the caller restricts it further to the known support
/// inside the FBDT) and the truth ratio of output `output` over all
/// sampled values.
///
/// # Panics
///
/// Panics if `output` is out of range or `probe` contains an input
/// constrained by `cube`.
pub fn pattern_sampling<O: Oracle + ?Sized>(
    oracle: &mut O,
    output: usize,
    cube: &Cube,
    probe: &[usize],
    config: &SamplingConfig,
    rng: &mut StdRng,
) -> SampleStats {
    // panic-ok: entry contract guard, once per sampling call (not per
    // pattern); everything below relies on `output` being in range.
    assert!(output < oracle.num_outputs(), "output index out of range");
    let n = oracle.num_inputs();
    for &i in probe {
        // panic-ok: entry contract guard — bounds every later
        // `dependency[i]` write and `flip` call.
        assert!(i < n, "probe input {i} out of range");
        // panic-ok: entry contract guard, once per probe input.
        assert!(
            !cube.contains_var(Var::new(i as u32)),
            "probe input {i} is fixed by the cube"
        );
    }
    let r = config.rounds.max(1);

    // Base block: r assignments satisfying the cube, with cycling
    // 1-ratios (an empty ratio list falls back to unbiased 0.5).
    let mut base: Vec<Assignment> = Vec::with_capacity(r);
    for k in 0..r {
        let ratio = config
            .ratios
            .get(k % config.ratios.len().max(1))
            .copied()
            .unwrap_or(0.5);
        let mut a = if (ratio - 0.5).abs() < f64::EPSILON {
            Assignment::random(n, rng)
        } else {
            Assignment::random_biased(n, ratio, rng)
        };
        a.constrain(cube);
        base.push(a);
    }
    let base_out = oracle.query_batch(&base);
    // panic-ok: `output` is bounded by the entry guard and oracle rows
    // have `num_outputs` entries by the Oracle contract.
    let mut ones: u64 = base_out.iter().filter(|row| row[output]).count() as u64;
    let mut total: u64 = r as u64;
    let mut queries = r as u64;

    let mut dependency = vec![0u64; n];
    // One reusable flip block: flip the probed input in place, query,
    // then flip it back — no per-probe reallocation of r assignments.
    let mut flipped: Vec<Assignment> = base.clone();
    for &i in probe {
        let var = Var::new(i as u32);
        for f in &mut flipped {
            f.flip(var);
        }
        let flip_out = oracle.query_batch(&flipped);
        for f in &mut flipped {
            f.flip(var);
        }
        queries += r as u64;
        let mut d = 0u64;
        for (b, f) in base_out.iter().zip(&flip_out) {
            // panic-ok: `output` bounded by the entry guard; rows have
            // `num_outputs` entries by the Oracle contract.
            if b[output] != f[output] {
                d += 1;
            }
            // panic-ok: same bound as the comparison above.
            if f[output] {
                ones += 1;
            }
            total += 1;
        }
        // panic-ok: `i < n` checked by the entry guard and
        // `dependency` has exactly `n` slots.
        dependency[i] = d;
    }

    SampleStats {
        dependency,
        truth_ratio: ones as f64 / total as f64,
        queries,
    }
}

/// Draws `count` random assignments satisfying `cube` and returns the
/// output values of output `output` — the leaf-test sampling used by
/// the FBDT when no split candidate remains.
pub fn sample_output<O: Oracle + ?Sized>(
    oracle: &mut O,
    output: usize,
    cube: &Cube,
    count: usize,
    rng: &mut StdRng,
) -> Vec<bool> {
    // panic-ok: entry contract guard, once per leaf test; bounds the
    // `row[output]` projection below.
    assert!(output < oracle.num_outputs(), "output index out of range");
    let n = oracle.num_inputs();
    let patterns: Vec<Assignment> = (0..count)
        .map(|k| {
            let mut a = if k % 3 == 0 {
                Assignment::random(n, rng)
            } else {
                Assignment::random_biased(n, if k % 3 == 1 { 0.25 } else { 0.75 }, rng)
            };
            a.constrain(cube);
            a
        })
        .collect();
    oracle
        .query_batch(&patterns)
        .into_iter()
        // panic-ok: `output` bounded by the entry guard; rows have
        // `num_outputs` entries by the Oracle contract.
        .map(|row| row[output])
        .collect()
}

/// Convenience: a seeded RNG for deterministic experiments.
pub fn seeded_rng(seed: u64) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_aig::Aig;
    use cirlearn_logic::Literal;
    use cirlearn_oracle::CircuitOracle;

    /// y = x0 & x5 over 8 inputs (x1..x4, x6, x7 irrelevant).
    fn and_oracle() -> CircuitOracle {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 8);
        let y = g.and(inputs[0], inputs[5]);
        g.add_output(y, "y");
        CircuitOracle::new(g)
    }

    #[test]
    fn dependency_counts_identify_support() {
        let mut o = and_oracle();
        let mut rng = seeded_rng(1);
        let probe: Vec<usize> = (0..8).collect();
        let stats = pattern_sampling(
            &mut o,
            0,
            &Cube::top(),
            &probe,
            &SamplingConfig::fast(),
            &mut rng,
        );
        assert_eq!(stats.support(), vec![0, 5]);
        assert!(stats.dependency[0] > 0 && stats.dependency[5] > 0);
        assert_eq!(stats.dependency[1], 0);
        let msi = stats.most_significant(&probe).expect("depends on inputs");
        assert!(msi == 0 || msi == 5);
    }

    #[test]
    fn truth_ratio_reflects_function() {
        let mut o = and_oracle();
        let mut rng = seeded_rng(2);
        // Under the cube x0=1, x5=1 the function is constant 1.
        let cube = Cube::from_literals([
            Literal::new(Var::new(0), false),
            Literal::new(Var::new(5), false),
        ])
        .expect("consistent");
        let stats = pattern_sampling(
            &mut o,
            0,
            &cube,
            &[1, 2, 3],
            &SamplingConfig::fast(),
            &mut rng,
        );
        assert!((stats.truth_ratio - 1.0).abs() < 1e-9);
        assert!(stats.support().is_empty());
    }

    #[test]
    fn constrained_sampling_respects_cube() {
        let mut o = and_oracle();
        let mut rng = seeded_rng(3);
        // x0=0 makes the output constant 0.
        let cube = Cube::from_literals([Literal::new(Var::new(0), true)]).expect("ok");
        let stats = pattern_sampling(&mut o, 0, &cube, &[5], &SamplingConfig::fast(), &mut rng);
        assert_eq!(stats.truth_ratio, 0.0);
        assert_eq!(stats.dependency[5], 0);
    }

    #[test]
    #[should_panic(expected = "fixed by the cube")]
    fn probing_fixed_input_panics() {
        let mut o = and_oracle();
        let mut rng = seeded_rng(4);
        let cube = Cube::from_literals([Literal::new(Var::new(0), false)]).expect("ok");
        pattern_sampling(&mut o, 0, &cube, &[0], &SamplingConfig::fast(), &mut rng);
    }

    #[test]
    fn uneven_ratios_find_skewed_dependencies() {
        // y = AND of 12 inputs: under uniform sampling a flip of one
        // input changes the output only when the other 11 are all 1
        // (probability 2^-11); the 0.9-biased block sees it readily.
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 12);
        let y = g.and_many(&inputs);
        g.add_output(y, "y");
        let mut o = CircuitOracle::new(g);
        let mut rng = seeded_rng(5);
        let probe: Vec<usize> = (0..12).collect();
        let cfg = SamplingConfig {
            rounds: 600,
            ratios: vec![0.5, 0.9],
        };
        let stats = pattern_sampling(&mut o, 0, &Cube::top(), &probe, &cfg, &mut rng);
        assert_eq!(stats.support().len(), 12, "all 12 inputs must be found");
    }

    #[test]
    fn sample_output_is_constrained() {
        let mut o = and_oracle();
        let mut rng = seeded_rng(6);
        let cube = Cube::from_literals([
            Literal::new(Var::new(0), false),
            Literal::new(Var::new(5), false),
        ])
        .expect("ok");
        let vals = sample_output(&mut o, 0, &cube, 100, &mut rng);
        assert!(vals.iter().all(|&b| b));
    }

    #[test]
    fn query_accounting_matches_formula() {
        let mut o = and_oracle();
        let mut rng = seeded_rng(7);
        let cfg = SamplingConfig {
            rounds: 50,
            ratios: vec![0.5],
        };
        let stats = pattern_sampling(&mut o, 0, &Cube::top(), &[0, 1, 2], &cfg, &mut rng);
        // r * (|probe| + 1)
        assert_eq!(stats.queries, 50 * 4);
        assert_eq!(o.queries(), 50 * 4);
    }
}
