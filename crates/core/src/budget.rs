//! Wall-clock budgeting.

use std::time::{Duration, Instant};

use cirlearn_telemetry::Telemetry;

/// A wall-clock budget with checkpoints, used to reproduce the paper's
/// anytime behaviour (the contest imposed a hard time limit; the
/// algorithm early-stops tree construction and still emits a circuit).
///
/// An unlimited budget is a real sentinel ([`Budget::limit`] returns
/// `None`), not a huge finite duration, so arithmetic on limits can
/// never overflow and reports can distinguish "plenty left" from
/// "unconstrained".
///
/// # Examples
///
/// ```
/// use cirlearn::Budget;
/// use std::time::Duration;
///
/// let budget = Budget::new(Duration::from_secs(60));
/// assert!(!budget.exhausted());
/// assert!(budget.remaining() <= Duration::from_secs(60));
/// assert!(Budget::unlimited().limit().is_none());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    start: Instant,
    limit: Option<Duration>,
}

impl Budget {
    /// Starts a budget of the given length now.
    pub fn new(limit: Duration) -> Self {
        Budget {
            start: Instant::now(),
            limit: Some(limit),
        }
    }

    /// A budget that never runs out (for tests and unconstrained runs).
    pub fn unlimited() -> Self {
        Budget {
            start: Instant::now(),
            limit: None,
        }
    }

    /// The configured limit; `None` for an unlimited budget.
    pub fn limit(&self) -> Option<Duration> {
        self.limit
    }

    /// Elapsed time since the budget started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Time left, saturating at zero. An unlimited budget reports
    /// [`Duration::MAX`].
    pub fn remaining(&self) -> Duration {
        match self.limit {
            Some(limit) => limit.saturating_sub(self.start.elapsed()),
            None => Duration::MAX,
        }
    }

    /// Time left, or `None` for an unlimited budget — the form budget
    /// checkpoints record.
    pub fn remaining_opt(&self) -> Option<Duration> {
        self.limit
            .map(|limit| limit.saturating_sub(self.start.elapsed()))
    }

    /// Whether the budget has run out (never, when unlimited).
    pub fn exhausted(&self) -> bool {
        match self.limit {
            Some(limit) => self.start.elapsed() >= limit,
            None => false,
        }
    }

    /// Returns a sub-budget capped at `fraction` of the *remaining*
    /// time — how the learner portions tree construction across the
    /// outputs still to be learned. A fraction of an unlimited budget
    /// is unlimited.
    pub fn fraction_of_remaining(&self, fraction: f64) -> Budget {
        match self.limit {
            Some(_) => Budget::new(self.remaining().mul_f64(fraction.clamp(0.0, 1.0))),
            None => Budget::unlimited(),
        }
    }

    /// Records a named checkpoint (elapsed and remaining time) into the
    /// telemetry stream, so stage deadlines show up in run reports.
    pub fn checkpoint(&self, telemetry: &Telemetry, stage: &str) {
        telemetry.checkpoint(stage, self.elapsed(), self.remaining_opt());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_budget_is_exhausted() {
        let b = Budget::new(Duration::ZERO);
        assert!(b.exhausted());
        assert_eq!(b.remaining(), Duration::ZERO);
        assert_eq!(b.remaining_opt(), Some(Duration::ZERO));
    }

    #[test]
    fn unlimited_is_a_sentinel() {
        let b = Budget::unlimited();
        assert!(!b.exhausted());
        assert_eq!(b.limit(), None);
        assert_eq!(b.remaining(), Duration::MAX);
        assert_eq!(b.remaining_opt(), None);
        // Fractions of unlimited stay unlimited rather than becoming a
        // huge finite limit that could overflow downstream arithmetic.
        assert_eq!(b.fraction_of_remaining(0.01).limit(), None);
    }

    #[test]
    fn fraction_is_bounded() {
        let b = Budget::new(Duration::from_secs(10));
        let half = b.fraction_of_remaining(0.5);
        assert!(half.remaining() <= Duration::from_secs(5));
        let clamped = b.fraction_of_remaining(7.0);
        assert!(clamped.remaining() <= Duration::from_secs(10));
    }

    #[test]
    fn elapsed_monotone() {
        let b = Budget::new(Duration::from_secs(1));
        let e1 = b.elapsed();
        let e2 = b.elapsed();
        assert!(e2 >= e1);
    }

    #[test]
    fn checkpoints_record_stage_and_remaining() {
        let t = Telemetry::recording();
        Budget::new(Duration::from_secs(3600)).checkpoint(&t, "support");
        Budget::unlimited().checkpoint(&t, "fbdt");
        let report = t.report();
        assert_eq!(report.checkpoints.len(), 2);
        assert_eq!(report.checkpoints[0].stage, "support");
        assert!(report.checkpoints[0].remaining.is_some());
        assert_eq!(report.checkpoints[1].stage, "fbdt");
        assert_eq!(report.checkpoints[1].remaining, None);
    }
}
