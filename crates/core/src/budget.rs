//! Wall-clock budgeting.

use std::time::{Duration, Instant};

/// A wall-clock budget with checkpoints, used to reproduce the paper's
/// anytime behaviour (the contest imposed a hard time limit; the
/// algorithm early-stops tree construction and still emits a circuit).
///
/// # Examples
///
/// ```
/// use cirlearn::Budget;
/// use std::time::Duration;
///
/// let budget = Budget::new(Duration::from_secs(60));
/// assert!(!budget.exhausted());
/// assert!(budget.remaining() <= Duration::from_secs(60));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    start: Instant,
    limit: Duration,
}

impl Budget {
    /// Starts a budget of the given length now.
    pub fn new(limit: Duration) -> Self {
        Budget {
            start: Instant::now(),
            limit,
        }
    }

    /// A budget that never runs out (for tests and unconstrained runs).
    pub fn unlimited() -> Self {
        Budget::new(Duration::from_secs(u64::MAX / 4))
    }

    /// Elapsed time since the budget started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Time left, saturating at zero.
    pub fn remaining(&self) -> Duration {
        self.limit.saturating_sub(self.start.elapsed())
    }

    /// Whether the budget has run out.
    pub fn exhausted(&self) -> bool {
        self.start.elapsed() >= self.limit
    }

    /// Returns a sub-budget capped at `fraction` of the *remaining*
    /// time — how the learner portions tree construction across the
    /// outputs still to be learned.
    pub fn fraction_of_remaining(&self, fraction: f64) -> Budget {
        let rem = self.remaining();
        Budget::new(rem.mul_f64(fraction.clamp(0.0, 1.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_budget_is_exhausted() {
        let b = Budget::new(Duration::ZERO);
        assert!(b.exhausted());
        assert_eq!(b.remaining(), Duration::ZERO);
    }

    #[test]
    fn unlimited_is_not_exhausted() {
        assert!(!Budget::unlimited().exhausted());
    }

    #[test]
    fn fraction_is_bounded() {
        let b = Budget::new(Duration::from_secs(10));
        let half = b.fraction_of_remaining(0.5);
        assert!(half.remaining() <= Duration::from_secs(5));
        let clamped = b.fraction_of_remaining(7.0);
        assert!(clamped.remaining() <= Duration::from_secs(10));
    }

    #[test]
    fn elapsed_monotone() {
        let b = Budget::new(Duration::from_secs(1));
        let e1 = b.elapsed();
        let e2 = b.elapsed();
        assert!(e2 >= e1);
    }
}
