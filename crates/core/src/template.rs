//! Template matching (paper §IV-B).
//!
//! Two template families (paper Table I):
//!
//! * **Comparator** — `z = N_v̄₁ ⋈ N_v̄₂` or `z = N_v̄₁ ⋈ b` with
//!   `⋈ ∈ {=, ≠, <, ≤, >, ≥}`,
//! * **Linear arithmetic** — `N_z̄ = Σ aᵢ·N_v̄ᵢ + b` (modulo `2^|z̄|`).
//!
//! Matching is purely behavioural: candidate predicates are tested by
//! sampling the black box with *directed* bus values (equal pairs,
//! off-by-one pairs, random pairs) so the six predicates become
//! distinguishable, then validated on independent random assignments.
//! Constants are recovered by binary search on the flip boundary for
//! the ordered predicates and by a (guarded) sweep for equality — the
//! paper's "binary search strategy".

use cirlearn_aig::{Aig, Edge};
use cirlearn_logic::{Assignment, Var};
use cirlearn_oracle::Oracle;
use rand::rngs::StdRng;
use rand::Rng;

use crate::naming::VarGroup;

/// The six comparator predicates of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<` (unsigned)
    Lt,
    /// `≤` (unsigned)
    Le,
    /// `>` (unsigned)
    Gt,
    /// `≥` (unsigned)
    Ge,
}

impl Predicate {
    /// All predicates, in a fixed order.
    pub const ALL: [Predicate; 6] = [
        Predicate::Eq,
        Predicate::Ne,
        Predicate::Lt,
        Predicate::Le,
        Predicate::Gt,
        Predicate::Ge,
    ];

    /// Evaluates the predicate on two unsigned integers.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Predicate::Eq => a == b,
            Predicate::Ne => a != b,
            Predicate::Lt => a < b,
            Predicate::Le => a <= b,
            Predicate::Gt => a > b,
            Predicate::Ge => a >= b,
        }
    }

    /// Builds the comparator subcircuit for two MSB-first words.
    pub fn build(self, aig: &mut Aig, a: &[Edge], b: &[Edge]) -> Edge {
        match self {
            Predicate::Eq => aig.cmp_eq(a, b),
            Predicate::Ne => aig.cmp_ne(a, b),
            Predicate::Lt => aig.cmp_ult(a, b),
            Predicate::Le => aig.cmp_ule(a, b),
            Predicate::Gt => aig.cmp_ugt(a, b),
            Predicate::Ge => aig.cmp_uge(a, b),
        }
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Predicate::Eq => "==",
            Predicate::Ne => "!=",
            Predicate::Lt => "<",
            Predicate::Le => "<=",
            Predicate::Gt => ">",
            Predicate::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// The right-hand side of a matched comparator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rhs {
    /// Another input bus (index into the grouping's group list).
    Group(usize),
    /// A recovered constant.
    Constant(u64),
}

/// A matched comparator template for one output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComparatorMatch {
    /// Output position the template explains.
    pub output: usize,
    /// Index of the left-hand bus in the input grouping.
    pub lhs_group: usize,
    /// Right-hand side: bus or constant.
    pub rhs: Rhs,
    /// The matched predicate.
    pub predicate: Predicate,
}

/// A matched linear-arithmetic template for an output bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearMatch {
    /// The output bus (positions into the oracle's outputs, MSB first).
    pub output_group: VarGroup,
    /// `(coefficient mod 2^width, input group index)` per term.
    pub terms: Vec<(u64, usize)>,
    /// The constant offset `b` (mod `2^width`).
    pub offset: u64,
    /// The modulus width `|z̄|`.
    pub width: usize,
}

/// Configuration for template matching.
#[derive(Debug, Clone)]
pub struct TemplateConfig {
    /// Directed value pairs tested per rest-assignment.
    pub pair_samples: usize,
    /// Independent rest-assignments (values for the non-bus inputs).
    pub rest_samples: usize,
    /// Final validation assignments.
    pub validate_samples: usize,
    /// Maximum bus width for the equality-constant sweep (`2^w` probes).
    pub const_sweep_width: usize,
}

impl Default for TemplateConfig {
    fn default() -> Self {
        TemplateConfig {
            pair_samples: 24,
            rest_samples: 4,
            validate_samples: 512,
            const_sweep_width: 12,
        }
    }
}

/// Reads the integer value of a bus group from an assignment.
fn read_group(a: &Assignment, group: &VarGroup) -> u64 {
    let vars: Vec<Var> = group
        .positions
        .iter()
        .map(|&p| Var::new(p as u32))
        .collect();
    a.read_vector(&vars)
}

/// Writes an integer into a bus group of an assignment.
fn write_group(a: &mut Assignment, group: &VarGroup, value: u64) {
    let vars: Vec<Var> = group
        .positions
        .iter()
        .map(|&p| Var::new(p as u32))
        .collect();
    a.write_vector(&vars, value);
}

fn group_mask(group: &VarGroup) -> u64 {
    if group.width() >= 64 {
        !0
    } else {
        (1u64 << group.width()) - 1
    }
}

/// Tries to match output `output` as a comparator over two input buses.
///
/// Returns the first predicate that survives directed testing under
/// every rest-assignment and final random validation.
pub fn match_comparator_pair<O: Oracle + ?Sized>(
    oracle: &mut O,
    output: usize,
    groups: &[VarGroup],
    config: &TemplateConfig,
    rng: &mut StdRng,
) -> Option<ComparatorMatch> {
    let n = oracle.num_inputs();
    for (li, lhs) in groups.iter().enumerate() {
        for (ri, rhs) in groups.iter().enumerate() {
            if li == ri {
                continue;
            }
            let mut candidates: Vec<Predicate> = Predicate::ALL.to_vec();
            let lmask = group_mask(lhs);
            let rmask = group_mask(rhs);
            'rest: for _ in 0..config.rest_samples {
                let rest = Assignment::random(n, rng);
                let mut patterns = Vec::new();
                let mut values = Vec::new();
                for k in 0..config.pair_samples {
                    let x = rng.gen::<u64>() & lmask & rmask;
                    let (na, nb) = match k % 4 {
                        0 => (x, x),                         // equal
                        1 => (x, x.wrapping_add(1) & rmask), // just above
                        2 => (x.wrapping_add(1) & lmask, x), // just below
                        _ => (rng.gen::<u64>() & lmask, rng.gen::<u64>() & rmask),
                    };
                    let mut a = rest.clone();
                    write_group(&mut a, lhs, na);
                    write_group(&mut a, rhs, nb);
                    patterns.push(a);
                    values.push((na, nb));
                }
                let outs = oracle.query_batch(&patterns);
                for (row, &(na, nb)) in outs.iter().zip(&values) {
                    let z = row[output];
                    candidates.retain(|p| p.eval(na, nb) == z);
                    if candidates.is_empty() {
                        break 'rest;
                    }
                }
            }
            let Some(&predicate) = candidates.first() else {
                continue;
            };
            // Validate on fully random assignments (buses included).
            if validate_comparator(oracle, output, lhs, Some(rhs), 0, predicate, config, rng) {
                return Some(ComparatorMatch {
                    output,
                    lhs_group: li,
                    rhs: Rhs::Group(ri),
                    predicate,
                });
            }
        }
    }
    None
}

/// Tries to match output `output` as a comparison of one bus against a
/// constant, recovering the constant by binary search (ordered
/// predicates) or a guarded sweep (equality predicates).
pub fn match_comparator_const<O: Oracle + ?Sized>(
    oracle: &mut O,
    output: usize,
    groups: &[VarGroup],
    config: &TemplateConfig,
    rng: &mut StdRng,
) -> Option<ComparatorMatch> {
    let n = oracle.num_inputs();
    for (li, lhs) in groups.iter().enumerate() {
        if lhs.width() > 63 {
            continue;
        }
        let max = group_mask(lhs);
        let rest = Assignment::random(n, rng);
        let probe = |oracle: &mut O, value: u64, rest: &Assignment| -> bool {
            let mut a = rest.clone();
            write_group(&mut a, lhs, value);
            oracle.query(&a)[output]
        };
        let f0 = probe(oracle, 0, &rest);
        let fmax = probe(oracle, max, &rest);

        let candidate: Option<(Predicate, u64)> = if f0 != fmax {
            // Monotone boundary: binary search the first flip.
            let (mut lo, mut hi) = (0u64, max);
            // Invariant: f(lo) == f0, f(hi) == fmax != f0.
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if probe(oracle, mid, &rest) == f0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            // Flip between lo and hi = lo + 1.
            if f0 {
                // 1 for small values: z = (N < hi)  (== N ≤ lo).
                Some((Predicate::Lt, hi))
            } else {
                // 0 for small values: z = (N ≥ hi).
                Some((Predicate::Ge, hi))
            }
        } else if lhs.width() <= config.const_sweep_width {
            // Possible equality predicate: sweep all values.
            let patterns: Vec<Assignment> = (0..=max)
                .map(|v| {
                    let mut a = rest.clone();
                    write_group(&mut a, lhs, v);
                    a
                })
                .collect();
            let outs = oracle.query_batch(&patterns);
            let flipped: Vec<u64> = outs
                .iter()
                .enumerate()
                .filter(|(_, row)| row[output] != f0)
                .map(|(v, _)| v as u64)
                .collect();
            match (flipped.as_slice(), f0) {
                ([b], false) => Some((Predicate::Eq, *b)),
                ([b], true) => Some((Predicate::Ne, *b)),
                _ => None,
            }
        } else {
            None
        };

        let Some((predicate, constant)) = candidate else {
            continue;
        };
        if validate_comparator(oracle, output, lhs, None, constant, predicate, config, rng) {
            return Some(ComparatorMatch {
                output,
                lhs_group: li,
                rhs: Rhs::Constant(constant),
                predicate,
            });
        }
    }
    None
}

/// Validates a comparator hypothesis on independent random assignments,
/// including directed equal/off-by-one bus values so the boundary is
/// stressed.
#[allow(clippy::too_many_arguments)]
fn validate_comparator<O: Oracle + ?Sized>(
    oracle: &mut O,
    output: usize,
    lhs: &VarGroup,
    rhs_group: Option<&VarGroup>,
    rhs_const: u64,
    predicate: Predicate,
    config: &TemplateConfig,
    rng: &mut StdRng,
) -> bool {
    let n = oracle.num_inputs();
    let lmask = group_mask(lhs);
    let mut patterns = Vec::with_capacity(config.validate_samples);
    let mut expected = Vec::with_capacity(config.validate_samples);
    for k in 0..config.validate_samples {
        let mut a = Assignment::random(n, rng);
        // Every third sample stresses the boundary region.
        if k % 3 == 0 {
            match rhs_group {
                Some(r) => {
                    let x = rng.gen::<u64>() & lmask & group_mask(r);
                    let delta = rng.gen_range(0..3);
                    write_group(&mut a, lhs, x);
                    write_group(&mut a, r, x.wrapping_add(delta).min(group_mask(r)));
                }
                None => {
                    let delta = rng.gen_range(0..5) as i64 - 2;
                    let v = (rhs_const as i64 + delta).clamp(0, lmask as i64) as u64;
                    write_group(&mut a, lhs, v);
                }
            }
        }
        let na = read_group(&a, lhs);
        let nb = match rhs_group {
            Some(r) => read_group(&a, r),
            None => rhs_const,
        };
        expected.push(predicate.eval(na, nb));
        patterns.push(a);
    }
    let outs = oracle.query_batch(&patterns);
    outs.iter()
        .zip(&expected)
        .all(|(row, &want)| row[output] == want)
}

/// Tries to match an output bus as linear arithmetic over the input
/// buses (paper §IV-B2).
///
/// The offset is read off at the all-zero input; each coefficient by
/// setting a single bus to 1; the hypothesis is then validated on
/// random assignments (scalar inputs randomized too, which also
/// certifies the bus's independence from them).
pub fn match_linear<O: Oracle + ?Sized>(
    oracle: &mut O,
    output_group: &VarGroup,
    input_groups: &[VarGroup],
    config: &TemplateConfig,
    rng: &mut StdRng,
) -> Option<LinearMatch> {
    let n = oracle.num_inputs();
    let width = output_group.width().min(63);
    let modmask = if width >= 64 {
        !0u64
    } else {
        (1u64 << width) - 1
    };
    let read_z = |row: &[bool]| -> u64 {
        output_group
            .positions
            .iter()
            .fold(0u64, |acc, &p| acc << 1 | row[p] as u64)
            & modmask
    };

    // b from the all-zero assignment.
    let zeros = Assignment::zeros(n);
    let offset = read_z(&oracle.query(&zeros));

    // aᵢ from unit probes.
    let mut terms = Vec::new();
    for (gi, group) in input_groups.iter().enumerate() {
        let mut a = Assignment::zeros(n);
        write_group(&mut a, group, 1);
        let coeff = read_z(&oracle.query(&a)).wrapping_sub(offset) & modmask;
        if coeff != 0 {
            terms.push((coeff, gi));
        }
    }

    // Validate the hypothesis on random assignments.
    let mut patterns = Vec::with_capacity(config.validate_samples);
    for _ in 0..config.validate_samples {
        patterns.push(Assignment::random(n, rng));
    }
    let outs = oracle.query_batch(&patterns);
    for (a, row) in patterns.iter().zip(&outs) {
        let mut want = offset;
        for &(coeff, gi) in &terms {
            let v = read_group(a, &input_groups[gi]);
            want = want.wrapping_add(coeff.wrapping_mul(v)) & modmask;
        }
        if read_z(row) != want {
            return None;
        }
    }
    Some(LinearMatch {
        output_group: output_group.clone(),
        terms,
        offset,
        width,
    })
}

impl ComparatorMatch {
    /// Builds the matched comparator in `aig`, whose inputs must be the
    /// oracle's inputs in order.
    pub fn build(&self, aig: &mut Aig, groups: &[VarGroup]) -> Edge {
        let lhs: Vec<Edge> = groups[self.lhs_group]
            .positions
            .iter()
            .map(|&p| aig.input_edge(p))
            .collect();
        let rhs: Vec<Edge> = match &self.rhs {
            Rhs::Group(gi) => groups[*gi]
                .positions
                .iter()
                .map(|&p| aig.input_edge(p))
                .collect(),
            Rhs::Constant(c) => aig.const_word(*c, groups[self.lhs_group].width()),
        };
        self.predicate.build(aig, &lhs, &rhs)
    }
}

impl LinearMatch {
    /// Builds the matched linear arithmetic in `aig`, returning the
    /// output-bus edges MSB first (aligned with
    /// `self.output_group.positions`).
    pub fn build(&self, aig: &mut Aig, groups: &[VarGroup]) -> Vec<Edge> {
        let terms: Vec<(i64, Vec<Edge>)> = self
            .terms
            .iter()
            .map(|&(coeff, gi)| {
                let word: Vec<Edge> = groups[gi]
                    .positions
                    .iter()
                    .map(|&p| aig.input_edge(p))
                    .collect();
                (self.signed_coeff(coeff), word)
            })
            .collect();
        aig.scale_sum(&terms, self.signed_coeff(self.offset), self.width)
    }

    /// Interprets a recovered residue as a signed constant: residues in
    /// the upper half of `2^width` rebuild as their (cheap) negative
    /// equivalent — `-2` costs one subtractor instead of the 25
    /// shift-adds its positive residue would need.
    fn signed_coeff(&self, residue: u64) -> i64 {
        let half = 1u64 << (self.width - 1);
        if self.width < 64 && residue >= half {
            residue as i64 - (1i64 << self.width)
        } else {
            residue as i64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naming::group_names;
    use crate::sampling::seeded_rng;
    use cirlearn_oracle::{generate, CircuitOracle};

    /// Builds a hand-made comparator oracle `z = (a ⋈ b)` over two
    /// 4-bit buses plus two noise inputs.
    fn cmp_oracle(pred: Predicate) -> (CircuitOracle, Vec<VarGroup>) {
        let mut g = Aig::new();
        let a: Vec<Edge> = (0..4)
            .map(|k| g.add_input(format!("a[{}]", 3 - k)))
            .collect();
        let b: Vec<Edge> = (0..4)
            .map(|k| g.add_input(format!("b[{}]", 3 - k)))
            .collect();
        let _n0 = g.add_input("noise0");
        let _n1 = g.add_input("noise1");
        let z = pred.build(&mut g, &a, &b);
        g.add_output(z, "z");
        let oracle = CircuitOracle::new(g);
        let grouping = group_names(oracle.input_names());
        (oracle, grouping.groups)
    }

    #[test]
    fn predicate_eval_table() {
        assert!(Predicate::Eq.eval(3, 3) && !Predicate::Eq.eval(3, 4));
        assert!(Predicate::Ne.eval(3, 4) && !Predicate::Ne.eval(3, 3));
        assert!(Predicate::Lt.eval(2, 3) && !Predicate::Lt.eval(3, 3));
        assert!(Predicate::Le.eval(3, 3) && !Predicate::Le.eval(4, 3));
        assert!(Predicate::Gt.eval(4, 3) && !Predicate::Gt.eval(3, 3));
        assert!(Predicate::Ge.eval(3, 3) && !Predicate::Ge.eval(2, 3));
    }

    #[test]
    fn matches_every_pair_predicate() {
        for (i, pred) in Predicate::ALL.into_iter().enumerate() {
            let (mut oracle, groups) = cmp_oracle(pred);
            let mut rng = seeded_rng(100 + i as u64);
            let m = match_comparator_pair(
                &mut oracle,
                0,
                &groups,
                &TemplateConfig::default(),
                &mut rng,
            )
            .unwrap_or_else(|| panic!("no match for {pred}"));
            // The matched predicate must agree with the oracle
            // everywhere (some predicates coincide under bus swap).
            let mut check_rng = seeded_rng(999);
            assert!(
                validate_comparator(
                    &mut oracle,
                    0,
                    &groups[m.lhs_group],
                    match &m.rhs {
                        Rhs::Group(gi) => Some(&groups[*gi]),
                        Rhs::Constant(_) => None,
                    },
                    0,
                    m.predicate,
                    &TemplateConfig::default(),
                    &mut check_rng,
                ),
                "match for {pred} fails validation"
            );
        }
    }

    #[test]
    fn matched_pair_circuit_is_equivalent() {
        let (mut oracle, groups) = cmp_oracle(Predicate::Le);
        let mut rng = seeded_rng(7);
        let m = match_comparator_pair(
            &mut oracle,
            0,
            &groups,
            &TemplateConfig::default(),
            &mut rng,
        )
        .expect("le matches");
        let mut learned = Aig::new();
        for name in oracle.input_names() {
            learned.add_input(name.clone());
        }
        let z = m.build(&mut learned, &groups);
        learned.add_output(z, "z");
        assert!(
            cirlearn_sat::check_equivalence(oracle.reveal(), &learned).is_equivalent(),
            "matched circuit differs from hidden circuit"
        );
    }

    fn const_oracle(pred: Predicate, constant: u64) -> (CircuitOracle, Vec<VarGroup>) {
        let mut g = Aig::new();
        let a: Vec<Edge> = (0..6)
            .map(|k| g.add_input(format!("v[{}]", 5 - k)))
            .collect();
        let _noise = g.add_input("en");
        let c = g.const_word(constant, 6);
        let z = pred.build(&mut g, &a, &c);
        g.add_output(z, "z");
        let oracle = CircuitOracle::new(g);
        let grouping = group_names(oracle.input_names());
        (oracle, grouping.groups)
    }

    #[test]
    fn recovers_threshold_constants() {
        for (pred, c) in [
            (Predicate::Lt, 23u64),
            (Predicate::Le, 40),
            (Predicate::Gt, 17),
            (Predicate::Ge, 33),
        ] {
            let (mut oracle, groups) = const_oracle(pred, c);
            let mut rng = seeded_rng(c);
            let m = match_comparator_const(
                &mut oracle,
                0,
                &groups,
                &TemplateConfig::default(),
                &mut rng,
            )
            .unwrap_or_else(|| panic!("no const match for {pred} {c}"));
            // Build and check exact equivalence.
            let mut learned = Aig::new();
            for name in oracle.input_names() {
                learned.add_input(name.clone());
            }
            let z = m.build(&mut learned, &groups);
            learned.add_output(z, "z");
            assert!(
                cirlearn_sat::check_equivalence(oracle.reveal(), &learned).is_equivalent(),
                "{pred} {c}: learned constant comparator differs"
            );
        }
    }

    #[test]
    fn recovers_equality_constants_by_sweep() {
        for (pred, c) in [(Predicate::Eq, 45u64), (Predicate::Ne, 9)] {
            let (mut oracle, groups) = const_oracle(pred, c);
            let mut rng = seeded_rng(c + 1);
            let m = match_comparator_const(
                &mut oracle,
                0,
                &groups,
                &TemplateConfig::default(),
                &mut rng,
            )
            .unwrap_or_else(|| panic!("no const match for {pred} {c}"));
            assert_eq!(m.predicate, pred);
            assert_eq!(m.rhs, Rhs::Constant(c));
        }
    }

    #[test]
    fn non_comparator_output_is_rejected() {
        // Parity of the bus is no comparator.
        let mut g = Aig::new();
        let a: Vec<Edge> = (0..4)
            .map(|k| g.add_input(format!("a[{}]", 3 - k)))
            .collect();
        let b: Vec<Edge> = (0..4)
            .map(|k| g.add_input(format!("b[{}]", 3 - k)))
            .collect();
        let mut z = a[0];
        for &e in a[1..].iter().chain(&b) {
            z = g.xor(z, e);
        }
        g.add_output(z, "z");
        let mut oracle = CircuitOracle::new(g);
        let groups = group_names(oracle.input_names()).groups;
        let mut rng = seeded_rng(55);
        assert!(match_comparator_pair(
            &mut oracle,
            0,
            &groups,
            &TemplateConfig::default(),
            &mut rng
        )
        .is_none());
        assert!(match_comparator_const(
            &mut oracle,
            0,
            &groups,
            &TemplateConfig::default(),
            &mut rng
        )
        .is_none());
    }

    #[test]
    fn linear_template_recovers_coefficients() {
        let mut g = Aig::new();
        let a: Vec<Edge> = (0..4)
            .map(|k| g.add_input(format!("a[{}]", 3 - k)))
            .collect();
        let b: Vec<Edge> = (0..4)
            .map(|k| g.add_input(format!("b[{}]", 3 - k)))
            .collect();
        let z = g.scale_sum(&[(3, a), (5, b)], 7, 6);
        for (k, e) in z.iter().enumerate() {
            g.add_output(*e, format!("z[{}]", 5 - k));
        }
        let mut oracle = CircuitOracle::new(g);
        let in_groups = group_names(oracle.input_names()).groups;
        let out_groups = group_names(oracle.output_names()).groups;
        assert_eq!(out_groups.len(), 1);
        let mut rng = seeded_rng(77);
        let m = match_linear(
            &mut oracle,
            &out_groups[0],
            &in_groups,
            &TemplateConfig::default(),
            &mut rng,
        )
        .expect("linear function matches");
        assert_eq!(m.offset, 7);
        assert_eq!(m.width, 6);
        let mut coeffs: Vec<u64> = m.terms.iter().map(|&(c, _)| c).collect();
        coeffs.sort_unstable();
        assert_eq!(coeffs, vec![3, 5]);

        // Rebuild and verify exact equivalence.
        let mut learned = Aig::new();
        for name in oracle.input_names() {
            learned.add_input(name.clone());
        }
        let zs = m.build(&mut learned, &in_groups);
        for (k, e) in zs.iter().enumerate() {
            learned.add_output(*e, format!("z[{}]", 5 - k));
        }
        assert!(cirlearn_sat::check_equivalence(oracle.reveal(), &learned).is_equivalent());
    }

    #[test]
    fn linear_rejects_nonlinear_functions() {
        // z = a * b is not linear.
        let mut g = Aig::new();
        let a: Vec<Edge> = (0..3)
            .map(|k| g.add_input(format!("a[{}]", 2 - k)))
            .collect();
        let b: Vec<Edge> = (0..3)
            .map(|k| g.add_input(format!("b[{}]", 2 - k)))
            .collect();
        // Product via repeated conditional adds: z = sum over bits of b.
        let mut acc = g.const_word(0, 6);
        for (i, &bit) in b.iter().enumerate() {
            let shifted = g.mul_const_word(&a, 1 << (2 - i), 6);
            let gated: Vec<Edge> = shifted.iter().map(|&e| g.and(e, bit)).collect();
            acc = g.add_word(&acc, &gated);
        }
        for (k, e) in acc.iter().enumerate() {
            g.add_output(*e, format!("z[{}]", 5 - k));
        }
        let mut oracle = CircuitOracle::new(g);
        let in_groups = group_names(oracle.input_names()).groups;
        let out_groups = group_names(oracle.output_names()).groups;
        let mut rng = seeded_rng(78);
        assert!(match_linear(
            &mut oracle,
            &out_groups[0],
            &in_groups,
            &TemplateConfig::default(),
            &mut rng,
        )
        .is_none());
    }

    #[test]
    fn matches_generated_data_case() {
        let mut oracle = generate::data_case(12, 6, 3);
        let in_groups = group_names(oracle.input_names()).groups;
        let out_groups = group_names(oracle.output_names()).groups;
        assert!(!out_groups.is_empty());
        let mut rng = seeded_rng(4);
        let m = match_linear(
            &mut oracle,
            &out_groups[0],
            &in_groups,
            &TemplateConfig::default(),
            &mut rng,
        );
        assert!(m.is_some(), "generated DATA case must match the template");
    }
}
