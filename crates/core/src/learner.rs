//! The end-to-end learning pipeline (paper Fig. 1).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cirlearn_aig::{Aig, Edge};
use cirlearn_oracle::{InstrumentedOracle, Oracle};
use cirlearn_synth::{optimize_with, OptimizeConfig};
use cirlearn_telemetry::json::Json;
use cirlearn_telemetry::{counters, Level, OutputReport, Telemetry};
use rand::rngs::StdRng;

use crate::budget::Budget;
use crate::checkpoint::{config_fingerprint, CheckpointError, Cursor, LearnState};
use crate::fbdt::{build_fbdt, learn_exhaustive, FbdtBuilder, FbdtConfig, LearnedCover};
use crate::guard::OracleGuard;
use crate::naming::{group_names, Grouping};
use crate::sampling::{seeded_rng, SamplingConfig};
use crate::support::identify_support;
use crate::template::{
    match_comparator_const, match_comparator_pair, match_linear, TemplateConfig,
};

/// Which algorithm produced an output's circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Matched by the linear-arithmetic template.
    LinearTemplate,
    /// Matched by the comparator template.
    ComparatorTemplate,
    /// Exhaustively enumerated (small support).
    Exhaustive,
    /// Learned by FBDT construction.
    Fbdt,
    /// Learned over a compressed input space after a hidden comparator
    /// was detected and delegated (paper §IV-B1, Fig. 3).
    CompressedFbdt,
    /// Degraded to a baseline constant (majority-vote) circuit because
    /// the oracle died permanently or the budget expired before this
    /// output could be learned.
    Degraded,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::LinearTemplate => "linear",
            Strategy::ComparatorTemplate => "comparator",
            Strategy::Exhaustive => "exhaustive",
            Strategy::Fbdt => "fbdt",
            Strategy::CompressedFbdt => "compressed-fbdt",
            Strategy::Degraded => "degraded",
        };
        f.write_str(s)
    }
}

impl Strategy {
    /// Parses the [`Display`](std::fmt::Display) form back; used by
    /// checkpoint deserialization.
    pub fn parse(s: &str) -> Option<Strategy> {
        Some(match s {
            "linear" => Strategy::LinearTemplate,
            "comparator" => Strategy::ComparatorTemplate,
            "exhaustive" => Strategy::Exhaustive,
            "fbdt" => Strategy::Fbdt,
            "compressed-fbdt" => Strategy::CompressedFbdt,
            "degraded" => Strategy::Degraded,
            _ => return None,
        })
    }
}

/// Summary of oracle faults observed during a [`Learner::learn`] run.
///
/// Transient faults are absorbed inside the oracle stack (see
/// [`ResilientOracle`](cirlearn_oracle::ResilientOracle)); what
/// surfaces here is terminal: the oracle died beyond recovery, and the
/// learner degraded the affected outputs instead of panicking.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Fallback (constant-false) answers served after the oracle died.
    pub fallback_answers: u64,
    /// Outputs degraded to a baseline circuit.
    pub degraded_outputs: u64,
    /// Display form of the terminal oracle error, if one occurred.
    pub oracle_error: Option<String>,
}

impl FaultSummary {
    /// Whether the run saw any terminal fault.
    pub fn any(&self) -> bool {
        self.oracle_error.is_some() || self.degraded_outputs > 0
    }
}

/// Per-output learning statistics.
#[derive(Debug, Clone)]
pub struct OutputStats {
    /// Output position.
    pub output: usize,
    /// Output port name.
    pub name: String,
    /// Winning strategy.
    pub strategy: Strategy,
    /// Size of the estimated support (0 for template matches).
    pub support_size: usize,
    /// Leaves the FBDT had to force on budget exhaustion.
    pub forced_leaves: usize,
    /// Wall clock spent learning this output (zero for template
    /// matches, whose work happens in the shared template stage).
    pub elapsed: Duration,
    /// Oracle queries issued while learning this output (zero for
    /// template matches — their validation queries are attributed to
    /// the shared template stage).
    pub queries: u64,
    /// AND gates in this output's fanin cone before optimization.
    pub gates_before_opt: usize,
    /// AND gates in this output's fanin cone after optimization (equal
    /// to `gates_before_opt` when optimization is disabled).
    pub gates_after_opt: usize,
}

impl OutputStats {
    /// The run-report form of these statistics.
    pub fn to_report(&self) -> OutputReport {
        OutputReport {
            output: self.output as u64,
            name: self.name.clone(),
            strategy: self.strategy.to_string(),
            support: self.support_size as u64,
            forced_leaves: self.forced_leaves as u64,
            queries: self.queries,
            elapsed: self.elapsed,
            gates_before_opt: self.gates_before_opt as u64,
            gates_after_opt: self.gates_after_opt as u64,
        }
    }
}

/// The result of a [`Learner::learn`] run.
///
/// Always a *complete* circuit: one output per oracle output, even when
/// the oracle died or the budget expired mid-run — affected outputs are
/// listed in [`LearnResult::degraded`] and carry
/// [`Strategy::Degraded`] in their stats.
#[derive(Debug, Clone)]
pub struct LearnResult {
    /// The learned circuit, with the oracle's port names.
    pub circuit: Aig,
    /// Per-output statistics, in output order.
    pub outputs: Vec<OutputStats>,
    /// Total wall-clock time spent.
    pub elapsed: Duration,
    /// Total oracle queries spent.
    pub queries: u64,
    /// Positions of outputs degraded to a baseline circuit, in output
    /// order (empty for fault-free runs that finished in budget).
    pub degraded: Vec<usize>,
    /// Terminal-fault summary (all-default for clean runs).
    pub faults: FaultSummary,
}

/// External control of a [`Learner::learn_with`] run: periodic
/// checkpointing, a cooperative stop flag, and a hard deadline.
///
/// The run honors these at *safe points* — before each output and
/// between FBDT node expansions — so a suspension always lands on a
/// state [`Learner::resume`] can continue bit-identically.
#[derive(Debug, Clone)]
pub struct RunControl {
    /// Where to write checkpoints. Written on the
    /// [`checkpoint_interval`](RunControl::checkpoint_interval) cadence
    /// and on suspension; `None` writes nothing (suspension still
    /// returns the state in memory).
    pub checkpoint_path: Option<PathBuf>,
    /// Minimum interval between periodic checkpoint writes.
    pub checkpoint_interval: Duration,
    /// Cooperative stop flag (typically set from a signal handler):
    /// when it reads `true` at a safe point, the run suspends.
    pub stop: Option<Arc<AtomicBool>>,
    /// Cooperative flight-dump flag (typically set from a SIGUSR1
    /// handler): when it reads `true` at a safe point, the flag is
    /// cleared and the flight recorder is dumped — the run continues
    /// undisturbed.
    pub dump: Option<Arc<AtomicBool>>,
    /// Hard deadline on *cumulative* run time across all segments.
    /// Once exceeded, in-flight FBDT construction stops and each
    /// unfinished output is synthesized from its already-collected
    /// cubes (falling back to the majority constant), instead of the
    /// run overshooting or dying.
    pub deadline: Option<Duration>,
    /// Suspend unconditionally once this many safe points have been
    /// passed (`Some(0)` suspends at the first). A deterministic
    /// suspension trigger for tests — wall-clock intervals are not
    /// reproducible, safe-point counts are.
    pub stop_after_safe_points: Option<u64>,
}

impl Default for RunControl {
    fn default() -> Self {
        RunControl {
            checkpoint_path: None,
            checkpoint_interval: Duration::from_secs(30),
            stop: None,
            dump: None,
            deadline: None,
            stop_after_safe_points: None,
        }
    }
}

/// Outcome of a controllable run ([`Learner::learn_with`] /
/// [`Learner::resume`]): completion or suspension at a safe point.
#[derive(Debug)]
pub enum LearnOutcome {
    /// The run finished; the circuit is complete (boxed to keep the
    /// enum small — the result embeds per-output stats).
    Completed(Box<LearnResult>),
    /// A stop was requested; the state continues the run via
    /// [`Learner::resume`] (boxed — it embeds the partial circuit).
    Suspended(Box<LearnState>),
}

impl LearnOutcome {
    /// The completed result.
    ///
    /// # Panics
    ///
    /// Panics if the run was suspended.
    pub fn expect_completed(self) -> LearnResult {
        match self {
            LearnOutcome::Completed(result) => *result,
            LearnOutcome::Suspended(_) => {
                panic!("run was suspended, not completed")
            }
        }
    }

    /// The suspension state, or `None` if the run completed.
    pub fn suspended(self) -> Option<Box<LearnState>> {
        match self {
            LearnOutcome::Completed(_) => None,
            LearnOutcome::Suspended(state) => Some(state),
        }
    }
}

/// Configuration of the full pipeline.
#[derive(Debug, Clone)]
pub struct LearnerConfig {
    /// Master switch for steps 1–2 (name grouping + templates); turned
    /// off for the paper's §V preprocessing ablation.
    pub preprocessing: bool,
    /// Support-identification sampling (paper: r = 7200).
    pub support_sampling: SamplingConfig,
    /// FBDT construction settings.
    pub fbdt: FbdtConfig,
    /// Template matching settings.
    pub template: TemplateConfig,
    /// Total wall-clock budget (the paper ran under 2700 s).
    pub time_budget: Duration,
    /// Optional total query budget: unlike wall-clock time it is
    /// machine-independent, so budgeted runs reproduce exactly.
    pub max_queries: Option<u64>,
    /// Post-optimization settings; `None` skips optimization.
    pub optimize: Option<OptimizeConfig>,
    /// Covers larger than this many cubes skip espresso minimization
    /// (factoring still applies) to bound post-processing time.
    pub espresso_cube_limit: usize,
    /// RNG seed for the whole run.
    pub seed: u64,
}

impl Default for LearnerConfig {
    fn default() -> Self {
        LearnerConfig {
            preprocessing: true,
            support_sampling: SamplingConfig::support_default(),
            fbdt: FbdtConfig::default(),
            template: TemplateConfig::default(),
            time_budget: Duration::from_secs(2700),
            max_queries: None,
            optimize: Some(OptimizeConfig::default()),
            espresso_cube_limit: 256,
            seed: 0x1CCAD,
        }
    }
}

impl LearnerConfig {
    /// A CI-scale configuration: reduced sampling, small budgets.
    pub fn fast() -> Self {
        LearnerConfig {
            preprocessing: true,
            support_sampling: SamplingConfig::fast(),
            fbdt: FbdtConfig::fast(),
            template: TemplateConfig {
                validate_samples: 192,
                ..TemplateConfig::default()
            },
            time_budget: Duration::from_secs(30),
            max_queries: None,
            optimize: Some(OptimizeConfig {
                time_budget: Duration::from_secs(2),
                max_rounds: 1,
                enable_redundancy_removal: false,
                ..OptimizeConfig::default()
            }),
            espresso_cube_limit: 128,
            seed: 0x1CCAD,
        }
    }
}

/// The circuit learner: runs grouping, template matching, support
/// identification, FBDT construction and optimization.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Learner {
    config: LearnerConfig,
    telemetry: Telemetry,
}

impl Learner {
    /// Creates a learner with the given configuration and telemetry
    /// disabled.
    pub fn new(config: LearnerConfig) -> Self {
        Learner {
            config,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Creates a learner that records spans, counters and events into
    /// `telemetry`. Oracle queries are counted at the source and
    /// attributed to the pipeline stage that issued them, so the run
    /// report's top-level stage breakdown of `oracle.queries` sums to
    /// [`LearnResult::queries`].
    pub fn with_telemetry(config: LearnerConfig, telemetry: Telemetry) -> Self {
        Learner { config, telemetry }
    }

    /// Convenience constructor with the paper's default settings.
    pub fn with_defaults() -> Self {
        Learner::new(LearnerConfig::default())
    }

    /// Returns the configuration.
    pub fn config(&self) -> &LearnerConfig {
        &self.config
    }

    /// Returns the telemetry handle (disabled unless constructed with
    /// [`Learner::with_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Learns a circuit for the black box.
    ///
    /// Always returns a complete circuit with one output per oracle
    /// output; on budget exhaustion the remaining outputs degrade to
    /// majority-vote approximations (the paper's early-stop behaviour)
    /// rather than being dropped.
    ///
    /// Queries flow through the oracle's *fallible* path
    /// ([`Oracle::try_query`]). If the oracle dies beyond recovery the
    /// learner does not panic: outputs whose learning overlapped the
    /// failure degrade to a baseline constant circuit, the rest keep
    /// whatever was validly learned before the fault, and
    /// [`LearnResult::degraded`] / [`LearnResult::faults`] record what
    /// happened.
    pub fn learn<O: Oracle + ?Sized>(&mut self, oracle: &mut O) -> LearnResult {
        match self.run(oracle, &RunControl::default(), None) {
            LearnOutcome::Completed(result) => *result,
            LearnOutcome::Suspended(_) => {
                unreachable!("default RunControl has no stop source; the run cannot suspend")
            }
        }
    }

    /// Learns under external run control: periodic checkpoints, a
    /// cooperative stop flag, and a hard deadline (see [`RunControl`]).
    ///
    /// Returns [`LearnOutcome::Suspended`] when a stop was requested at
    /// a safe point; pass the state to [`Learner::resume`] to continue
    /// the run bit-identically. Without a stop source this behaves
    /// exactly like [`Learner::learn`].
    pub fn learn_with<O: Oracle + ?Sized>(
        &mut self,
        oracle: &mut O,
        ctl: &RunControl,
    ) -> LearnOutcome {
        self.run(oracle, ctl, None)
    }

    /// Resumes a suspended run from checkpoint state.
    ///
    /// The continuation is bit-identical to the uninterrupted run (for
    /// machine-independent budgets — wall-clock budgets portion time by
    /// whatever remains at resume): the RNG continues from its
    /// checkpointed words, the partial circuit is rebuilt node-id
    /// identical from its embedded AIGER, and the oracle stack's own
    /// state (fault schedules, retry-jitter positions) is restored via
    /// [`Oracle::restore_state`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Mismatch`] when the state does not
    /// belong to this run: different configuration fingerprint,
    /// different oracle port names, an embedded circuit that fails to
    /// parse, edge codes pointing outside that circuit, or an oracle
    /// stack that rejects its nested state. Nothing is learned and the
    /// oracle is not queried in that case.
    pub fn resume<O: Oracle + ?Sized>(
        &mut self,
        state: LearnState,
        oracle: &mut O,
        ctl: &RunControl,
    ) -> Result<LearnOutcome, CheckpointError> {
        let restored = self.validate(state, oracle)?;
        Ok(self.run(oracle, ctl, Some(restored)))
    }

    /// Converts checkpoint state into live run state, performing every
    /// fallible check up front so `run` itself is infallible.
    fn validate<O: Oracle + ?Sized>(
        &self,
        state: LearnState,
        oracle: &mut O,
    ) -> Result<Restored, CheckpointError> {
        let fp = config_fingerprint(&self.config);
        if fp != state.config_fingerprint {
            return Err(CheckpointError::Mismatch(format!(
                "config fingerprint {fp:016x} differs from the checkpoint's {:016x} \
                 (the configuration must not change between segments)",
                state.config_fingerprint
            )));
        }
        if oracle.input_names() != state.input_names.as_slice()
            || oracle.output_names() != state.output_names.as_slice()
        {
            return Err(CheckpointError::Mismatch(
                "oracle port names differ from the checkpointed run".into(),
            ));
        }
        let circuit = Aig::from_aiger_ascii(&state.circuit_aiger)
            .map_err(|e| CheckpointError::Mismatch(format!("embedded circuit: {e}")))?;
        if circuit.num_inputs() != oracle.num_inputs() {
            return Err(CheckpointError::Mismatch(format!(
                "embedded circuit has {} inputs, oracle has {}",
                circuit.num_inputs(),
                oracle.num_inputs()
            )));
        }
        let num_outputs = oracle.num_outputs();
        let max_node = circuit.num_inputs() + circuit.and_count();
        let mut edges: Vec<Option<Edge>> = Vec::with_capacity(num_outputs);
        for code in &state.edges {
            edges.push(match code {
                Some(c) => {
                    let e = Edge::from_code(*c);
                    if e.node().index() > max_node {
                        return Err(CheckpointError::Mismatch(format!(
                            "edge code {c} points outside the embedded circuit"
                        )));
                    }
                    Some(e)
                }
                None => None,
            });
        }
        let fbdt = match state.cursor {
            Cursor::NextOutput => None,
            Cursor::Fbdt {
                snapshot,
                max_queries,
                partial_elapsed,
                partial_queries,
            } => {
                if snapshot.output >= num_outputs {
                    return Err(CheckpointError::Mismatch(format!(
                        "in-flight output {} out of range ({num_outputs} outputs)",
                        snapshot.output
                    )));
                }
                if edges[snapshot.output].is_some() {
                    return Err(CheckpointError::Mismatch(format!(
                        "in-flight output {} already has a learned edge",
                        snapshot.output
                    )));
                }
                if let Some(&p) = snapshot
                    .support
                    .iter()
                    .find(|&&p| p >= circuit.num_inputs())
                {
                    return Err(CheckpointError::Mismatch(format!(
                        "in-flight support position {p} out of range"
                    )));
                }
                let mut fbdt_cfg = self.config.fbdt.clone();
                fbdt_cfg.max_queries = max_queries;
                Some(FbdtResume {
                    builder: FbdtBuilder::restore(snapshot, &fbdt_cfg),
                    max_queries,
                    partial_elapsed,
                    partial_queries,
                })
            }
        };
        if let Some(oracle_state) = &state.oracle {
            oracle
                .restore_state(oracle_state)
                .map_err(|e| CheckpointError::Mismatch(e.to_string()))?;
        }
        Ok(Restored {
            circuit,
            rng: StdRng::from_state(state.rng),
            progress: Progress {
                edges,
                strategies: state.strategies,
                support_sizes: state.support_sizes,
                forced: state.forced,
                out_elapsed: state.out_elapsed,
                out_queries: state.out_queries,
                truth_bias: state.truth_bias,
            },
            queries_used: state.queries_used,
            elapsed_before: state.elapsed_before,
            fbdt,
        })
    }

    /// The run engine behind [`Learner::learn`], [`Learner::learn_with`]
    /// and [`Learner::resume`]: infallible, with all resume validation
    /// already done by [`Learner::validate`].
    fn run<O: Oracle + ?Sized>(
        &mut self,
        oracle: &mut O,
        ctl: &RunControl,
        restored: Option<Restored>,
    ) -> LearnOutcome {
        let telemetry = self.telemetry.clone();
        // Count queries at the source: every query the pipeline issues
        // from here on lands on the `oracle.queries` counter and is
        // attributed to the stage span active when it was served.
        // The guard outside routes them through the fallible path and
        // latches the first terminal failure for per-output isolation,
        // dumping the flight recorder at the moment of the fault.
        let mut oracle = OracleGuard::with_telemetry(
            InstrumentedOracle::new(oracle, telemetry.clone()),
            telemetry.clone(),
        );
        let resuming = restored.is_some();
        let num_outputs = oracle.num_outputs();
        let input_names: Vec<String> = oracle.input_names().to_vec();
        let output_names: Vec<String> = oracle.output_names().to_vec();

        let (mut circuit, mut rng, mut progress, queries_used, elapsed_before, mut fbdt_resume) =
            match restored {
                Some(r) => (
                    r.circuit,
                    r.rng,
                    r.progress,
                    r.queries_used,
                    r.elapsed_before,
                    r.fbdt,
                ),
                None => {
                    let mut circuit = Aig::new();
                    for name in &input_names {
                        circuit.add_input(name.clone());
                    }
                    (
                        circuit,
                        seeded_rng(self.config.seed),
                        Progress::fresh(num_outputs),
                        0,
                        Duration::ZERO,
                        None,
                    )
                }
            };
        // The budget covers the whole run, not this segment: time spent
        // in prior segments is already gone.
        let budget = Budget::new(self.config.time_budget.saturating_sub(elapsed_before));
        let start_queries = oracle.queries();

        if resuming {
            telemetry.incr(counters::CKPT_RESUMES);
            let done = progress.edges.iter().filter(|e| e.is_some()).count();
            telemetry.trace(
                "resume",
                &[
                    ("outputs_done", Json::from(done)),
                    ("queries_used", Json::from(queries_used)),
                    (
                        "elapsed_before_us",
                        Json::from(u64::try_from(elapsed_before.as_micros()).unwrap_or(u64::MAX)),
                    ),
                ],
            );
            telemetry.event(
                Level::Info,
                &format!(
                    "resumed: {done}/{num_outputs} outputs learned, {queries_used} queries \
                     and {elapsed_before:.1?} spent in prior segments"
                ),
            );
        }

        // Steps 1–2: name based grouping + template matching. Grouping
        // is recomputed on resume (it is a pure function of the port
        // names), but the template stage ran to completion in the first
        // segment — it is atomic, never suspended into a checkpoint —
        // so a resumed run skips it.
        let in_grouping = self.config.preprocessing.then(|| group_names(&input_names));
        if !resuming {
            if let Some(grouping) = &in_grouping {
                telemetry.event(
                    Level::Info,
                    &format!(
                        "grouping: {} buses, {} scalars",
                        grouping.groups.len(),
                        grouping.scalars.len()
                    ),
                );
                for g in &grouping.groups {
                    telemetry.event(Level::Debug, &format!("bus {} width {}", g.stem, g.width()));
                }
                let out_grouping = group_names(&output_names);
                let _span = telemetry.span("templates");
                self.match_templates(
                    &mut oracle,
                    grouping,
                    &out_grouping,
                    &mut circuit,
                    &mut progress.edges,
                    &mut progress.strategies,
                    &mut rng,
                );
            }
            budget.checkpoint(&telemetry, "templates");
            if oracle.failed() {
                // The fault hit during the shared template stage: any match
                // may have validated against fallback answers, so none can
                // be trusted. Discard them all; every output degrades.
                telemetry.event(
                    Level::Warn,
                    "oracle failed during template matching; discarding template matches",
                );
                progress.edges.fill(None);
                progress.strategies.fill(None);
            }
        }

        // Steps 3–4 for the remaining outputs. On resume the set is
        // recomputed from the learned edges; an in-flight FBDT output
        // goes first (it was first among the unfinished outputs when it
        // suspended, so the budget-share arithmetic is unchanged).
        let mut remaining: Vec<usize> = (0..num_outputs)
            .filter(|&o| progress.edges[o].is_none())
            .collect();
        if let Some(f) = &fbdt_resume {
            let o = f.builder.output();
            remaining.retain(|&x| x != o);
            remaining.insert(0, o);
        }
        if !resuming {
            telemetry.event(
                Level::Info,
                &format!(
                    "templates matched {} of {} outputs",
                    num_outputs - remaining.len(),
                    num_outputs
                ),
            );
        }

        telemetry.set_progress(
            progress.edges.iter().filter(|e| e.is_some()).count() as u64,
            num_outputs as u64,
        );

        let stop_flag = ctl.stop.clone();
        let stop_requested = move || {
            stop_flag
                .as_ref()
                .is_some_and(|s| s.load(Ordering::Relaxed))
        };
        let dump_flag = ctl.dump.clone();
        let dump_requested = move || {
            // Swap, not load: the flag is an edge trigger — each
            // SIGUSR1 produces exactly one dump at the next safe point.
            // relaxed-ok: the flag is a standalone edge trigger; no
            // other memory is published through it, and the swap's
            // read-modify-write atomicity alone guarantees one dump
            // per signal.
            dump_flag
                .as_ref()
                .is_some_and(|d| d.swap(false, Ordering::Relaxed))
        };
        let deadline_hit = |budget: &Budget| {
            ctl.deadline
                .is_some_and(|d| elapsed_before + budget.elapsed() >= d)
        };
        let mut deadline_dumped = false;
        let mut safe_points: u64 = 0;
        let mut last_ckpt = Instant::now();
        let mut suspended: Option<Box<LearnState>> = None;
        // Outputs whose FBDT the deadline cut short: they keep their
        // partial-cube circuit but are reported as degraded.
        let mut deadline_partials: Vec<usize> = Vec::new();

        'outputs: for (k, &o) in remaining.iter().enumerate() {
            // Safe point: output boundary.
            if dump_requested() {
                telemetry.dump_flight("signal");
            }
            let reached = safe_points;
            safe_points += 1;
            let want_stop =
                stop_requested() || ctl.stop_after_safe_points.is_some_and(|cap| reached >= cap);
            let cadence_due =
                ctl.checkpoint_path.is_some() && last_ckpt.elapsed() >= ctl.checkpoint_interval;
            if want_stop || cadence_due {
                let state = progress.to_state(
                    &self.config,
                    &rng,
                    &circuit,
                    &input_names,
                    &output_names,
                    queries_used + (oracle.queries() - start_queries),
                    elapsed_before + budget.elapsed(),
                    Cursor::NextOutput,
                    oracle.checkpoint_state(),
                );
                if let Some(path) = &ctl.checkpoint_path {
                    write_checkpoint(&telemetry, path, &state);
                    last_ckpt = Instant::now();
                }
                if want_stop {
                    suspended = Some(Box::new(state));
                    break 'outputs;
                }
            }
            if oracle.failed() || budget.exhausted() {
                // Per-output isolation: a dead oracle answers constant
                // fallbacks instantly, but learning from them would
                // only launder junk into the circuit — and past the
                // budget there is no time left to sample honestly.
                // Leave the edge empty; it degrades to a baseline
                // constant below.
                continue;
            }
            let has_resumed_tree = fbdt_resume
                .as_ref()
                .is_some_and(|f| f.builder.output() == o);
            if deadline_hit(&budget) && !has_resumed_tree {
                if !deadline_dumped {
                    deadline_dumped = true;
                    telemetry.dump_flight("deadline");
                }
                // Degradation ladder, bottom rung: outputs not yet
                // started get the majority constant below. An in-flight
                // resumed tree still enters its arm so the cubes it
                // already collected are synthesized, not discarded.
                continue;
            }
            let out_start = Instant::now();
            let queries_before = oracle.queries();
            // Everything from here to the end of the iteration is this
            // output's work: tag queries and gate builds with it.
            let _out_scope = telemetry.output_scope(o);

            let resumed_tree = match &fbdt_resume {
                Some(f) if f.builder.output() == o => fbdt_resume.take(),
                _ => None,
            };
            let (partial_elapsed, partial_queries) =
                resumed_tree.as_ref().map_or((Duration::ZERO, 0), |f| {
                    (f.partial_elapsed, f.partial_queries)
                });

            // Pick the arm: a resumed tree continues directly; fresh
            // outputs go through support identification first.
            let arm = if let Some(resume) = resumed_tree {
                let share = 1.0 / (remaining.len() - k) as f64;
                Arm::Tree {
                    builder: Box::new(resume.builder),
                    node_budget: budget.fraction_of_remaining(share),
                    cap: resume.max_queries,
                }
            } else {
                let info = {
                    let _span = telemetry.span("support");
                    identify_support(&mut oracle, o, &self.config.support_sampling, &mut rng)
                };
                progress.support_sizes[o] = info.support.len();
                progress.truth_bias[o] = Some(info.truth_ratio);
                telemetry.event(
                    Level::Debug,
                    &format!(
                        "output {o} ({}): support {} truth_ratio {:.3}",
                        output_names[o],
                        info.support.len(),
                        info.truth_ratio
                    ),
                );
                let share = 1.0 / (remaining.len() - k) as f64;
                let node_budget = budget.fraction_of_remaining(share);
                if info.support.len() <= self.config.fbdt.exhaustive_threshold {
                    progress.strategies[o] = Some(Strategy::Exhaustive);
                    let _span = telemetry.span("exhaustive");
                    let (cover, _) = learn_exhaustive(&mut oracle, o, &info.support, &mut rng);
                    let var_map = identity_var_map(&circuit);
                    Arm::Edge(self.cover_to_edge(&cover, &mut circuit, &var_map))
                } else if let Some(edge) = {
                    let _span = telemetry.span("compressed");
                    self.try_compressed(
                        &mut oracle,
                        o,
                        in_grouping.as_ref(),
                        &info.support,
                        &node_budget,
                        &mut circuit,
                        &mut rng,
                    )
                } {
                    progress.strategies[o] = Some(Strategy::CompressedFbdt);
                    Arm::Edge(edge)
                } else {
                    progress.strategies[o] = Some(Strategy::Fbdt);
                    // Portion any query budget over the outputs still to
                    // do — counting queries spent in prior segments.
                    let mut fbdt_cfg = self.config.fbdt.clone();
                    if let Some(total) = self.config.max_queries {
                        let used = queries_used + (oracle.queries() - start_queries);
                        let left = total.saturating_sub(used);
                        fbdt_cfg.max_queries = Some(left / (remaining.len() - k) as u64);
                    }
                    Arm::Tree {
                        cap: fbdt_cfg.max_queries,
                        builder: Box::new(FbdtBuilder::new(
                            o,
                            &info.support,
                            info.truth_ratio,
                            &fbdt_cfg,
                        )),
                        node_budget,
                    }
                }
            };

            let edge = match arm {
                Arm::Edge(edge) => edge,
                Arm::Tree {
                    mut builder,
                    node_budget,
                    cap,
                } => {
                    let _span = telemetry.span("fbdt");
                    let mut cut_short = false;
                    loop {
                        // Safe point: between node expansions.
                        if dump_requested() {
                            telemetry.dump_flight("signal");
                        }
                        let reached = safe_points;
                        safe_points += 1;
                        let want_stop = stop_requested()
                            || ctl.stop_after_safe_points.is_some_and(|cap| reached >= cap);
                        let cadence_due = ctl.checkpoint_path.is_some()
                            && last_ckpt.elapsed() >= ctl.checkpoint_interval;
                        if want_stop || cadence_due {
                            let state = progress.to_state(
                                &self.config,
                                &rng,
                                &circuit,
                                &input_names,
                                &output_names,
                                queries_used + (oracle.queries() - start_queries),
                                elapsed_before + budget.elapsed(),
                                Cursor::Fbdt {
                                    snapshot: builder.snapshot(),
                                    max_queries: cap,
                                    partial_elapsed: partial_elapsed + out_start.elapsed(),
                                    partial_queries: partial_queries
                                        + (oracle.queries() - queries_before),
                                },
                                oracle.checkpoint_state(),
                            );
                            if let Some(path) = &ctl.checkpoint_path {
                                write_checkpoint(&telemetry, path, &state);
                                last_ckpt = Instant::now();
                            }
                            if want_stop {
                                telemetry.set_fbdt_depth(None);
                                suspended = Some(Box::new(state));
                                break 'outputs;
                            }
                        }
                        if deadline_hit(&budget) {
                            if !deadline_dumped {
                                deadline_dumped = true;
                                telemetry.dump_flight("deadline");
                            }
                            builder.finish_now();
                            cut_short = true;
                            break;
                        }
                        if !builder.step(&mut oracle, &node_budget, &mut rng, &telemetry) {
                            break;
                        }
                    }
                    telemetry.set_fbdt_depth(None);
                    let (cover, stats) = builder.finish();
                    stats.record(&telemetry);
                    if cut_short {
                        telemetry.incr(counters::CKPT_DEADLINE_PARTIAL_OUTPUTS);
                        deadline_partials.push(o);
                        telemetry.event(
                            Level::Warn,
                            &format!(
                                "output {o} ({}): deadline hit, synthesized from {} collected cubes",
                                output_names[o],
                                cover.sop.cubes().len()
                            ),
                        );
                    } else if stats.forced_leaves > 0 {
                        telemetry.event(
                            Level::Warn,
                            &format!(
                                "output {o}: budget forced {} leaves to majority votes",
                                stats.forced_leaves
                            ),
                        );
                    }
                    progress.forced[o] = stats.forced_leaves;
                    let var_map = identity_var_map(&circuit);
                    self.cover_to_edge(&cover, &mut circuit, &var_map)
                }
            };
            if oracle.failed() {
                // The fault hit mid-output: the learned cover mixes
                // real and fallback answers and cannot be trusted.
                progress.strategies[o] = None;
            } else {
                progress.edges[o] = Some(edge);
            }
            progress.out_elapsed[o] = partial_elapsed + out_start.elapsed();
            progress.out_queries[o] = partial_queries + (oracle.queries() - queries_before);
            // `and_count`, not `gate_count`: outputs are not attached
            // until after the loop, so reachability-based counts would
            // read zero here.
            telemetry.set_aig_nodes(circuit.and_count() as u64);
            telemetry.set_progress(
                progress.edges.iter().filter(|e| e.is_some()).count() as u64,
                num_outputs as u64,
            );
        }
        if let Some(state) = suspended {
            // The ring holds the run's last moments; a suspension is
            // exactly when a post-mortem wants them on disk.
            telemetry.dump_flight("suspend");
            return LearnOutcome::Suspended(state);
        }
        budget.checkpoint(&telemetry, "learning");

        // Graceful degradation: any output still without an edge (the
        // oracle died, the budget or deadline expired, or its learned
        // cover was discarded above) falls back to the majority-vote
        // constant — the same baseline a budget-forced FBDT leaf uses —
        // so the result is always a complete, valid circuit.
        let mut degraded: Vec<usize> = Vec::new();
        for (o, name) in output_names.iter().enumerate() {
            if progress.edges[o].is_none() {
                let majority = progress.truth_bias[o].is_some_and(|r| r >= 0.5);
                progress.edges[o] = Some(if majority { Edge::TRUE } else { Edge::FALSE });
                progress.strategies[o] = Some(Strategy::Degraded);
                degraded.push(o);
                telemetry.incr(counters::FAULT_DEGRADED_OUTPUTS);
                telemetry.event(
                    Level::Warn,
                    &format!("output {o} ({name}) degraded to constant {majority}"),
                );
            }
        }
        // Deadline-cut outputs keep their partial-cube circuits but are
        // reported as degraded: their accuracy was not driven to the
        // leaf tolerance.
        degraded.extend(deadline_partials);
        degraded.sort_unstable();
        // Every output now has an edge (learned or degraded).
        telemetry.set_progress(num_outputs as u64, num_outputs as u64);

        for (o, name) in output_names.iter().enumerate() {
            circuit.add_output(progress.edges[o].unwrap_or(Edge::FALSE), name.clone());
        }
        let mut circuit = circuit.cleanup();
        let gates_before_opt: Vec<usize> = (0..num_outputs)
            .map(|o| circuit.output_cone_size(o))
            .collect();

        // Step 5: circuit optimization — skipped past the deadline (the
        // degradation ladder trades gates for finishing at all).
        if deadline_hit(&budget) {
            if self.config.optimize.is_some() {
                telemetry.event(Level::Warn, "deadline exceeded: skipping optimization");
            }
        } else if let Some(opt_cfg) = &self.config.optimize {
            let _span = telemetry.span("optimize");
            let before = circuit.gate_count();
            let mut cfg = opt_cfg.clone();
            cfg.time_budget = cfg.time_budget.min(budget.remaining());
            circuit = optimize_with(&circuit, &cfg, &telemetry);
            telemetry.event(
                Level::Info,
                &format!(
                    "optimization: {before} -> {} AND nodes",
                    circuit.gate_count()
                ),
            );
        }
        budget.checkpoint(&telemetry, "optimize");
        telemetry.set_aig_nodes(circuit.gate_count() as u64);
        telemetry.emit_metrics_snapshot();

        let outputs: Vec<OutputStats> = (0..num_outputs)
            .map(|o| OutputStats {
                output: o,
                name: output_names[o].clone(),
                strategy: progress.strategies[o].unwrap_or(Strategy::Degraded),
                support_size: progress.support_sizes[o],
                forced_leaves: progress.forced[o],
                elapsed: progress.out_elapsed[o],
                queries: progress.out_queries[o],
                gates_before_opt: gates_before_opt[o],
                gates_after_opt: circuit.output_cone_size(o),
            })
            .collect();
        telemetry.set_outputs(outputs.iter().map(OutputStats::to_report).collect());
        if let Some(e) = oracle.failure() {
            telemetry.event(
                Level::Error,
                &format!(
                    "oracle died beyond recovery ({e}); {} of {num_outputs} outputs degraded",
                    degraded.len()
                ),
            );
        }
        let faults = FaultSummary {
            fallback_answers: oracle.fallback_answers(),
            degraded_outputs: degraded.len() as u64,
            oracle_error: oracle.failure().map(|e| e.to_string()),
        };
        LearnOutcome::Completed(Box::new(LearnResult {
            circuit,
            outputs,
            elapsed: elapsed_before + budget.elapsed(),
            queries: queries_used + (oracle.queries() - start_queries),
            degraded,
            faults,
        }))
    }

    /// Runs template matching (step 2), filling in edges for every
    /// output a template explains.
    #[allow(clippy::too_many_arguments)]
    fn match_templates<O: Oracle + ?Sized>(
        &self,
        oracle: &mut O,
        in_grouping: &Grouping,
        out_grouping: &Grouping,
        circuit: &mut Aig,
        edges: &mut [Option<Edge>],
        strategies: &mut [Option<Strategy>],
        rng: &mut rand::rngs::StdRng,
    ) {
        if in_grouping.groups.is_empty() {
            return;
        }
        // For linear matching, scalar inputs participate as singleton
        // pseudo-buses: a lone wire can still carry a coefficient.
        let mut linear_groups = in_grouping.groups.clone();
        for &pos in &in_grouping.scalars {
            linear_groups.push(crate::naming::VarGroup {
                stem: oracle.input_names()[pos].clone(),
                positions: vec![pos],
                bits: vec![0],
            });
        }
        // Linear arithmetic over output buses first: one match explains
        // a whole bus of outputs.
        for out_group in &out_grouping.groups {
            if out_group.width() < 2 {
                continue;
            }
            if let Some(m) = match_linear(
                oracle,
                out_group,
                &linear_groups,
                &self.config.template,
                rng,
            ) {
                let gates_at = circuit.and_count();
                let words = m.build(circuit, &linear_groups);
                self.telemetry
                    .attribute_gates(circuit.and_count().saturating_sub(gates_at) as u64);
                for (edge, &pos) in words.iter().zip(&m.output_group.positions) {
                    edges[pos] = Some(*edge);
                    strategies[pos] = Some(Strategy::LinearTemplate);
                }
            }
        }
        // Comparators for the remaining single outputs.
        for o in 0..edges.len() {
            if edges[o].is_some() {
                continue;
            }
            let matched =
                match_comparator_pair(oracle, o, &in_grouping.groups, &self.config.template, rng)
                    .or_else(|| {
                        match_comparator_const(
                            oracle,
                            o,
                            &in_grouping.groups,
                            &self.config.template,
                            rng,
                        )
                    });
            if let Some(m) = matched {
                let gates_at = circuit.and_count();
                let edge = m.build(circuit, &in_grouping.groups);
                self.telemetry
                    .attribute_gates(circuit.and_count().saturating_sub(gates_at) as u64);
                edges[o] = Some(edge);
                strategies[o] = Some(Strategy::ComparatorTemplate);
            }
        }
    }

    /// Attempts the paper's §IV-B1 input compression: if a hidden
    /// comparator is detected for this output, learn the output over
    /// the compressed input space (delegate bit instead of the bus
    /// bits) and build the composition `F'(kept, O_s)` with the
    /// comparator subcircuit feeding the delegate variable.
    #[allow(clippy::too_many_arguments)]
    fn try_compressed<O: Oracle + ?Sized>(
        &self,
        oracle: &mut O,
        output: usize,
        in_grouping: Option<&Grouping>,
        support: &[usize],
        node_budget: &Budget,
        circuit: &mut Aig,
        rng: &mut rand::rngs::StdRng,
    ) -> Option<Edge> {
        let grouping = in_grouping?;
        // Only worth probing when some bus lies (mostly) inside the
        // estimated support.
        let candidate_groups: Vec<crate::naming::VarGroup> = grouping
            .groups
            .iter()
            .filter(|g| {
                let inside = g.positions.iter().filter(|p| support.contains(p)).count();
                inside * 10 >= g.width() * 7
            })
            .cloned()
            .collect();
        if candidate_groups.len() < 2 {
            return None;
        }
        let delegate = crate::compress::find_hidden_comparator(
            oracle,
            output,
            &candidate_groups,
            &self.config.template,
            rng,
        )?;

        // Build the comparator subcircuit (the delegate's function).
        let lhs: Vec<Edge> = delegate
            .lhs_positions
            .iter()
            .map(|&p| circuit.input_edge(p))
            .collect();
        let rhs: Vec<Edge> = match &delegate.rhs_positions {
            Some(r) => r.iter().map(|&p| circuit.input_edge(p)).collect(),
            None => circuit.const_word(delegate.constant, lhs.len()),
        };
        let gates_at = circuit.and_count();
        let os_edge = delegate.predicate.build(circuit, &lhs, &rhs);
        self.telemetry
            .attribute_gates(circuit.and_count().saturating_sub(gates_at) as u64);

        // Learn the output over the compressed space.
        let mut compressed = crate::compress::DelegateOracle::new(oracle, vec![delegate]);
        let info = identify_support(&mut compressed, output, &self.config.support_sampling, rng);
        let cover = if info.support.len() <= self.config.fbdt.exhaustive_threshold {
            let (cover, _) = learn_exhaustive(&mut compressed, output, &info.support, rng);
            cover
        } else {
            let (cover, stats) = build_fbdt(
                &mut compressed,
                output,
                &info.support,
                info.truth_ratio,
                &self.config.fbdt,
                node_budget,
                rng,
                &self.telemetry,
            );
            stats.record(&self.telemetry);
            cover
        };
        // Virtual variable k maps to the kept input's edge; the final
        // virtual variable is the delegate's comparator output.
        let mut var_map: Vec<Edge> = compressed
            .kept_positions()
            .iter()
            .map(|&p| circuit.input_edge(p))
            .collect();
        var_map.push(os_edge);
        Some(self.cover_to_edge(&cover, circuit, &var_map))
    }

    /// Converts a learned cover into circuit structure: espresso
    /// minimization (size-guarded), algebraic factoring, and final
    /// complementation for offset covers. Cover variable `x_k` maps to
    /// `var_map[k]`.
    fn cover_to_edge(&self, cover: &LearnedCover, circuit: &mut Aig, var_map: &[Edge]) -> Edge {
        self.telemetry
            .add(counters::CUBES_COLLECTED, cover.sop.cubes().len() as u64);
        let gates_at = circuit.and_count();
        let edge = if cover.sop.cubes().len() <= self.config.espresso_cube_limit {
            self.telemetry.incr(counters::ESPRESSO_CALLS);
            cirlearn_synth::factor::sop_to_circuit(&cover.sop, circuit, var_map)
        } else {
            let expr = cirlearn_synth::factor::factor(&cover.sop);
            expr.to_aig(circuit, var_map)
        };
        self.telemetry
            .attribute_gates(circuit.and_count().saturating_sub(gates_at) as u64);
        edge.complement_if(cover.complemented)
    }
}

/// The identity variable map: cover variable `x_k` is primary input `k`.
fn identity_var_map(circuit: &Aig) -> Vec<Edge> {
    (0..circuit.num_inputs())
        .map(|p| circuit.input_edge(p))
        .collect()
}

/// How one output's circuit gets built: either the edge is already
/// decided (template/exhaustive/compressed, all atomic), or an FBDT is
/// driven step by step with safe points in between.
enum Arm {
    Edge(Edge),
    Tree {
        // Boxed: the builder dwarfs the `Edge` variant.
        builder: Box<FbdtBuilder>,
        node_budget: Budget,
        cap: Option<u64>,
    },
}

/// Per-output progress arrays, grouped so safe points can snapshot the
/// whole set into a [`LearnState`] without fighting the borrow checker.
struct Progress {
    edges: Vec<Option<Edge>>,
    strategies: Vec<Option<Strategy>>,
    support_sizes: Vec<usize>,
    forced: Vec<usize>,
    out_elapsed: Vec<Duration>,
    out_queries: Vec<u64>,
    truth_bias: Vec<Option<f64>>,
}

impl Progress {
    fn fresh(n: usize) -> Progress {
        Progress {
            edges: vec![None; n],
            strategies: vec![None; n],
            support_sizes: vec![0; n],
            forced: vec![0; n],
            out_elapsed: vec![Duration::ZERO; n],
            out_queries: vec![0; n],
            truth_bias: vec![None; n],
        }
    }

    /// Snapshots the run at a safe point. `queries_used` and
    /// `elapsed_before` are *cumulative across segments* — a future
    /// resume subtracts them from the budgets and adds them to the
    /// final totals.
    #[allow(clippy::too_many_arguments)]
    fn to_state(
        &self,
        config: &LearnerConfig,
        rng: &StdRng,
        circuit: &Aig,
        input_names: &[String],
        output_names: &[String],
        queries_used: u64,
        elapsed_before: Duration,
        cursor: Cursor,
        oracle: Option<Json>,
    ) -> LearnState {
        LearnState {
            seed: config.seed,
            config_fingerprint: config_fingerprint(config),
            rng: rng.state(),
            input_names: input_names.to_vec(),
            output_names: output_names.to_vec(),
            queries_used,
            elapsed_before,
            circuit_aiger: circuit.to_aiger_ascii(),
            edges: self.edges.iter().map(|e| e.map(|e| e.code())).collect(),
            strategies: self.strategies.clone(),
            support_sizes: self.support_sizes.clone(),
            forced: self.forced.clone(),
            out_elapsed: self.out_elapsed.clone(),
            out_queries: self.out_queries.clone(),
            truth_bias: self.truth_bias.clone(),
            cursor,
            oracle,
        }
    }
}

/// An in-flight FBDT restored from a checkpoint, waiting for its
/// output's turn in the learning loop (it always goes first).
struct FbdtResume {
    builder: FbdtBuilder,
    max_queries: Option<u64>,
    partial_elapsed: Duration,
    partial_queries: u64,
}

/// Checkpoint state converted to live run state, with every fallible
/// check already behind us.
struct Restored {
    circuit: Aig,
    rng: StdRng,
    progress: Progress,
    queries_used: u64,
    elapsed_before: Duration,
    fbdt: Option<FbdtResume>,
}

/// Writes a checkpoint, recording `ckpt.*` counters and a `ckpt` trace
/// event. A failed write warns and keeps running — losing one
/// checkpoint cadence beats dying with the work in memory.
fn write_checkpoint(telemetry: &Telemetry, path: &std::path::Path, state: &LearnState) {
    match state.save(path) {
        Ok(bytes) => {
            telemetry.incr(counters::CKPT_WRITES);
            telemetry.add(counters::CKPT_BYTES, bytes as u64);
            telemetry.trace(
                "ckpt",
                &[
                    ("bytes", Json::from(bytes)),
                    ("queries", Json::from(state.queries_used)),
                    ("outputs_done", Json::from(state.outputs_done())),
                ],
            );
        }
        Err(e) => telemetry.event(
            Level::Warn,
            &format!("checkpoint write to {} failed: {e}", path.display()),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_oracle::{evaluate_accuracy, generate, CircuitOracle, EvalConfig};

    fn check_exact(oracle: &CircuitOracle, result: &LearnResult) -> bool {
        cirlearn_sat::check_equivalence(oracle.reveal(), &result.circuit).is_equivalent()
    }

    #[test]
    fn learns_small_random_logic_exactly() {
        let mut oracle = generate::eco_case_with_support(16, 3, 6, 42);
        let mut learner = Learner::new(LearnerConfig::fast());
        let result = learner.learn(&mut oracle);
        assert!(check_exact(&oracle, &result), "small ECO must be exact");
        assert!(result
            .outputs
            .iter()
            .all(|s| s.strategy == Strategy::Exhaustive));
    }

    #[test]
    fn learns_diag_case_via_templates() {
        let mut oracle = generate::diag_case(20, 3, 5);
        let mut learner = Learner::new(LearnerConfig::fast());
        let result = learner.learn(&mut oracle);
        assert!(
            result
                .outputs
                .iter()
                .all(|s| s.strategy == Strategy::ComparatorTemplate),
            "DIAG outputs should match the comparator template: {:?}",
            result.outputs
        );
        let acc = evaluate_accuracy(
            oracle.reveal(),
            &result.circuit,
            &EvalConfig {
                patterns_per_group: 2000,
                ..EvalConfig::default()
            },
        );
        assert_eq!(acc.hits, acc.total, "template match must be exact");
    }

    #[test]
    fn learns_data_case_via_linear_template() {
        let mut oracle = generate::data_case(12, 8, 9);
        let mut learner = Learner::new(LearnerConfig::fast());
        let result = learner.learn(&mut oracle);
        assert!(
            result
                .outputs
                .iter()
                .all(|s| s.strategy == Strategy::LinearTemplate),
            "DATA outputs should match the linear template: {:?}",
            result.outputs
        );
        assert!(check_exact(&oracle, &result));
    }

    #[test]
    fn preprocessing_off_still_learns() {
        let mut oracle = generate::diag_case(12, 1, 31);
        let mut cfg = LearnerConfig::fast();
        cfg.preprocessing = false;
        let mut learner = Learner::new(cfg);
        let result = learner.learn(&mut oracle);
        assert!(matches!(
            result.outputs[0].strategy,
            Strategy::Exhaustive | Strategy::Fbdt
        ));
        let acc = evaluate_accuracy(
            oracle.reveal(),
            &result.circuit,
            &EvalConfig {
                patterns_per_group: 2000,
                ..EvalConfig::default()
            },
        );
        assert!(acc.ratio() > 0.95, "accuracy {acc}");
    }

    #[test]
    fn telemetry_stage_queries_sum_to_result_queries() {
        let mut oracle = generate::eco_case(14, 3, 55);
        let telemetry = Telemetry::recording();
        let mut learner = Learner::with_telemetry(LearnerConfig::fast(), telemetry.clone());
        let result = learner.learn(&mut oracle);
        let report = telemetry.report();
        // Every oracle query is issued inside exactly one top-level
        // stage span, so the per-stage breakdown partitions the total.
        assert_eq!(
            report.top_level_counter_sum(counters::ORACLE_QUERIES),
            result.queries,
            "stage query counts must partition the run total"
        );
        assert_eq!(report.counter(counters::ORACLE_QUERIES), result.queries);
        // The cost ledger is fed by the same source (the instrumented
        // oracle tags each query with the active top-level stage), so
        // its cells partition the run total exactly, per stage and
        // overall.
        assert_eq!(
            report.attribution_total_queries(),
            result.queries,
            "attribution ledger must account for every query"
        );
        for stage in report.stages.iter().filter(|s| !s.path.contains('/')) {
            assert_eq!(
                report.attribution_stage_queries(&stage.path),
                stage
                    .counters
                    .get(counters::ORACLE_QUERIES)
                    .copied()
                    .unwrap_or(0),
                "ledger and stage breakdown disagree for {}",
                stage.path
            );
        }
        // Per-output queries are a subset of the total (template
        // matches contribute zero).
        let per_output: u64 = result.outputs.iter().map(|s| s.queries).sum();
        assert!(per_output <= result.queries);
        // Cone sizes never grow under optimization.
        for s in &result.outputs {
            assert!(
                s.gates_after_opt <= s.gates_before_opt,
                "output {}",
                s.output
            );
        }
    }

    #[test]
    fn output_count_and_names_preserved() {
        let mut oracle = generate::eco_case(14, 4, 77);
        let mut learner = Learner::new(LearnerConfig::fast());
        let result = learner.learn(&mut oracle);
        assert_eq!(result.circuit.num_outputs(), 4);
        let names: Vec<&str> = result
            .circuit
            .outputs()
            .iter()
            .map(|(_, n)| n.as_str())
            .collect();
        assert_eq!(
            names,
            oracle
                .output_names()
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
        );
        assert!(result.queries > 0);
    }
}

#[cfg(test)]
mod degradation_tests {
    use super::*;
    use cirlearn_oracle::{generate, FaultKind, FaultSchedule, FaultyOracle};

    #[test]
    fn clean_run_reports_no_faults() {
        let mut oracle = generate::eco_case(12, 3, 11);
        let result = Learner::new(LearnerConfig::fast()).learn(&mut oracle);
        assert!(result.degraded.is_empty());
        assert!(!result.faults.any());
        assert_eq!(result.faults.fallback_answers, 0);
        assert!(result.faults.oracle_error.is_none());
    }

    #[test]
    fn permanent_oracle_death_degrades_instead_of_panicking() {
        // The oracle crashes early and is never respawned: every answer
        // after the crash is a fallback. The learner must still return
        // a complete circuit, with the affected outputs degraded.
        let schedule = FaultSchedule::new().at(40, FaultKind::Crash);
        let mut oracle = FaultyOracle::new(generate::eco_case(14, 3, 23), schedule);
        let mut cfg = LearnerConfig::fast();
        cfg.preprocessing = false;
        let result = Learner::new(cfg).learn(&mut oracle);
        assert_eq!(result.circuit.num_outputs(), 3, "circuit stays complete");
        assert!(!result.degraded.is_empty(), "crash must degrade outputs");
        assert!(result.faults.any());
        assert_eq!(result.faults.degraded_outputs, result.degraded.len() as u64);
        assert!(result
            .faults
            .oracle_error
            .as_deref()
            .is_some_and(|e| e.contains("died")));
        for &o in &result.degraded {
            assert_eq!(result.outputs[o].strategy, Strategy::Degraded);
        }
        // Degraded constants still lint: every output edge resolves.
        assert!(result.circuit.cleanup().num_outputs() == 3);
    }

    #[test]
    fn death_during_templates_degrades_every_output() {
        // A fault inside the shared template stage poisons all matches.
        let schedule = FaultSchedule::new().at(5, FaultKind::Crash);
        let mut oracle = FaultyOracle::new(generate::diag_case(16, 2, 9), schedule);
        let result = Learner::new(LearnerConfig::fast()).learn(&mut oracle);
        assert_eq!(result.degraded, vec![0, 1]);
        assert!(result
            .outputs
            .iter()
            .all(|s| s.strategy == Strategy::Degraded));
        assert!(result.faults.fallback_answers > 0);
    }

    #[test]
    fn zero_time_budget_degrades_gracefully() {
        let mut oracle = generate::eco_case(12, 4, 31);
        let mut cfg = LearnerConfig::fast();
        cfg.preprocessing = false;
        cfg.time_budget = Duration::ZERO;
        let result = Learner::new(cfg).learn(&mut oracle);
        assert_eq!(result.circuit.num_outputs(), 4);
        assert_eq!(result.degraded, vec![0, 1, 2, 3]);
        // Budget expiry is degradation without an oracle fault.
        assert!(result.faults.oracle_error.is_none());
        assert!(result.faults.any());
    }

    #[test]
    fn telemetry_counts_degraded_outputs() {
        let schedule = FaultSchedule::new().at(0, FaultKind::Crash);
        let mut oracle = FaultyOracle::new(generate::eco_case(10, 2, 7), schedule);
        let telemetry = Telemetry::recording();
        let mut learner = Learner::with_telemetry(LearnerConfig::fast(), telemetry.clone());
        let result = learner.learn(&mut oracle);
        assert_eq!(
            telemetry.counter(counters::FAULT_DEGRADED_OUTPUTS),
            result.degraded.len() as u64
        );
        let report = telemetry.report();
        assert_eq!(report.faults.degraded_outputs, result.degraded.len() as u64);
    }
}

#[cfg(test)]
mod resume_tests {
    use super::*;
    use cirlearn_oracle::generate;

    fn fingerprint(circuit: &Aig) -> u64 {
        let text = circuit.to_aiger_ascii();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn config() -> LearnerConfig {
        // Query-budgeted and unoptimized: machine-independent, so a
        // suspended-and-resumed run must be *bit-identical* to the
        // uninterrupted one, not merely equivalent.
        let mut cfg = LearnerConfig::fast();
        cfg.optimize = None;
        cfg.max_queries = Some(60_000);
        cfg
    }

    fn reference(case_seed: u64) -> LearnResult {
        let mut oracle = generate::neq_case_with_support(26, 2, 22, case_seed);
        Learner::new(config()).learn(&mut oracle)
    }

    #[test]
    fn suspend_resume_is_bit_identical_at_every_safe_point() {
        let want = reference(97);
        assert!(want.queries > 0);
        // Suspend at a spread of safe points — output boundaries (small
        // n) and deep mid-tree (large n) — resume, and compare.
        for n in [0, 1, 2, 50, 500] {
            let mut oracle = generate::neq_case_with_support(26, 2, 22, 97);
            let mut learner = Learner::new(config());
            let ctl = RunControl {
                stop_after_safe_points: Some(n),
                ..RunControl::default()
            };
            let outcome = learner.learn_with(&mut oracle, &ctl);
            let Some(state) = outcome.suspended() else {
                // The run finished before reaching n safe points; the
                // uninterrupted result was already produced.
                continue;
            };
            // Roundtrip through the file bytes so the on-disk format is
            // part of what the bit-identity proof covers.
            let state = LearnState::from_file_bytes(&state.to_file_bytes()).expect("roundtrip");
            let got = learner
                .resume(state, &mut oracle, &RunControl::default())
                .expect("state validates")
                .expect_completed();
            assert_eq!(
                fingerprint(&got.circuit),
                fingerprint(&want.circuit),
                "resume after {n} safe points diverged"
            );
            assert_eq!(got.queries, want.queries, "cumulative queries at n={n}");
            assert_eq!(
                got.outputs.iter().map(|s| s.queries).collect::<Vec<_>>(),
                want.outputs.iter().map(|s| s.queries).collect::<Vec<_>>(),
                "per-output query ledger at n={n}"
            );
            assert!(got.degraded.is_empty());
        }
    }

    #[test]
    fn chained_suspensions_accumulate_queries_exactly() {
        // Suspend repeatedly — each segment does a sliver of work — and
        // check the final totals match the uninterrupted run.
        let want = reference(131);
        let mut oracle = generate::neq_case_with_support(26, 2, 22, 131);
        let mut learner = Learner::new(config());
        let ctl = RunControl {
            stop_after_safe_points: Some(15),
            ..RunControl::default()
        };
        let mut outcome = learner.learn_with(&mut oracle, &ctl);
        let mut segments = 1;
        let got = loop {
            match outcome {
                LearnOutcome::Completed(result) => break *result,
                LearnOutcome::Suspended(state) => {
                    segments += 1;
                    assert!(segments < 1000, "resume loop did not converge");
                    outcome = learner
                        .resume(*state, &mut oracle, &ctl)
                        .expect("state validates");
                }
            }
        };
        assert!(segments >= 3, "test should actually chain segments");
        assert_eq!(fingerprint(&got.circuit), fingerprint(&want.circuit));
        assert_eq!(got.queries, want.queries);
        let per_output: u64 = got.outputs.iter().map(|s| s.queries).sum();
        assert!(per_output <= got.queries);
    }

    #[test]
    fn resume_rejects_mismatched_config_and_oracle() {
        let mut oracle = generate::neq_case_with_support(26, 2, 22, 11);
        let mut learner = Learner::new(config());
        let ctl = RunControl {
            stop_after_safe_points: Some(1),
            ..RunControl::default()
        };
        let state = learner
            .learn_with(&mut oracle, &ctl)
            .suspended()
            .expect("suspends at safe point 1");

        // Different config: fingerprint mismatch.
        let mut other = Learner::new(LearnerConfig::fast());
        let err = other
            .resume((*state).clone(), &mut oracle, &RunControl::default())
            .expect_err("config changed");
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");

        // Different oracle shape: port-name mismatch.
        let mut wrong_oracle = generate::eco_case(8, 2, 3);
        let err = learner
            .resume((*state).clone(), &mut wrong_oracle, &RunControl::default())
            .expect_err("oracle changed");
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");

        // The matching pair still works.
        let got = learner
            .resume(*state, &mut oracle, &RunControl::default())
            .expect("valid resume")
            .expect_completed();
        assert_eq!(got.circuit.num_outputs(), 2);
    }

    #[test]
    fn checkpoint_cadence_writes_files_and_counters() {
        let dir = std::env::temp_dir().join(format!("cirlearn-cadence-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join("run.ckpt");
        let mut oracle = generate::neq_case_with_support(26, 2, 22, 55);
        let telemetry = Telemetry::recording();
        let mut learner = Learner::with_telemetry(config(), telemetry.clone());
        let ctl = RunControl {
            checkpoint_path: Some(path.clone()),
            checkpoint_interval: Duration::ZERO, // every safe point
            ..RunControl::default()
        };
        let result = learner.learn_with(&mut oracle, &ctl).expect_completed();
        assert!(result.degraded.is_empty());
        let writes = telemetry.counter(counters::CKPT_WRITES);
        assert!(writes > 0, "cadence should have written checkpoints");
        assert!(telemetry.counter(counters::CKPT_BYTES) > 0);
        // The file on disk is a valid checkpoint of the finished run.
        let state = LearnState::load(&path).expect("valid checkpoint on disk");
        assert_eq!(state.output_names.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadline_degrades_instead_of_overshooting() {
        let mut oracle = generate::neq_case_with_support(26, 3, 22, 77);
        let telemetry = Telemetry::recording();
        let mut learner = Learner::with_telemetry(config(), telemetry.clone());
        let ctl = RunControl {
            deadline: Some(Duration::ZERO),
            ..RunControl::default()
        };
        let result = learner.learn_with(&mut oracle, &ctl).expect_completed();
        // Complete circuit, every output degraded, nobody panicked.
        assert_eq!(result.circuit.num_outputs(), 3);
        assert_eq!(result.degraded, vec![0, 1, 2]);
        assert!(result.faults.any());
        assert!(result.faults.oracle_error.is_none());
    }

    #[test]
    fn deadline_mid_tree_synthesizes_from_collected_cubes() {
        // Suspend mid-tree, then resume with an already-exceeded
        // deadline: the in-flight output must be synthesized from its
        // collected cubes (Strategy::Fbdt, reported degraded), not
        // thrown away.
        let mut oracle = generate::neq_case_with_support(26, 1, 22, 97);
        let mut learner = Learner::new(config());
        // Burn enough safe points to be deep inside the FBDT.
        let ctl = RunControl {
            stop_after_safe_points: Some(30),
            ..RunControl::default()
        };
        let state = learner
            .learn_with(&mut oracle, &ctl)
            .suspended()
            .expect("deep suspension");
        assert!(
            matches!(state.cursor, Cursor::Fbdt { .. }),
            "30 safe points on one output should land mid-tree"
        );
        let telemetry = Telemetry::recording();
        let mut learner = Learner::with_telemetry(config(), telemetry.clone());
        let ctl = RunControl {
            deadline: Some(Duration::ZERO),
            ..RunControl::default()
        };
        let result = learner
            .resume(*state, &mut oracle, &ctl)
            .expect("state validates")
            .expect_completed();
        assert_eq!(result.degraded, vec![0], "cut output reported degraded");
        assert_eq!(result.outputs[0].strategy, Strategy::Fbdt);
        assert_eq!(
            telemetry.counter(counters::CKPT_DEADLINE_PARTIAL_OUTPUTS),
            1
        );
    }
}

#[cfg(test)]
mod query_budget_tests {
    use super::*;
    use cirlearn_oracle::generate;

    #[test]
    fn query_budget_is_respected_and_deterministic() {
        let run = |cap: u64| {
            let mut oracle = generate::neq_case_with_support(30, 2, 24, 321);
            let mut cfg = LearnerConfig::fast();
            cfg.max_queries = Some(cap);
            cfg.optimize = None;
            let r = Learner::new(cfg).learn(&mut oracle);
            (r.queries, r.circuit.gate_count())
        };
        let (q1, g1) = run(60_000);
        let (q2, g2) = run(60_000);
        assert_eq!((q1, g1), (q2, g2), "same budget must reproduce exactly");
        // The budget caps FBDT queries; support identification and the
        // per-node sampling of the final forced leaves still run, so
        // allow bounded overshoot rather than an exact ceiling.
        assert!(q1 < 200_000, "queries {q1} far beyond the 60k budget");
        // A tighter budget must not use more queries.
        let (q3, _) = run(20_000);
        assert!(q3 <= q1, "tighter budget used more queries: {q3} > {q1}");
    }
}
