//! The end-to-end learning pipeline (paper Fig. 1).

use std::time::{Duration, Instant};

use cirlearn_aig::{Aig, Edge};
use cirlearn_oracle::{InstrumentedOracle, Oracle};
use cirlearn_synth::{optimize_with, OptimizeConfig};
use cirlearn_telemetry::{counters, Level, OutputReport, Telemetry};

use crate::budget::Budget;
use crate::fbdt::{build_fbdt, learn_exhaustive, FbdtConfig, LearnedCover};
use crate::guard::OracleGuard;
use crate::naming::{group_names, Grouping};
use crate::sampling::{seeded_rng, SamplingConfig};
use crate::support::identify_support;
use crate::template::{
    match_comparator_const, match_comparator_pair, match_linear, TemplateConfig,
};

/// Which algorithm produced an output's circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Matched by the linear-arithmetic template.
    LinearTemplate,
    /// Matched by the comparator template.
    ComparatorTemplate,
    /// Exhaustively enumerated (small support).
    Exhaustive,
    /// Learned by FBDT construction.
    Fbdt,
    /// Learned over a compressed input space after a hidden comparator
    /// was detected and delegated (paper §IV-B1, Fig. 3).
    CompressedFbdt,
    /// Degraded to a baseline constant (majority-vote) circuit because
    /// the oracle died permanently or the budget expired before this
    /// output could be learned.
    Degraded,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::LinearTemplate => "linear",
            Strategy::ComparatorTemplate => "comparator",
            Strategy::Exhaustive => "exhaustive",
            Strategy::Fbdt => "fbdt",
            Strategy::CompressedFbdt => "compressed-fbdt",
            Strategy::Degraded => "degraded",
        };
        f.write_str(s)
    }
}

/// Summary of oracle faults observed during a [`Learner::learn`] run.
///
/// Transient faults are absorbed inside the oracle stack (see
/// [`ResilientOracle`](cirlearn_oracle::ResilientOracle)); what
/// surfaces here is terminal: the oracle died beyond recovery, and the
/// learner degraded the affected outputs instead of panicking.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Fallback (constant-false) answers served after the oracle died.
    pub fallback_answers: u64,
    /// Outputs degraded to a baseline circuit.
    pub degraded_outputs: u64,
    /// Display form of the terminal oracle error, if one occurred.
    pub oracle_error: Option<String>,
}

impl FaultSummary {
    /// Whether the run saw any terminal fault.
    pub fn any(&self) -> bool {
        self.oracle_error.is_some() || self.degraded_outputs > 0
    }
}

/// Per-output learning statistics.
#[derive(Debug, Clone)]
pub struct OutputStats {
    /// Output position.
    pub output: usize,
    /// Output port name.
    pub name: String,
    /// Winning strategy.
    pub strategy: Strategy,
    /// Size of the estimated support (0 for template matches).
    pub support_size: usize,
    /// Leaves the FBDT had to force on budget exhaustion.
    pub forced_leaves: usize,
    /// Wall clock spent learning this output (zero for template
    /// matches, whose work happens in the shared template stage).
    pub elapsed: Duration,
    /// Oracle queries issued while learning this output (zero for
    /// template matches — their validation queries are attributed to
    /// the shared template stage).
    pub queries: u64,
    /// AND gates in this output's fanin cone before optimization.
    pub gates_before_opt: usize,
    /// AND gates in this output's fanin cone after optimization (equal
    /// to `gates_before_opt` when optimization is disabled).
    pub gates_after_opt: usize,
}

impl OutputStats {
    /// The run-report form of these statistics.
    pub fn to_report(&self) -> OutputReport {
        OutputReport {
            output: self.output as u64,
            name: self.name.clone(),
            strategy: self.strategy.to_string(),
            support: self.support_size as u64,
            forced_leaves: self.forced_leaves as u64,
            queries: self.queries,
            elapsed: self.elapsed,
            gates_before_opt: self.gates_before_opt as u64,
            gates_after_opt: self.gates_after_opt as u64,
        }
    }
}

/// The result of a [`Learner::learn`] run.
///
/// Always a *complete* circuit: one output per oracle output, even when
/// the oracle died or the budget expired mid-run — affected outputs are
/// listed in [`LearnResult::degraded`] and carry
/// [`Strategy::Degraded`] in their stats.
#[derive(Debug, Clone)]
pub struct LearnResult {
    /// The learned circuit, with the oracle's port names.
    pub circuit: Aig,
    /// Per-output statistics, in output order.
    pub outputs: Vec<OutputStats>,
    /// Total wall-clock time spent.
    pub elapsed: Duration,
    /// Total oracle queries spent.
    pub queries: u64,
    /// Positions of outputs degraded to a baseline circuit, in output
    /// order (empty for fault-free runs that finished in budget).
    pub degraded: Vec<usize>,
    /// Terminal-fault summary (all-default for clean runs).
    pub faults: FaultSummary,
}

/// Configuration of the full pipeline.
#[derive(Debug, Clone)]
pub struct LearnerConfig {
    /// Master switch for steps 1–2 (name grouping + templates); turned
    /// off for the paper's §V preprocessing ablation.
    pub preprocessing: bool,
    /// Support-identification sampling (paper: r = 7200).
    pub support_sampling: SamplingConfig,
    /// FBDT construction settings.
    pub fbdt: FbdtConfig,
    /// Template matching settings.
    pub template: TemplateConfig,
    /// Total wall-clock budget (the paper ran under 2700 s).
    pub time_budget: Duration,
    /// Optional total query budget: unlike wall-clock time it is
    /// machine-independent, so budgeted runs reproduce exactly.
    pub max_queries: Option<u64>,
    /// Post-optimization settings; `None` skips optimization.
    pub optimize: Option<OptimizeConfig>,
    /// Covers larger than this many cubes skip espresso minimization
    /// (factoring still applies) to bound post-processing time.
    pub espresso_cube_limit: usize,
    /// RNG seed for the whole run.
    pub seed: u64,
}

impl Default for LearnerConfig {
    fn default() -> Self {
        LearnerConfig {
            preprocessing: true,
            support_sampling: SamplingConfig::support_default(),
            fbdt: FbdtConfig::default(),
            template: TemplateConfig::default(),
            time_budget: Duration::from_secs(2700),
            max_queries: None,
            optimize: Some(OptimizeConfig::default()),
            espresso_cube_limit: 256,
            seed: 0x1CCAD,
        }
    }
}

impl LearnerConfig {
    /// A CI-scale configuration: reduced sampling, small budgets.
    pub fn fast() -> Self {
        LearnerConfig {
            preprocessing: true,
            support_sampling: SamplingConfig::fast(),
            fbdt: FbdtConfig::fast(),
            template: TemplateConfig {
                validate_samples: 192,
                ..TemplateConfig::default()
            },
            time_budget: Duration::from_secs(30),
            max_queries: None,
            optimize: Some(OptimizeConfig {
                time_budget: Duration::from_secs(2),
                max_rounds: 1,
                enable_redundancy_removal: false,
                ..OptimizeConfig::default()
            }),
            espresso_cube_limit: 128,
            seed: 0x1CCAD,
        }
    }
}

/// The circuit learner: runs grouping, template matching, support
/// identification, FBDT construction and optimization.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Learner {
    config: LearnerConfig,
    telemetry: Telemetry,
}

impl Learner {
    /// Creates a learner with the given configuration and telemetry
    /// disabled.
    pub fn new(config: LearnerConfig) -> Self {
        Learner {
            config,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Creates a learner that records spans, counters and events into
    /// `telemetry`. Oracle queries are counted at the source and
    /// attributed to the pipeline stage that issued them, so the run
    /// report's top-level stage breakdown of `oracle.queries` sums to
    /// [`LearnResult::queries`].
    pub fn with_telemetry(config: LearnerConfig, telemetry: Telemetry) -> Self {
        Learner { config, telemetry }
    }

    /// Convenience constructor with the paper's default settings.
    pub fn with_defaults() -> Self {
        Learner::new(LearnerConfig::default())
    }

    /// Returns the configuration.
    pub fn config(&self) -> &LearnerConfig {
        &self.config
    }

    /// Returns the telemetry handle (disabled unless constructed with
    /// [`Learner::with_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Learns a circuit for the black box.
    ///
    /// Always returns a complete circuit with one output per oracle
    /// output; on budget exhaustion the remaining outputs degrade to
    /// majority-vote approximations (the paper's early-stop behaviour)
    /// rather than being dropped.
    ///
    /// Queries flow through the oracle's *fallible* path
    /// ([`Oracle::try_query`]). If the oracle dies beyond recovery the
    /// learner does not panic: outputs whose learning overlapped the
    /// failure degrade to a baseline constant circuit, the rest keep
    /// whatever was validly learned before the fault, and
    /// [`LearnResult::degraded`] / [`LearnResult::faults`] record what
    /// happened.
    pub fn learn<O: Oracle + ?Sized>(&mut self, oracle: &mut O) -> LearnResult {
        let telemetry = self.telemetry.clone();
        // Count queries at the source: every query the pipeline issues
        // from here on lands on the `oracle.queries` counter and is
        // attributed to the stage span active when it was served.
        // The guard outside routes them through the fallible path and
        // latches the first terminal failure for per-output isolation.
        let mut oracle = OracleGuard::new(InstrumentedOracle::new(oracle, telemetry.clone()));
        let budget = Budget::new(self.config.time_budget);
        let mut rng = seeded_rng(self.config.seed);
        let start_queries = oracle.queries();
        let num_outputs = oracle.num_outputs();

        let mut circuit = Aig::new();
        for name in oracle.input_names() {
            circuit.add_input(name.clone());
        }
        let output_names: Vec<String> = oracle.output_names().to_vec();
        let mut edges: Vec<Option<Edge>> = vec![None; num_outputs];
        let mut strategies: Vec<Option<Strategy>> = vec![None; num_outputs];
        let mut support_sizes: Vec<usize> = vec![0; num_outputs];
        let mut forced: Vec<usize> = vec![0; num_outputs];
        let mut out_elapsed: Vec<Duration> = vec![Duration::ZERO; num_outputs];
        let mut out_queries: Vec<u64> = vec![0; num_outputs];
        // Observed truth bias per output, for the majority-vote
        // fallback when an output has to degrade.
        let mut truth_bias: Vec<Option<f64>> = vec![None; num_outputs];

        // Steps 1–2: name based grouping + template matching.
        let in_grouping = self
            .config
            .preprocessing
            .then(|| group_names(oracle.input_names()));
        if let Some(grouping) = &in_grouping {
            telemetry.event(
                Level::Info,
                &format!(
                    "grouping: {} buses, {} scalars",
                    grouping.groups.len(),
                    grouping.scalars.len()
                ),
            );
            for g in &grouping.groups {
                telemetry.event(Level::Debug, &format!("bus {} width {}", g.stem, g.width()));
            }
            let out_grouping = group_names(&output_names);
            let _span = telemetry.span("templates");
            self.match_templates(
                &mut oracle,
                grouping,
                &out_grouping,
                &mut circuit,
                &mut edges,
                &mut strategies,
                &mut rng,
            );
        }
        budget.checkpoint(&telemetry, "templates");
        if oracle.failed() {
            // The fault hit during the shared template stage: any match
            // may have validated against fallback answers, so none can
            // be trusted. Discard them all; every output degrades.
            telemetry.event(
                Level::Warn,
                "oracle failed during template matching; discarding template matches",
            );
            edges.fill(None);
            strategies.fill(None);
        }

        // Steps 3–4 for the remaining outputs.
        let remaining: Vec<usize> = (0..num_outputs).filter(|&o| edges[o].is_none()).collect();
        telemetry.event(
            Level::Info,
            &format!(
                "templates matched {} of {} outputs",
                num_outputs - remaining.len(),
                num_outputs
            ),
        );
        for (k, &o) in remaining.iter().enumerate() {
            if oracle.failed() || budget.exhausted() {
                // Per-output isolation: a dead oracle answers constant
                // fallbacks instantly, but learning from them would
                // only launder junk into the circuit — and past the
                // budget there is no time left to sample honestly.
                // Leave the edge empty; it degrades to a baseline
                // constant below.
                continue;
            }
            let out_start = Instant::now();
            let queries_before = oracle.queries();
            // Everything from here to the end of the iteration is this
            // output's work: tag queries and gate builds with it.
            let _out_scope = telemetry.output_scope(o);
            let info = {
                let _span = telemetry.span("support");
                identify_support(&mut oracle, o, &self.config.support_sampling, &mut rng)
            };
            support_sizes[o] = info.support.len();
            truth_bias[o] = Some(info.truth_ratio);
            telemetry.event(
                Level::Debug,
                &format!(
                    "output {o} ({}): support {} truth_ratio {:.3}",
                    output_names[o],
                    info.support.len(),
                    info.truth_ratio
                ),
            );
            let share = 1.0 / (remaining.len() - k) as f64;
            let node_budget = budget.fraction_of_remaining(share);
            let edge = if info.support.len() <= self.config.fbdt.exhaustive_threshold {
                strategies[o] = Some(Strategy::Exhaustive);
                let _span = telemetry.span("exhaustive");
                let (cover, _) = learn_exhaustive(&mut oracle, o, &info.support, &mut rng);
                let var_map = identity_var_map(&circuit);
                self.cover_to_edge(&cover, &mut circuit, &var_map)
            } else if let Some(edge) = {
                let _span = telemetry.span("compressed");
                self.try_compressed(
                    &mut oracle,
                    o,
                    in_grouping.as_ref(),
                    &info.support,
                    &node_budget,
                    &mut circuit,
                    &mut rng,
                )
            } {
                strategies[o] = Some(Strategy::CompressedFbdt);
                edge
            } else {
                strategies[o] = Some(Strategy::Fbdt);
                let _span = telemetry.span("fbdt");
                // Portion any query budget over the outputs still to do.
                let mut fbdt_cfg = self.config.fbdt.clone();
                if let Some(total) = self.config.max_queries {
                    let used = oracle.queries() - start_queries;
                    let left = total.saturating_sub(used);
                    fbdt_cfg.max_queries = Some(left / (remaining.len() - k) as u64);
                }
                let (cover, stats) = build_fbdt(
                    &mut oracle,
                    o,
                    &info.support,
                    info.truth_ratio,
                    &fbdt_cfg,
                    &node_budget,
                    &mut rng,
                    &telemetry,
                );
                stats.record(&telemetry);
                if stats.forced_leaves > 0 {
                    telemetry.event(
                        Level::Warn,
                        &format!(
                            "output {o}: budget forced {} leaves to majority votes",
                            stats.forced_leaves
                        ),
                    );
                }
                forced[o] = stats.forced_leaves;
                let var_map = identity_var_map(&circuit);
                self.cover_to_edge(&cover, &mut circuit, &var_map)
            };
            if oracle.failed() {
                // The fault hit mid-output: the learned cover mixes
                // real and fallback answers and cannot be trusted.
                strategies[o] = None;
            } else {
                edges[o] = Some(edge);
            }
            out_elapsed[o] = out_start.elapsed();
            out_queries[o] = oracle.queries() - queries_before;
            // `and_count`, not `gate_count`: outputs are not attached
            // until after the loop, so reachability-based counts would
            // read zero here.
            telemetry.set_aig_nodes(circuit.and_count() as u64);
        }
        budget.checkpoint(&telemetry, "learning");

        // Graceful degradation: any output still without an edge (the
        // oracle died, the budget expired, or its learned cover was
        // discarded above) falls back to the majority-vote constant —
        // the same baseline a budget-forced FBDT leaf uses — so the
        // result is always a complete, valid circuit.
        let mut degraded: Vec<usize> = Vec::new();
        for o in 0..num_outputs {
            if edges[o].is_none() {
                let majority = truth_bias[o].is_some_and(|r| r >= 0.5);
                edges[o] = Some(if majority { Edge::TRUE } else { Edge::FALSE });
                strategies[o] = Some(Strategy::Degraded);
                degraded.push(o);
                telemetry.incr(counters::FAULT_DEGRADED_OUTPUTS);
                telemetry.event(
                    Level::Warn,
                    &format!(
                        "output {o} ({}) degraded to constant {}",
                        output_names[o], majority
                    ),
                );
            }
        }

        for (o, name) in output_names.iter().enumerate() {
            circuit.add_output(edges[o].unwrap_or(Edge::FALSE), name.clone());
        }
        let mut circuit = circuit.cleanup();
        let gates_before_opt: Vec<usize> = (0..num_outputs)
            .map(|o| circuit.output_cone_size(o))
            .collect();

        // Step 5: circuit optimization.
        if let Some(opt_cfg) = &self.config.optimize {
            let _span = telemetry.span("optimize");
            let before = circuit.gate_count();
            let mut cfg = opt_cfg.clone();
            cfg.time_budget = cfg.time_budget.min(budget.remaining());
            circuit = optimize_with(&circuit, &cfg, &telemetry);
            telemetry.event(
                Level::Info,
                &format!(
                    "optimization: {before} -> {} AND nodes",
                    circuit.gate_count()
                ),
            );
        }
        budget.checkpoint(&telemetry, "optimize");
        telemetry.set_aig_nodes(circuit.gate_count() as u64);
        telemetry.emit_metrics_snapshot();

        let outputs: Vec<OutputStats> = (0..num_outputs)
            .map(|o| OutputStats {
                output: o,
                name: output_names[o].clone(),
                strategy: strategies[o].unwrap_or(Strategy::Degraded),
                support_size: support_sizes[o],
                forced_leaves: forced[o],
                elapsed: out_elapsed[o],
                queries: out_queries[o],
                gates_before_opt: gates_before_opt[o],
                gates_after_opt: circuit.output_cone_size(o),
            })
            .collect();
        telemetry.set_outputs(outputs.iter().map(OutputStats::to_report).collect());
        if let Some(e) = oracle.failure() {
            telemetry.event(
                Level::Error,
                &format!(
                    "oracle died beyond recovery ({e}); {} of {num_outputs} outputs degraded",
                    degraded.len()
                ),
            );
        }
        let faults = FaultSummary {
            fallback_answers: oracle.fallback_answers(),
            degraded_outputs: degraded.len() as u64,
            oracle_error: oracle.failure().map(|e| e.to_string()),
        };
        LearnResult {
            circuit,
            outputs,
            elapsed: budget.elapsed(),
            queries: oracle.queries() - start_queries,
            degraded,
            faults,
        }
    }

    /// Runs template matching (step 2), filling in edges for every
    /// output a template explains.
    #[allow(clippy::too_many_arguments)]
    fn match_templates<O: Oracle + ?Sized>(
        &self,
        oracle: &mut O,
        in_grouping: &Grouping,
        out_grouping: &Grouping,
        circuit: &mut Aig,
        edges: &mut [Option<Edge>],
        strategies: &mut [Option<Strategy>],
        rng: &mut rand::rngs::StdRng,
    ) {
        if in_grouping.groups.is_empty() {
            return;
        }
        // For linear matching, scalar inputs participate as singleton
        // pseudo-buses: a lone wire can still carry a coefficient.
        let mut linear_groups = in_grouping.groups.clone();
        for &pos in &in_grouping.scalars {
            linear_groups.push(crate::naming::VarGroup {
                stem: oracle.input_names()[pos].clone(),
                positions: vec![pos],
                bits: vec![0],
            });
        }
        // Linear arithmetic over output buses first: one match explains
        // a whole bus of outputs.
        for out_group in &out_grouping.groups {
            if out_group.width() < 2 {
                continue;
            }
            if let Some(m) = match_linear(
                oracle,
                out_group,
                &linear_groups,
                &self.config.template,
                rng,
            ) {
                let gates_at = circuit.and_count();
                let words = m.build(circuit, &linear_groups);
                self.telemetry
                    .attribute_gates(circuit.and_count().saturating_sub(gates_at) as u64);
                for (edge, &pos) in words.iter().zip(&m.output_group.positions) {
                    edges[pos] = Some(*edge);
                    strategies[pos] = Some(Strategy::LinearTemplate);
                }
            }
        }
        // Comparators for the remaining single outputs.
        for o in 0..edges.len() {
            if edges[o].is_some() {
                continue;
            }
            let matched =
                match_comparator_pair(oracle, o, &in_grouping.groups, &self.config.template, rng)
                    .or_else(|| {
                        match_comparator_const(
                            oracle,
                            o,
                            &in_grouping.groups,
                            &self.config.template,
                            rng,
                        )
                    });
            if let Some(m) = matched {
                let gates_at = circuit.and_count();
                let edge = m.build(circuit, &in_grouping.groups);
                self.telemetry
                    .attribute_gates(circuit.and_count().saturating_sub(gates_at) as u64);
                edges[o] = Some(edge);
                strategies[o] = Some(Strategy::ComparatorTemplate);
            }
        }
    }

    /// Attempts the paper's §IV-B1 input compression: if a hidden
    /// comparator is detected for this output, learn the output over
    /// the compressed input space (delegate bit instead of the bus
    /// bits) and build the composition `F'(kept, O_s)` with the
    /// comparator subcircuit feeding the delegate variable.
    #[allow(clippy::too_many_arguments)]
    fn try_compressed<O: Oracle + ?Sized>(
        &self,
        oracle: &mut O,
        output: usize,
        in_grouping: Option<&Grouping>,
        support: &[usize],
        node_budget: &Budget,
        circuit: &mut Aig,
        rng: &mut rand::rngs::StdRng,
    ) -> Option<Edge> {
        let grouping = in_grouping?;
        // Only worth probing when some bus lies (mostly) inside the
        // estimated support.
        let candidate_groups: Vec<crate::naming::VarGroup> = grouping
            .groups
            .iter()
            .filter(|g| {
                let inside = g.positions.iter().filter(|p| support.contains(p)).count();
                inside * 10 >= g.width() * 7
            })
            .cloned()
            .collect();
        if candidate_groups.len() < 2 {
            return None;
        }
        let delegate = crate::compress::find_hidden_comparator(
            oracle,
            output,
            &candidate_groups,
            &self.config.template,
            rng,
        )?;

        // Build the comparator subcircuit (the delegate's function).
        let lhs: Vec<Edge> = delegate
            .lhs_positions
            .iter()
            .map(|&p| circuit.input_edge(p))
            .collect();
        let rhs: Vec<Edge> = match &delegate.rhs_positions {
            Some(r) => r.iter().map(|&p| circuit.input_edge(p)).collect(),
            None => circuit.const_word(delegate.constant, lhs.len()),
        };
        let gates_at = circuit.and_count();
        let os_edge = delegate.predicate.build(circuit, &lhs, &rhs);
        self.telemetry
            .attribute_gates(circuit.and_count().saturating_sub(gates_at) as u64);

        // Learn the output over the compressed space.
        let mut compressed = crate::compress::DelegateOracle::new(oracle, vec![delegate]);
        let info = identify_support(&mut compressed, output, &self.config.support_sampling, rng);
        let cover = if info.support.len() <= self.config.fbdt.exhaustive_threshold {
            let (cover, _) = learn_exhaustive(&mut compressed, output, &info.support, rng);
            cover
        } else {
            let (cover, stats) = build_fbdt(
                &mut compressed,
                output,
                &info.support,
                info.truth_ratio,
                &self.config.fbdt,
                node_budget,
                rng,
                &self.telemetry,
            );
            stats.record(&self.telemetry);
            cover
        };
        // Virtual variable k maps to the kept input's edge; the final
        // virtual variable is the delegate's comparator output.
        let mut var_map: Vec<Edge> = compressed
            .kept_positions()
            .iter()
            .map(|&p| circuit.input_edge(p))
            .collect();
        var_map.push(os_edge);
        Some(self.cover_to_edge(&cover, circuit, &var_map))
    }

    /// Converts a learned cover into circuit structure: espresso
    /// minimization (size-guarded), algebraic factoring, and final
    /// complementation for offset covers. Cover variable `x_k` maps to
    /// `var_map[k]`.
    fn cover_to_edge(&self, cover: &LearnedCover, circuit: &mut Aig, var_map: &[Edge]) -> Edge {
        self.telemetry
            .add(counters::CUBES_COLLECTED, cover.sop.cubes().len() as u64);
        let gates_at = circuit.and_count();
        let edge = if cover.sop.cubes().len() <= self.config.espresso_cube_limit {
            self.telemetry.incr(counters::ESPRESSO_CALLS);
            cirlearn_synth::factor::sop_to_circuit(&cover.sop, circuit, var_map)
        } else {
            let expr = cirlearn_synth::factor::factor(&cover.sop);
            expr.to_aig(circuit, var_map)
        };
        self.telemetry
            .attribute_gates(circuit.and_count().saturating_sub(gates_at) as u64);
        edge.complement_if(cover.complemented)
    }
}

/// The identity variable map: cover variable `x_k` is primary input `k`.
fn identity_var_map(circuit: &Aig) -> Vec<Edge> {
    (0..circuit.num_inputs())
        .map(|p| circuit.input_edge(p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_oracle::{evaluate_accuracy, generate, CircuitOracle, EvalConfig};

    fn check_exact(oracle: &CircuitOracle, result: &LearnResult) -> bool {
        cirlearn_sat::check_equivalence(oracle.reveal(), &result.circuit).is_equivalent()
    }

    #[test]
    fn learns_small_random_logic_exactly() {
        let mut oracle = generate::eco_case_with_support(16, 3, 6, 42);
        let mut learner = Learner::new(LearnerConfig::fast());
        let result = learner.learn(&mut oracle);
        assert!(check_exact(&oracle, &result), "small ECO must be exact");
        assert!(result
            .outputs
            .iter()
            .all(|s| s.strategy == Strategy::Exhaustive));
    }

    #[test]
    fn learns_diag_case_via_templates() {
        let mut oracle = generate::diag_case(20, 3, 5);
        let mut learner = Learner::new(LearnerConfig::fast());
        let result = learner.learn(&mut oracle);
        assert!(
            result
                .outputs
                .iter()
                .all(|s| s.strategy == Strategy::ComparatorTemplate),
            "DIAG outputs should match the comparator template: {:?}",
            result.outputs
        );
        let acc = evaluate_accuracy(
            oracle.reveal(),
            &result.circuit,
            &EvalConfig {
                patterns_per_group: 2000,
                ..EvalConfig::default()
            },
        );
        assert_eq!(acc.hits, acc.total, "template match must be exact");
    }

    #[test]
    fn learns_data_case_via_linear_template() {
        let mut oracle = generate::data_case(12, 8, 9);
        let mut learner = Learner::new(LearnerConfig::fast());
        let result = learner.learn(&mut oracle);
        assert!(
            result
                .outputs
                .iter()
                .all(|s| s.strategy == Strategy::LinearTemplate),
            "DATA outputs should match the linear template: {:?}",
            result.outputs
        );
        assert!(check_exact(&oracle, &result));
    }

    #[test]
    fn preprocessing_off_still_learns() {
        let mut oracle = generate::diag_case(12, 1, 31);
        let mut cfg = LearnerConfig::fast();
        cfg.preprocessing = false;
        let mut learner = Learner::new(cfg);
        let result = learner.learn(&mut oracle);
        assert!(matches!(
            result.outputs[0].strategy,
            Strategy::Exhaustive | Strategy::Fbdt
        ));
        let acc = evaluate_accuracy(
            oracle.reveal(),
            &result.circuit,
            &EvalConfig {
                patterns_per_group: 2000,
                ..EvalConfig::default()
            },
        );
        assert!(acc.ratio() > 0.95, "accuracy {acc}");
    }

    #[test]
    fn telemetry_stage_queries_sum_to_result_queries() {
        let mut oracle = generate::eco_case(14, 3, 55);
        let telemetry = Telemetry::recording();
        let mut learner = Learner::with_telemetry(LearnerConfig::fast(), telemetry.clone());
        let result = learner.learn(&mut oracle);
        let report = telemetry.report();
        // Every oracle query is issued inside exactly one top-level
        // stage span, so the per-stage breakdown partitions the total.
        assert_eq!(
            report.top_level_counter_sum(counters::ORACLE_QUERIES),
            result.queries,
            "stage query counts must partition the run total"
        );
        assert_eq!(report.counter(counters::ORACLE_QUERIES), result.queries);
        // The cost ledger is fed by the same source (the instrumented
        // oracle tags each query with the active top-level stage), so
        // its cells partition the run total exactly, per stage and
        // overall.
        assert_eq!(
            report.attribution_total_queries(),
            result.queries,
            "attribution ledger must account for every query"
        );
        for stage in report.stages.iter().filter(|s| !s.path.contains('/')) {
            assert_eq!(
                report.attribution_stage_queries(&stage.path),
                stage
                    .counters
                    .get(counters::ORACLE_QUERIES)
                    .copied()
                    .unwrap_or(0),
                "ledger and stage breakdown disagree for {}",
                stage.path
            );
        }
        // Per-output queries are a subset of the total (template
        // matches contribute zero).
        let per_output: u64 = result.outputs.iter().map(|s| s.queries).sum();
        assert!(per_output <= result.queries);
        // Cone sizes never grow under optimization.
        for s in &result.outputs {
            assert!(
                s.gates_after_opt <= s.gates_before_opt,
                "output {}",
                s.output
            );
        }
    }

    #[test]
    fn output_count_and_names_preserved() {
        let mut oracle = generate::eco_case(14, 4, 77);
        let mut learner = Learner::new(LearnerConfig::fast());
        let result = learner.learn(&mut oracle);
        assert_eq!(result.circuit.num_outputs(), 4);
        let names: Vec<&str> = result
            .circuit
            .outputs()
            .iter()
            .map(|(_, n)| n.as_str())
            .collect();
        assert_eq!(
            names,
            oracle
                .output_names()
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
        );
        assert!(result.queries > 0);
    }
}

#[cfg(test)]
mod degradation_tests {
    use super::*;
    use cirlearn_oracle::{generate, FaultKind, FaultSchedule, FaultyOracle};

    #[test]
    fn clean_run_reports_no_faults() {
        let mut oracle = generate::eco_case(12, 3, 11);
        let result = Learner::new(LearnerConfig::fast()).learn(&mut oracle);
        assert!(result.degraded.is_empty());
        assert!(!result.faults.any());
        assert_eq!(result.faults.fallback_answers, 0);
        assert!(result.faults.oracle_error.is_none());
    }

    #[test]
    fn permanent_oracle_death_degrades_instead_of_panicking() {
        // The oracle crashes early and is never respawned: every answer
        // after the crash is a fallback. The learner must still return
        // a complete circuit, with the affected outputs degraded.
        let schedule = FaultSchedule::new().at(40, FaultKind::Crash);
        let mut oracle = FaultyOracle::new(generate::eco_case(14, 3, 23), schedule);
        let mut cfg = LearnerConfig::fast();
        cfg.preprocessing = false;
        let result = Learner::new(cfg).learn(&mut oracle);
        assert_eq!(result.circuit.num_outputs(), 3, "circuit stays complete");
        assert!(!result.degraded.is_empty(), "crash must degrade outputs");
        assert!(result.faults.any());
        assert_eq!(result.faults.degraded_outputs, result.degraded.len() as u64);
        assert!(result
            .faults
            .oracle_error
            .as_deref()
            .is_some_and(|e| e.contains("died")));
        for &o in &result.degraded {
            assert_eq!(result.outputs[o].strategy, Strategy::Degraded);
        }
        // Degraded constants still lint: every output edge resolves.
        assert!(result.circuit.cleanup().num_outputs() == 3);
    }

    #[test]
    fn death_during_templates_degrades_every_output() {
        // A fault inside the shared template stage poisons all matches.
        let schedule = FaultSchedule::new().at(5, FaultKind::Crash);
        let mut oracle = FaultyOracle::new(generate::diag_case(16, 2, 9), schedule);
        let result = Learner::new(LearnerConfig::fast()).learn(&mut oracle);
        assert_eq!(result.degraded, vec![0, 1]);
        assert!(result
            .outputs
            .iter()
            .all(|s| s.strategy == Strategy::Degraded));
        assert!(result.faults.fallback_answers > 0);
    }

    #[test]
    fn zero_time_budget_degrades_gracefully() {
        let mut oracle = generate::eco_case(12, 4, 31);
        let mut cfg = LearnerConfig::fast();
        cfg.preprocessing = false;
        cfg.time_budget = Duration::ZERO;
        let result = Learner::new(cfg).learn(&mut oracle);
        assert_eq!(result.circuit.num_outputs(), 4);
        assert_eq!(result.degraded, vec![0, 1, 2, 3]);
        // Budget expiry is degradation without an oracle fault.
        assert!(result.faults.oracle_error.is_none());
        assert!(result.faults.any());
    }

    #[test]
    fn telemetry_counts_degraded_outputs() {
        let schedule = FaultSchedule::new().at(0, FaultKind::Crash);
        let mut oracle = FaultyOracle::new(generate::eco_case(10, 2, 7), schedule);
        let telemetry = Telemetry::recording();
        let mut learner = Learner::with_telemetry(LearnerConfig::fast(), telemetry.clone());
        let result = learner.learn(&mut oracle);
        assert_eq!(
            telemetry.counter(counters::FAULT_DEGRADED_OUTPUTS),
            result.degraded.len() as u64
        );
        let report = telemetry.report();
        assert_eq!(report.faults.degraded_outputs, result.degraded.len() as u64);
    }
}

#[cfg(test)]
mod query_budget_tests {
    use super::*;
    use cirlearn_oracle::generate;

    #[test]
    fn query_budget_is_respected_and_deterministic() {
        let run = |cap: u64| {
            let mut oracle = generate::neq_case_with_support(30, 2, 24, 321);
            let mut cfg = LearnerConfig::fast();
            cfg.max_queries = Some(cap);
            cfg.optimize = None;
            let r = Learner::new(cfg).learn(&mut oracle);
            (r.queries, r.circuit.gate_count())
        };
        let (q1, g1) = run(60_000);
        let (q2, g2) = run(60_000);
        assert_eq!((q1, g1), (q2, g2), "same budget must reproduce exactly");
        // The budget caps FBDT queries; support identification and the
        // per-node sampling of the final forced leaves still run, so
        // allow bounded overshoot rather than an exact ceiling.
        assert!(q1 < 200_000, "queries {q1} far beyond the 60k budget");
        // A tighter budget must not use more queries.
        let (q3, _) = run(20_000);
        assert!(q3 <= q1, "tighter budget used more queries: {q3} > {q1}");
    }
}
