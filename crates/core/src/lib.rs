//! Circuit learning for logic regression on high-dimensional Boolean
//! space.
//!
//! This crate implements the winning approach of the 2019 ICCAD CAD
//! Contest Problem A as described in *Chen, Huang, Lee, Jiang —
//! "Circuit Learning for Logic Regression on High Dimensional Boolean
//! Space", DAC 2020*: given only black-box query access to an unknown
//! Boolean function `F : B^|I| → B^|O|`, learn a compact circuit of
//! 2-input gates matching `F` with high accuracy.
//!
//! The pipeline (paper Fig. 1):
//!
//! 1. [`naming`] — name-based grouping recovers bus vectors from port
//!    names,
//! 2. [`template`] — comparator and linear-arithmetic template matching
//!    solves datapath-like outputs outright,
//! 3. [`support`] — `PatternSampling` identifies the inputs each output
//!    actually depends on,
//! 4. [`fbdt`] — a free binary decision tree, expanded in levelized
//!    order by cofactoring on the most significant input, yields an SOP
//!    cover (small supports are instead enumerated exhaustively),
//! 5. circuit optimization via [`cirlearn_synth`].
//!
//! The [`Learner`] type runs the whole pipeline; [`baseline`] provides
//! the two contestant-like reference learners used to regenerate the
//! paper's Table II comparison.
//!
//! # Examples
//!
//! ```
//! use cirlearn::{Learner, LearnerConfig};
//! use cirlearn_oracle::generate;
//!
//! // A small DIAG-style black box: comparator over named buses.
//! let mut oracle = generate::diag_case(12, 1, 7);
//! let mut learner = Learner::new(LearnerConfig::fast());
//! let result = learner.learn(&mut oracle);
//! assert_eq!(result.circuit.num_inputs(), 12);
//! assert_eq!(result.circuit.num_outputs(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
mod budget;
pub mod checkpoint;
pub mod compress;
pub mod fbdt;
mod guard;
mod learner;
pub mod naming;
pub mod sampling;
pub mod support;
pub mod template;

pub use budget::Budget;
pub use checkpoint::{config_fingerprint, CheckpointError, Cursor, LearnState};
pub use guard::OracleGuard;
pub use learner::{
    FaultSummary, LearnOutcome, LearnResult, Learner, LearnerConfig, OutputStats, RunControl,
    Strategy,
};
